// PF/VF manager: the SR-IOV-style control plane of the vNIC front-end.
//
// The physical function (this manager) owns every virtual function a tenant
// NF sees. Each VF bundles the per-tenant datapath state — RX descriptor
// ring, completion queue, policed doorbell (ring.h) — plus quotas and abuse
// accounting. Matched ingress frames route through the owning VF before the
// bounded VPP queue (snic_device.cc): no posted descriptor means the frame
// drops at the edge, a full completion queue means the tenant is squatting,
// and a VPP that refuses admission leaves the descriptor in place so the
// ring visibly stops draining — ring-full is how VPP backpressure reaches
// the tenant, and per-VF quotas are the admission policy.
//
// Abuse detection is cumulative and deterministic: each hostile move
// (doorbell floods, CQ squatting, malformed/stale descriptors, quota churn)
// increments a per-kind strike counter, and the first crossing of the VF's
// strike threshold latches the verdict and fires the abuse callback exactly
// once. The callback layer (bench/tests) routes that to
// mgmt::Supervisor::ReportCrash(kVnicAbuse); the Supervisor's restart
// callback then calls ResetVf/RebindVf, and repeat offenders end in
// QuarantineVf — at which point the VF's traffic drops at the edge. The
// core library deliberately does not link mgmt, so the coupling stays a
// callback.
//
// Determinism: all state advances on simulated cycles via AdvanceClockTo;
// VFs live in ordered maps (see the snic_lint no-unordered-iteration rule);
// the only randomness is the fault plane's own seeded streams, and every
// fault site is scoped to the owning NF id, so faults aimed at one tenant
// structurally cannot perturb another tenant's VF.

#ifndef SNIC_CORE_VNIC_PF_VF_H_
#define SNIC_CORE_VNIC_PF_VF_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "src/common/status.h"
#include "src/core/vnic/descriptor.h"
#include "src/core/vnic/ring.h"
#include "src/core/vpp.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"

namespace snic::core::vnic {

// Per-VF resource quotas and abuse thresholds.
struct VfQuota {
  uint32_t ring_slots = 32;
  uint32_t cq_slots = 32;
  // Upper bound on bytes of buffer space posted (and not yet delivered)
  // at once; the admission policy of the overload plane at the device edge.
  uint64_t posted_bytes_limit = 256 * 1024;
  DoorbellPolicy doorbell;
  // Strikes of one abuse kind before the VF is flagged (latched per kind
  // until the next reset).
  uint32_t abuse_threshold = 64;
};

// The hostile moves the front-end can attribute (docs/ROBUSTNESS.md attack
// taxonomy). Values are stable: they ride in trace args and JSON verdicts.
enum class VfAbuse : uint8_t {
  kDoorbellFlood = 0,   // policer bounces
  kCqSquat = 1,         // deliveries dropped against a full completion queue
  kBadDescriptor = 2,   // malformed descriptor or stale/replayed ring index
  kQuotaChurn = 3,      // posted-byte quota rejections
};
inline constexpr int kNumVfAbuseKinds = 4;
std::string_view VfAbuseName(VfAbuse abuse);

// Manager-level per-VF counters (ring/CQ/doorbell internals are exposed via
// their own stats structs through the accessors below).
struct VfStats {
  uint64_t posts_accepted = 0;
  uint64_t post_rejected_decode = 0;
  uint64_t post_rejected_stale = 0;
  uint64_t post_rejected_full = 0;
  uint64_t post_rejected_quota = 0;
  uint64_t doorbell_rings = 0;
  uint64_t doorbell_rejected = 0;
  uint64_t delivered = 0;
  uint64_t dropped_no_descriptor = 0;
  uint64_t dropped_oversize = 0;
  uint64_t dropped_cq_full = 0;
  uint64_t dropped_vpp = 0;  // VPP backpressure; descriptor retained
  uint64_t dropped_quarantined = 0;
  uint64_t harvested = 0;
  uint64_t resets = 0;
  uint64_t abuse_flags = 0;
  uint64_t strikes[kNumVfAbuseKinds] = {0, 0, 0, 0};
  uint64_t max_delivery_wait_cycles = 0;
};

class PfVfManager {
 public:
  // (vf_id, kind) on the first threshold crossing of `kind` since the last
  // reset. Invoked from inside the tenant/device call that struck; keep it
  // cheap and non-reentrant (report, don't reset from within).
  using AbuseCallback = std::function<void(uint32_t, VfAbuse)>;

  PfVfManager() = default;
  PfVfManager(const PfVfManager&) = delete;
  PfVfManager& operator=(const PfVfManager&) = delete;

  // --- PF control plane ---------------------------------------------------
  // Creates a VF for `nf_id` delivering into `vpp` (not owned; must outlive
  // the VF or be rebound). One VF per NF: a second create for a live NF id
  // fails with kAlreadyOwned.
  Result<uint32_t> CreateVf(uint64_t nf_id, VirtualPacketPipeline* vpp,
                            const VfQuota& quota);
  Status DestroyVf(uint32_t vf_id);
  // Points an existing VF at a restarted NF (new id, new VPP) and resets it.
  Status RebindVf(uint32_t vf_id, uint64_t new_nf_id,
                  VirtualPacketPipeline* new_vpp);
  // Clears rings, refills the doorbell, releases churn reservations, and
  // unlatches abuse verdicts. The Supervisor's restart path.
  Status ResetVf(uint32_t vf_id);
  // Stops serving the VF: every delivery drops at the edge (counted).
  // Tenant-side calls fail with kPermissionDenied. Reset does not lift it.
  Status QuarantineVf(uint32_t vf_id);

  // --- Tenant-side API (MMIO surface) -------------------------------------
  // Decodes and posts a block of encoded descriptors. Strict: the first
  // malformed descriptor rejects the rest of the block.
  Status PostDescriptors(uint32_t vf_id, std::span<const uint8_t> raw);
  // One doorbell write. False when the policer (or quarantine) bounced it.
  bool RingDoorbell(uint32_t vf_id);
  // Harvests the oldest completion; kNotFound when none pending.
  Result<CompletionQueue::Completion> Harvest(uint32_t vf_id);

  // --- Device-side API ----------------------------------------------------
  // Routes one matched ingress frame through the VF (snic_device.cc).
  Status DeliverToVf(uint32_t vf_id, net::Packet packet);
  Result<uint32_t> VfForNf(uint64_t nf_id) const;

  void AdvanceClockTo(uint64_t cycle);
  uint64_t now() const { return now_; }

  // --- Introspection ------------------------------------------------------
  size_t vf_count() const { return vfs_.size(); }
  bool IsQuarantined(uint32_t vf_id) const;
  uint64_t NfOf(uint32_t vf_id) const;  // 0 when unknown
  const VfStats& StatsOf(uint32_t vf_id) const;
  const RxDescriptorRing::Stats& RingStatsOf(uint32_t vf_id) const;
  const CompletionQueue::Stats& CqStatsOf(uint32_t vf_id) const;
  const Doorbell::Stats& DoorbellStatsOf(uint32_t vf_id) const;
  uint32_t RingOccupancy(uint32_t vf_id) const;
  uint32_t CqPending(uint32_t vf_id) const;

  void SetAbuseCallback(AbuseCallback callback);
  void AttachObs(obs::MetricRegistry* registry);
  void AttachTraceRing(obs::TraceRing* ring);

 private:
  struct Vf {
    uint64_t nf_id = 0;
    VirtualPacketPipeline* vpp = nullptr;
    VfQuota quota;
    RxDescriptorRing ring;
    CompletionQueue cq;
    Doorbell doorbell;
    uint64_t posted_bytes = 0;
    uint64_t churn_penalty_bytes = 0;  // kVnicQuotaChurn phantom reservation
    bool quarantined = false;
    bool abuse_latched[kNumVfAbuseKinds] = {false, false, false, false};
    VfStats stats;

    // Metric handles (null until a registry is attached).
    obs::Counter* m_posted = nullptr;
    obs::Counter* m_post_rejected = nullptr;
    obs::Counter* m_rings = nullptr;
    obs::Counter* m_rings_rejected = nullptr;
    obs::Counter* m_delivered = nullptr;
    obs::Counter* m_drops_no_desc = nullptr;
    obs::Counter* m_drops_cq_full = nullptr;
    obs::Counter* m_drops_vpp = nullptr;
    obs::Counter* m_drops_quarantined = nullptr;
    obs::Counter* m_harvested = nullptr;
    obs::Counter* m_resets = nullptr;
    obs::Counter* m_abuse = nullptr;

    Vf(const VfQuota& q)
        : quota(q), ring(q.ring_slots), cq(q.cq_slots), doorbell(q.doorbell) {}
  };

  Vf* Find(uint32_t vf_id);
  const Vf* Find(uint32_t vf_id) const;
  void AttachVfObs(uint32_t vf_id, Vf& vf);
  void Strike(uint32_t vf_id, Vf& vf, VfAbuse kind);
  void ResetLocked(uint32_t vf_id, Vf& vf);

  std::map<uint32_t, std::unique_ptr<Vf>> vfs_;
  std::map<uint64_t, uint32_t> nf_to_vf_;
  uint32_t next_vf_id_ = 1;
  uint64_t now_ = 0;
  AbuseCallback abuse_callback_;
  obs::MetricRegistry* registry_ = nullptr;
  obs::TraceRing* ring_ = nullptr;
  // Interned span/arg ids (AttachTraceRing).
  uint16_t span_post_ = 0;
  uint16_t span_doorbell_ = 0;
  uint16_t span_deliver_ = 0;
  uint16_t span_harvest_ = 0;
  uint16_t span_reset_ = 0;
  uint16_t span_abuse_ = 0;
  uint16_t arg_vf_ = 0;
  uint16_t arg_residency_ = 0;
  uint16_t arg_cause_ = 0;
};

}  // namespace snic::core::vnic

#endif  // SNIC_CORE_VNIC_PF_VF_H_
