#include "src/core/vnic/descriptor.h"

#include <cstring>

namespace snic::core::vnic {

namespace {

uint8_t XorChecksum(std::span<const uint8_t> bytes) {
  uint8_t sum = 0;
  for (const uint8_t b : bytes) {
    sum ^= b;
  }
  return sum;
}

void StoreLe16(uint16_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xff);
  out[1] = static_cast<uint8_t>(v >> 8);
}

uint16_t LoadLe16(const uint8_t* in) {
  return static_cast<uint16_t>(in[0] | (uint16_t{in[1]} << 8));
}

}  // namespace

void EncodeRxDescriptor(const RxDescriptor& descriptor,
                        std::span<uint8_t> out) {
  SNIC_CHECK(out.size() == kDescriptorBytes);
  SNIC_CHECK(descriptor.buffer_addr <= kMaxBufferAddr);
  SNIC_CHECK(descriptor.buffer_addr % kBufferAlign == 0);
  SNIC_CHECK((descriptor.flags & ~kKnownFlags) == 0);
  out[0] = kDescriptorMagic;
  out[1] = kDescriptorVersion;
  StoreLe16(descriptor.flags, &out[2]);
  StoreLe16(descriptor.buffer_len, &out[4]);
  StoreLe16(descriptor.ring_index, &out[6]);
  uint64_t addr = descriptor.buffer_addr;
  for (size_t i = 0; i < 7; ++i) {
    out[8 + i] = static_cast<uint8_t>(addr & 0xff);
    addr >>= 8;
  }
  out[15] = XorChecksum(out.first(kDescriptorBytes - 1));
}

std::vector<uint8_t> EncodeDescriptors(
    const std::vector<RxDescriptor>& descriptors) {
  std::vector<uint8_t> bytes(descriptors.size() * kDescriptorBytes);
  for (size_t i = 0; i < descriptors.size(); ++i) {
    EncodeRxDescriptor(descriptors[i],
                       std::span<uint8_t>(bytes.data() + i * kDescriptorBytes,
                                          kDescriptorBytes));
  }
  return bytes;
}

Result<RxDescriptor> DecodeRxDescriptor(std::span<const uint8_t> bytes) {
  if (bytes.size() != kDescriptorBytes) {
    return InvalidArgument("descriptor: wrong size");
  }
  if (bytes[15] != XorChecksum(bytes.first(kDescriptorBytes - 1))) {
    return InvalidArgument("descriptor: checksum mismatch");
  }
  if (bytes[0] != kDescriptorMagic) {
    return InvalidArgument("descriptor: bad magic");
  }
  if (bytes[1] != kDescriptorVersion) {
    return InvalidArgument("descriptor: unsupported version");
  }
  RxDescriptor d;
  d.flags = LoadLe16(&bytes[2]);
  if ((d.flags & ~kKnownFlags) != 0) {
    return InvalidArgument("descriptor: unknown flag bits");
  }
  if ((d.flags & kFlagValid) == 0) {
    return InvalidArgument("descriptor: valid bit clear");
  }
  d.buffer_len = LoadLe16(&bytes[4]);
  if (d.buffer_len < kMinBufferBytes || d.buffer_len > kMaxBufferBytes) {
    return InvalidArgument("descriptor: buffer length out of range");
  }
  if ((d.flags & kFlagJumbo) == 0 &&
      d.buffer_len > kMaxStandardBufferBytes) {
    return InvalidArgument("descriptor: jumbo length without jumbo flag");
  }
  d.ring_index = LoadLe16(&bytes[6]);
  d.buffer_addr = 0;
  for (size_t i = 0; i < 7; ++i) {
    d.buffer_addr |= uint64_t{bytes[8 + i]} << (8 * i);
  }
  if (d.buffer_addr % kBufferAlign != 0) {
    return InvalidArgument("descriptor: unaligned buffer address");
  }
  return d;
}

Status DescriptorStreamDecoder::Fill(std::span<const uint8_t> chunk,
                                     std::vector<RxDescriptor>* out) {
  if (poisoned_) {
    return FailedPrecondition("descriptor stream: poisoned by earlier error");
  }
  size_t offset = 0;
  // Top up a carried partial descriptor first.
  if (partial_len_ > 0) {
    const size_t need = kDescriptorBytes - partial_len_;
    const size_t take = need < chunk.size() ? need : chunk.size();
    std::memcpy(partial_ + partial_len_, chunk.data(), take);
    partial_len_ += take;
    offset = take;
    if (partial_len_ < kDescriptorBytes) {
      return OkStatus();
    }
    auto decoded =
        DecodeRxDescriptor(std::span<const uint8_t>(partial_, partial_len_));
    partial_len_ = 0;
    if (!decoded.ok()) {
      poisoned_ = true;
      return decoded.status();
    }
    out->push_back(decoded.value());
  }
  // Whole descriptors directly from the chunk.
  while (chunk.size() - offset >= kDescriptorBytes) {
    auto decoded = DecodeRxDescriptor(chunk.subspan(offset, kDescriptorBytes));
    if (!decoded.ok()) {
      poisoned_ = true;
      return decoded.status();
    }
    out->push_back(decoded.value());
    offset += kDescriptorBytes;
  }
  // Carry the tail.
  const size_t rest = chunk.size() - offset;
  if (rest > 0) {
    std::memcpy(partial_, chunk.data() + offset, rest);
    partial_len_ = rest;
  }
  return OkStatus();
}

Status DescriptorStreamDecoder::Finish() const {
  if (poisoned_) {
    return FailedPrecondition("descriptor stream: poisoned by earlier error");
  }
  if (partial_len_ != 0) {
    return InvalidArgument("descriptor stream: truncated trailing descriptor");
  }
  return OkStatus();
}

}  // namespace snic::core::vnic
