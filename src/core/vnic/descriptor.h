// RX descriptor wire format for the vNIC device edge.
//
// Tenants post receive buffers to their VF by writing fixed-size descriptors
// into ring memory the device reads. That memory is tenant-controlled, so the
// device-side decoder treats every byte as hostile: decode-or-reject, total
// and deterministic, never undefined behaviour. The format carries an XOR
// checksum over the first 15 bytes specifically so that *any* single-byte
// corruption is detectable — the fuzz suite (tests/fuzz_roundtrip_test.cc)
// relies on that property to prove every mutant deterministically rejects.
//
// Layout (16 bytes, little-endian):
//
//   [0]      magic       0x5D
//   [1]      version     1
//   [2..3]   flags       kFlagValid required; unknown bits reject
//   [4..5]   buffer_len  bytes; [kMinBufferBytes, kMaxBufferBytes],
//                        capped at kMaxStandardBufferBytes unless kFlagJumbo
//   [6..7]   ring_index  slot the tenant claims to be filling (replay check
//                        happens at the ring, which knows the expected tail)
//   [8..14]  buffer_addr VF-window-relative offset, 56-bit, kBufferAlign-
//                        aligned
//   [15]     checksum    XOR of bytes [0..14]

#ifndef SNIC_CORE_VNIC_DESCRIPTOR_H_
#define SNIC_CORE_VNIC_DESCRIPTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace snic::core::vnic {

inline constexpr size_t kDescriptorBytes = 16;
inline constexpr uint8_t kDescriptorMagic = 0x5D;
inline constexpr uint8_t kDescriptorVersion = 1;

// Flag bits a well-formed descriptor may carry; any other bit rejects.
inline constexpr uint16_t kFlagValid = 0x0001;
inline constexpr uint16_t kFlagJumbo = 0x0002;
inline constexpr uint16_t kKnownFlags = kFlagValid | kFlagJumbo;

inline constexpr uint64_t kBufferAlign = 64;
inline constexpr uint64_t kMaxBufferAddr = (uint64_t{1} << 56) - 1;
inline constexpr uint16_t kMinBufferBytes = 64;
inline constexpr uint16_t kMaxStandardBufferBytes = 2048;
inline constexpr uint16_t kMaxBufferBytes = 9216;  // jumbo frames

struct RxDescriptor {
  uint64_t buffer_addr = 0;  // VF-relative, kBufferAlign-aligned, <= 56 bits
  uint16_t buffer_len = 0;
  uint16_t ring_index = 0;
  uint16_t flags = kFlagValid;

  friend bool operator==(const RxDescriptor& a, const RxDescriptor& b) {
    return a.buffer_addr == b.buffer_addr && a.buffer_len == b.buffer_len &&
           a.ring_index == b.ring_index && a.flags == b.flags;
  }
};

// Tenant-side encoder (tests and benches model the well-formed tenant with
// it). `out.size()` must be exactly kDescriptorBytes. Fields out of range —
// unaligned or >56-bit address, unknown flags — are a programmer error on
// the encoding side and abort via SNIC_CHECK; hostile inputs are modeled by
// mutating the encoded bytes, not by encoding garbage.
void EncodeRxDescriptor(const RxDescriptor& descriptor,
                        std::span<uint8_t> out);
std::vector<uint8_t> EncodeDescriptors(
    const std::vector<RxDescriptor>& descriptors);

// Strict one-shot decode of exactly one descriptor. `bytes.size()` must be
// kDescriptorBytes; every constraint in the header comment is checked and
// any violation returns kInvalidArgument with a reason.
Result<RxDescriptor> DecodeRxDescriptor(std::span<const uint8_t> bytes);

// Streaming decoder for descriptor blocks arriving in arbitrary chunk sizes
// (the DMA engine reads ring memory in bursts). Carries partial descriptors
// across Fill() calls; decoding is chunk-size invariant — any two chunkings
// of the same byte stream yield the same descriptors or the same first
// error. A rejected stream poisons the decoder: every later Fill() fails
// too, so a hostile tenant cannot smuggle descriptors after a bad one.
class DescriptorStreamDecoder {
 public:
  // Decodes whole descriptors from the carried remainder plus `chunk`,
  // appending them to *out. On a malformed descriptor, returns its decode
  // error; descriptors decoded earlier in the call remain in *out.
  Status Fill(std::span<const uint8_t> chunk, std::vector<RxDescriptor>* out);

  // Ok only if the stream is healthy and no partial descriptor is buffered.
  Status Finish() const;

  bool poisoned() const { return poisoned_; }

 private:
  uint8_t partial_[kDescriptorBytes] = {};
  size_t partial_len_ = 0;
  bool poisoned_ = false;
};

}  // namespace snic::core::vnic

#endif  // SNIC_CORE_VNIC_DESCRIPTOR_H_
