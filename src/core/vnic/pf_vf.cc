#include "src/core/vnic/pf_vf.h"

#include "src/fault/fault.h"
#include "src/obs/span_names.h"

namespace snic::core::vnic {

namespace {
// Placeholder stats returned for unknown VF ids so the const accessors stay
// total (callers are expected to hold valid ids; tests use this leniency).
const VfStats kEmptyVfStats;
const RxDescriptorRing::Stats kEmptyRingStats;
const CompletionQueue::Stats kEmptyCqStats;
const Doorbell::Stats kEmptyDoorbellStats;
}  // namespace

std::string_view VfAbuseName(VfAbuse abuse) {
  switch (abuse) {
    case VfAbuse::kDoorbellFlood:
      return "doorbell_flood";
    case VfAbuse::kCqSquat:
      return "cq_squat";
    case VfAbuse::kBadDescriptor:
      return "bad_descriptor";
    case VfAbuse::kQuotaChurn:
      return "quota_churn";
  }
  return "unknown";
}

PfVfManager::Vf* PfVfManager::Find(uint32_t vf_id) {
  const auto it = vfs_.find(vf_id);
  return it == vfs_.end() ? nullptr : it->second.get();
}

const PfVfManager::Vf* PfVfManager::Find(uint32_t vf_id) const {
  const auto it = vfs_.find(vf_id);
  return it == vfs_.end() ? nullptr : it->second.get();
}

Result<uint32_t> PfVfManager::CreateVf(uint64_t nf_id,
                                       VirtualPacketPipeline* vpp,
                                       const VfQuota& quota) {
  if (vpp == nullptr) {
    return InvalidArgument("vf: null pipeline");
  }
  if (nf_to_vf_.count(nf_id) != 0) {
    return AlreadyOwned("vf: NF already has a virtual function");
  }
  const uint32_t vf_id = next_vf_id_++;
  auto vf = std::make_unique<Vf>(quota);
  vf->nf_id = nf_id;
  vf->vpp = vpp;
  AttachVfObs(vf_id, *vf);
  vfs_.emplace(vf_id, std::move(vf));
  nf_to_vf_[nf_id] = vf_id;
  return vf_id;
}

Status PfVfManager::DestroyVf(uint32_t vf_id) {
  const auto it = vfs_.find(vf_id);
  if (it == vfs_.end()) {
    return NotFound("vf: unknown id");
  }
  nf_to_vf_.erase(it->second->nf_id);
  vfs_.erase(it);
  return OkStatus();
}

Status PfVfManager::RebindVf(uint32_t vf_id, uint64_t new_nf_id,
                             VirtualPacketPipeline* new_vpp) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return NotFound("vf: unknown id");
  }
  if (new_vpp == nullptr) {
    return InvalidArgument("vf: null pipeline");
  }
  const auto taken = nf_to_vf_.find(new_nf_id);
  if (taken != nf_to_vf_.end() && taken->second != vf_id) {
    return AlreadyOwned("vf: NF already has a virtual function");
  }
  nf_to_vf_.erase(vf->nf_id);
  vf->nf_id = new_nf_id;
  vf->vpp = new_vpp;
  nf_to_vf_[new_nf_id] = vf_id;
  ResetLocked(vf_id, *vf);
  return OkStatus();
}

void PfVfManager::ResetLocked(uint32_t vf_id, Vf& vf) {
  vf.ring.Reset();
  vf.cq.Reset();
  vf.doorbell.Reset();
  vf.posted_bytes = 0;
  vf.churn_penalty_bytes = 0;
  for (bool& latched : vf.abuse_latched) {
    latched = false;
  }
  for (uint64_t& strikes : vf.stats.strikes) {
    strikes = 0;
  }
  ++vf.stats.resets;
  SNIC_OBS(if (vf.m_resets != nullptr) vf.m_resets->Inc());
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    ring_->EmitInstant(span_reset_, now_, static_cast<uint32_t>(vf.nf_id),
                       /*tid=*/0, /*span=*/0, vf_id, arg_vf_);
  });
}

Status PfVfManager::ResetVf(uint32_t vf_id) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return NotFound("vf: unknown id");
  }
  ResetLocked(vf_id, *vf);
  return OkStatus();
}

Status PfVfManager::QuarantineVf(uint32_t vf_id) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return NotFound("vf: unknown id");
  }
  vf->quarantined = true;
  return OkStatus();
}

void PfVfManager::Strike(uint32_t vf_id, Vf& vf, VfAbuse kind) {
  const int index = static_cast<int>(kind);
  ++vf.stats.strikes[index];
  if (vf.abuse_latched[index] ||
      vf.stats.strikes[index] < vf.quota.abuse_threshold) {
    return;
  }
  vf.abuse_latched[index] = true;
  ++vf.stats.abuse_flags;
  SNIC_OBS(if (vf.m_abuse != nullptr) vf.m_abuse->Inc());
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    ring_->EmitInstant(span_abuse_, now_, static_cast<uint32_t>(vf.nf_id),
                       /*tid=*/0, /*span=*/0, static_cast<uint64_t>(index),
                       arg_cause_);
  });
  if (abuse_callback_) {
    abuse_callback_(vf_id, kind);
  }
}

Status PfVfManager::PostDescriptors(uint32_t vf_id,
                                    std::span<const uint8_t> raw) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return NotFound("vf: unknown id");
  }
  if (vf->quarantined) {
    return PermissionDenied("vf: quarantined");
  }
  // Hostile-tenant fault payloads, all scoped to the owning NF: corrupt one
  // byte of the posted image, or charge a phantom full-quota reservation.
  std::vector<uint8_t> corrupted;
  if (!raw.empty() &&
      SNIC_FAULT_FIRES(fault::sites::kVnicDescCorrupt, vf->nf_id)) {
    corrupted.assign(raw.begin(), raw.end());
    corrupted[vf->stats.posts_accepted % corrupted.size()] ^= 0x40;
    raw = corrupted;
  }
  if (SNIC_FAULT_FIRES(fault::sites::kVnicQuotaChurn, vf->nf_id)) {
    vf->churn_penalty_bytes = vf->quota.posted_bytes_limit;
  }
  std::vector<RxDescriptor> decoded;
  DescriptorStreamDecoder decoder;
  Status status = decoder.Fill(raw, &decoded);
  if (status.ok()) {
    status = decoder.Finish();
  }
  if (!status.ok()) {
    ++vf->stats.post_rejected_decode;
    SNIC_OBS(if (vf->m_post_rejected != nullptr) vf->m_post_rejected->Inc());
    Strike(vf_id, *vf, VfAbuse::kBadDescriptor);
    return status;
  }
  if (!decoded.empty() &&
      SNIC_FAULT_FIRES(fault::sites::kVnicDescStale, vf->nf_id)) {
    // Replay an already-consumed slot index.
    decoded.front().ring_index = static_cast<uint16_t>(
        (vf->ring.ExpectedIndex() + vf->ring.capacity() - 1) %
        vf->ring.capacity());
  }
  uint64_t accepted = 0;
  for (const RxDescriptor& descriptor : decoded) {
    if (vf->posted_bytes + vf->churn_penalty_bytes + descriptor.buffer_len >
        vf->quota.posted_bytes_limit) {
      ++vf->stats.post_rejected_quota;
      SNIC_OBS(if (vf->m_post_rejected != nullptr) vf->m_post_rejected->Inc());
      Strike(vf_id, *vf, VfAbuse::kQuotaChurn);
      return ResourceExhausted("vf: posted-byte quota exhausted");
    }
    const Status posted = vf->ring.Post(descriptor, now_);
    if (!posted.ok()) {
      if (posted.code() == ErrorCode::kInvalidArgument) {
        ++vf->stats.post_rejected_stale;
        SNIC_OBS(if (vf->m_post_rejected != nullptr) {
          vf->m_post_rejected->Inc();
        });
        Strike(vf_id, *vf, VfAbuse::kBadDescriptor);
      } else {
        ++vf->stats.post_rejected_full;
        SNIC_OBS(if (vf->m_post_rejected != nullptr) {
          vf->m_post_rejected->Inc();
        });
      }
      return posted;
    }
    vf->posted_bytes += descriptor.buffer_len;
    ++vf->stats.posts_accepted;
    ++accepted;
    SNIC_OBS(if (vf->m_posted != nullptr) vf->m_posted->Inc());
  }
  SNIC_TRACE_RING(if (ring_ != nullptr && accepted > 0) {
    ring_->EmitInstant(span_post_, now_, static_cast<uint32_t>(vf->nf_id),
                       /*tid=*/0, /*span=*/0, vf_id, arg_vf_);
  });
  (void)accepted;
  return OkStatus();
}

bool PfVfManager::RingDoorbell(uint32_t vf_id) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr || vf->quarantined) {
    return false;
  }
  vf->doorbell.AdvanceTo(now_);
  if (SNIC_FAULT_FIRES(fault::sites::kVnicDoorbellFlood, vf->nf_id)) {
    vf->doorbell.Drain();
  }
  if (!vf->doorbell.Ring()) {
    ++vf->stats.doorbell_rejected;
    SNIC_OBS(if (vf->m_rings_rejected != nullptr) vf->m_rings_rejected->Inc());
    Strike(vf_id, *vf, VfAbuse::kDoorbellFlood);
    return false;
  }
  ++vf->stats.doorbell_rings;
  SNIC_OBS(if (vf->m_rings != nullptr) vf->m_rings->Inc());
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    ring_->EmitInstant(span_doorbell_, now_, static_cast<uint32_t>(vf->nf_id),
                       /*tid=*/0, /*span=*/0, vf_id, arg_vf_);
  });
  return true;
}

Result<CompletionQueue::Completion> PfVfManager::Harvest(uint32_t vf_id) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return Status(NotFound("vf: unknown id"));
  }
  if (vf->quarantined) {
    return Status(PermissionDenied("vf: quarantined"));
  }
  if (SNIC_FAULT_FIRES(fault::sites::kVnicCqSquat, vf->nf_id)) {
    // The squatting tenant: the harvest never happens, completions pile up.
    return Status(Unavailable("injected harvest skip"));
  }
  auto completion = vf->cq.Harvest();
  if (!completion.ok()) {
    return completion;
  }
  ++vf->stats.harvested;
  SNIC_OBS(if (vf->m_harvested != nullptr) vf->m_harvested->Inc());
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    ring_->EmitInstant(span_harvest_, now_, static_cast<uint32_t>(vf->nf_id),
                       /*tid=*/0, completion.value().span_id, vf_id, arg_vf_);
  });
  return completion;
}

Status PfVfManager::DeliverToVf(uint32_t vf_id, net::Packet packet) {
  Vf* vf = Find(vf_id);
  if (vf == nullptr) {
    return NotFound("vf: unknown id");
  }
  if (vf->quarantined) {
    ++vf->stats.dropped_quarantined;
    SNIC_OBS(if (vf->m_drops_quarantined != nullptr) {
      vf->m_drops_quarantined->Inc();
    });
    return Unavailable("vf: quarantined");
  }
  const auto posted = vf->ring.Peek();
  if (!posted.ok()) {
    ++vf->stats.dropped_no_descriptor;
    SNIC_OBS(if (vf->m_drops_no_desc != nullptr) vf->m_drops_no_desc->Inc());
    return ResourceExhausted("vf: no posted descriptor");
  }
  if (packet.size() > posted.value().descriptor.buffer_len) {
    // The frame does not fit the posted buffer; the descriptor is kept for
    // the next (smaller) frame rather than burned.
    ++vf->stats.dropped_oversize;
    return InvalidArgument("vf: frame exceeds posted buffer");
  }
  if (vf->cq.Full()) {
    ++vf->stats.dropped_cq_full;
    SNIC_OBS(if (vf->m_drops_cq_full != nullptr) vf->m_drops_cq_full->Inc());
    Strike(vf_id, *vf, VfAbuse::kCqSquat);
    return ResourceExhausted("vf: completion queue full");
  }
  const uint16_t frame_bytes = static_cast<uint16_t>(packet.size());
  const uint64_t span_id = packet.span_id();
  const Status enqueued = vf->vpp->EnqueueRx(std::move(packet));
  if (!enqueued.ok()) {
    // VPP backpressure (or an injected ingress fault): leave the descriptor
    // posted so the ring stops draining — that is the backpressure signal.
    ++vf->stats.dropped_vpp;
    SNIC_OBS(if (vf->m_drops_vpp != nullptr) vf->m_drops_vpp->Inc());
    return enqueued;
  }
  const auto consumed = vf->ring.Consume();
  const uint64_t wait =
      now_ >= consumed.value().post_cycle ? now_ - consumed.value().post_cycle
                                          : 0;
  if (wait > vf->stats.max_delivery_wait_cycles) {
    vf->stats.max_delivery_wait_cycles = wait;
  }
  const uint64_t len = consumed.value().descriptor.buffer_len;
  vf->posted_bytes = vf->posted_bytes >= len ? vf->posted_bytes - len : 0;
  CompletionQueue::Completion completion;
  completion.ring_index = consumed.value().descriptor.ring_index;
  completion.bytes = frame_bytes;
  completion.cycle = now_;
  completion.wait_cycles = wait;
  completion.span_id = span_id;
  SNIC_CHECK_OK(vf->cq.Push(completion));  // Full() was checked above
  ++vf->stats.delivered;
  SNIC_OBS(if (vf->m_delivered != nullptr) vf->m_delivered->Inc());
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    ring_->EmitInstant(span_deliver_, now_, static_cast<uint32_t>(vf->nf_id),
                       /*tid=*/0, span_id, wait, arg_residency_);
  });
  return OkStatus();
}

Result<uint32_t> PfVfManager::VfForNf(uint64_t nf_id) const {
  const auto it = nf_to_vf_.find(nf_id);
  if (it == nf_to_vf_.end()) {
    return Status(NotFound("vf: NF has no virtual function"));
  }
  return it->second;
}

void PfVfManager::AdvanceClockTo(uint64_t cycle) {
  if (cycle <= now_) {
    return;
  }
  now_ = cycle;
  for (auto& [vf_id, vf] : vfs_) {
    vf->doorbell.AdvanceTo(now_);
  }
}

bool PfVfManager::IsQuarantined(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf != nullptr && vf->quarantined;
}

uint64_t PfVfManager::NfOf(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? 0 : vf->nf_id;
}

const VfStats& PfVfManager::StatsOf(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? kEmptyVfStats : vf->stats;
}

const RxDescriptorRing::Stats& PfVfManager::RingStatsOf(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? kEmptyRingStats : vf->ring.stats();
}

const CompletionQueue::Stats& PfVfManager::CqStatsOf(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? kEmptyCqStats : vf->cq.stats();
}

const Doorbell::Stats& PfVfManager::DoorbellStatsOf(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? kEmptyDoorbellStats : vf->doorbell.stats();
}

uint32_t PfVfManager::RingOccupancy(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? 0 : vf->ring.posted();
}

uint32_t PfVfManager::CqPending(uint32_t vf_id) const {
  const Vf* vf = Find(vf_id);
  return vf == nullptr ? 0 : vf->cq.pending();
}

void PfVfManager::SetAbuseCallback(AbuseCallback callback) {
  abuse_callback_ = std::move(callback);
}

void PfVfManager::AttachVfObs(uint32_t vf_id, Vf& vf) {
  SNIC_OBS({
    if (registry_ == nullptr) {
      return;
    }
    const std::string id = std::to_string(vf_id);
    vf.m_posted = &registry_->GetCounter("vnic.posted", {{"vf", id}});
    vf.m_post_rejected =
        &registry_->GetCounter("vnic.post_rejected", {{"vf", id}});
    vf.m_rings = &registry_->GetCounter("vnic.doorbell.rings", {{"vf", id}});
    vf.m_rings_rejected =
        &registry_->GetCounter("vnic.doorbell.rejected", {{"vf", id}});
    vf.m_delivered = &registry_->GetCounter("vnic.delivered", {{"vf", id}});
    vf.m_drops_no_desc = &registry_->GetCounter(
        "vnic.drops", {{"vf", id}, {"reason", "no_descriptor"}});
    vf.m_drops_cq_full = &registry_->GetCounter(
        "vnic.drops", {{"vf", id}, {"reason", "cq_full"}});
    vf.m_drops_vpp = &registry_->GetCounter(
        "vnic.drops", {{"vf", id}, {"reason", "vpp_backpressure"}});
    vf.m_drops_quarantined = &registry_->GetCounter(
        "vnic.drops", {{"vf", id}, {"reason", "quarantined"}});
    vf.m_harvested = &registry_->GetCounter("vnic.harvested", {{"vf", id}});
    vf.m_resets = &registry_->GetCounter("vnic.vf.resets", {{"vf", id}});
    vf.m_abuse = &registry_->GetCounter("vnic.abuse.flagged", {{"vf", id}});
  });
}

void PfVfManager::AttachObs(obs::MetricRegistry* registry) {
  SNIC_OBS({
    registry_ = registry;
    for (auto& [vf_id, vf] : vfs_) {
      AttachVfObs(vf_id, *vf);
    }
  });
  (void)registry;
}

void PfVfManager::AttachTraceRing(obs::TraceRing* ring) {
  SNIC_TRACE_RING({
    ring_ = ring;
    if (ring_ != nullptr) {
      span_post_ = ring_->Intern(obs::spans::kVnicDescPost);
      span_doorbell_ = ring_->Intern(obs::spans::kVnicDoorbellRing);
      span_deliver_ = ring_->Intern(obs::spans::kVnicDeliver);
      span_harvest_ = ring_->Intern(obs::spans::kVnicHarvest);
      span_reset_ = ring_->Intern(obs::spans::kVnicVfReset);
      span_abuse_ = ring_->Intern(obs::spans::kVnicAbuseFlagged);
      arg_vf_ = ring_->Intern(obs::spans::kArgVf);
      arg_residency_ = ring_->Intern(obs::spans::kArgResidency);
      arg_cause_ = ring_->Intern(obs::spans::kArgCause);
    }
  });
  (void)ring;
}

}  // namespace snic::core::vnic
