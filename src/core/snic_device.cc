#include "src/core/snic_device.h"

#include <algorithm>

#include "src/core/vnic/pf_vf.h"
#include "src/fault/fault.h"
#include "src/net/parser.h"

namespace snic::core {

std::vector<accel::ClusterConfig> SnicConfig::DefaultAccelClusters() {
  std::vector<accel::ClusterConfig> configs;
  for (auto type : {accel::AcceleratorType::kDpi, accel::AcceleratorType::kZip,
                    accel::AcceleratorType::kRaid}) {
    accel::ClusterConfig c;
    c.type = type;
    c.total_threads = 64;
    c.threads_per_cluster = 4;  // 16 clusters (Table 3 first row)
    c.tlb_entries_per_cluster = 70;
    configs.push_back(c);
  }
  return configs;
}

SnicDevice::SnicDevice(const SnicConfig& config,
                       const crypto::VendorAuthority& vendor)
    : config_(config),
      memory_(config.dram_bytes, config.page_bytes),
      mgmt_denylist_(MakeDenylist(config.denylist_kind, memory_.num_pages())),
      accel_pool_(config.accel_clusters),
      rng_(config.boot_seed),
      root_of_trust_(vendor, config.rsa_modulus_bits, rng_) {
  SNIC_CHECK(config_.num_cores >= 2);  // NIC-OS core + at least one NF core
  SNIC_CHECK(config_.num_cores <= 64);
  SNIC_OBS(AttachObs(&obs::DefaultRegistry()));
}

void SnicDevice::AttachObs(obs::MetricRegistry* registry) {
  SNIC_OBS({
    obs_registry_ = registry;
    obs_launches_ = &registry->GetCounter("snic.nf.launches");
    obs_launch_failures_ = &registry->GetCounter("snic.nf.launch_failures");
    obs_teardowns_ = &registry->GetCounter("snic.nf.teardowns");
    obs_attests_ = &registry->GetCounter("snic.nf.attests");
    obs_denylist_rejections_ =
        &registry->GetCounter("snic.denylist.rejections");
    obs_unmatched_drops_ = &registry->GetCounter("snic.rx.unmatched_drops");
    obs_live_nfs_ = &registry->GetGauge("snic.nf.live");
  });
  (void)registry;
}

void SnicDevice::AttachTraceRing(obs::TraceRing* ring) {
  SNIC_TRACE_RING({
    trace_ring_ = ring;
    for (auto& [id, record] : nfs_) {
      if (record->vpp != nullptr) record->vpp->AttachTraceRing(ring);
    }
  });
  (void)ring;
}

Result<const SnicDevice::NfRecord*> SnicDevice::FindNf(uint64_t nf_id) const {
  const auto it = nfs_.find(nf_id);
  if (it == nfs_.end()) {
    return Status(ErrorCode::kNotFound, "unknown nf id");
  }
  return it->second.get();
}

Result<SnicDevice::NfRecord*> SnicDevice::FindNf(uint64_t nf_id) {
  const auto it = nfs_.find(nf_id);
  if (it == nfs_.end()) {
    return Status(ErrorCode::kNotFound, "unknown nf id");
  }
  return it->second.get();
}

Status SnicDevice::CheckLaunchArgs(const NfLaunchArgs& args) const {
  if (args.core_mask == 0) {
    return InvalidArgument("core_mask must name at least one core");
  }
  if (args.core_mask & 1) {
    return InvalidArgument("core 0 is the dedicated NIC-OS core");
  }
  if (config_.num_cores < 64 && (args.core_mask >> config_.num_cores) != 0) {
    return InvalidArgument("core_mask names nonexistent cores");
  }
  if (args.core_mask & core_allocation_mask_) {
    return AlreadyOwned("requested cores bound to a live function");
  }
  if (args.image_pages.empty()) {
    return InvalidArgument("function image is empty");
  }
  for (uint64_t page : args.image_pages) {
    if (page >= memory_.num_pages()) {
      return InvalidArgument("image page out of range");
    }
    const uint64_t owner = memory_.OwnerOf(page);
    if (owner != kPageNicOs && owner != kPageFree) {
      return AlreadyOwned("image page belongs to a live function");
    }
  }
  return OkStatus();
}

Result<uint64_t> SnicDevice::NfLaunch(const NfLaunchArgs& args) {
  if (config_.mode != SecurityMode::kSnic) {
    return FailedPrecondition("nf_launch requires S-NIC mode");
  }
  if (SNIC_FAULT_FIRES(fault::sites::kNfLaunch, next_nf_id_)) {
    SNIC_OBS(if (obs_launch_failures_ != nullptr) obs_launch_failures_->Inc());
    return ResourceExhausted("injected transient launch failure");
  }
  if (Status check = CheckLaunchArgs(args); !check.ok()) {
    SNIC_OBS(if (obs_launch_failures_ != nullptr) obs_launch_failures_->Inc());
    return check;
  }
  // Reserve accelerator clusters first (atomic failure path: nothing else
  // has been mutated yet; ReleaseAll undoes a partial grab below).
  const uint64_t nf_id = next_nf_id_;
  std::array<std::vector<uint32_t>, accel::kNumAcceleratorTypes> clusters;
  for (size_t t = 0; t < accel::kNumAcceleratorTypes; ++t) {
    if (args.accel_clusters[t] == 0) {
      continue;
    }
    auto allocated = accel_pool_.Allocate(static_cast<accel::AcceleratorType>(t),
                                          args.accel_clusters[t], nf_id);
    if (!allocated.ok()) {
      accel_pool_.ReleaseAll(nf_id);
      SNIC_OBS(
          if (obs_launch_failures_ != nullptr) obs_launch_failures_->Inc());
      return allocated.status();
    }
    clusters[t] = std::move(allocated.value());
  }

  // Heap pages.
  std::vector<uint64_t> pages = args.image_pages;
  if (args.heap_pages > 0) {
    auto heap = memory_.AllocatePages(args.heap_pages, nf_id);
    if (!heap.ok()) {
      accel_pool_.ReleaseAll(nf_id);
      SNIC_OBS(
          if (obs_launch_failures_ != nullptr) obs_launch_failures_->Inc());
      return heap.status();
    }
    pages.insert(pages.end(), heap.value().begin(), heap.value().end());
  }

  // Commit: build the record.
  ++next_nf_id_;
  auto record = std::make_unique<NfRecord>(nf_id, config_.core_tlb_entries);
  SNIC_OBS(if (obs_registry_ != nullptr) {
    obs::Labels tlb_labels;
    tlb_labels.emplace_back("nf_id", std::to_string(nf_id));
    record->tlb.AttachObs(obs_registry_, tlb_labels);
  });
  record->core_mask = args.core_mask;
  record->pages = pages;
  record->clusters = clusters;
  core_allocation_mask_ |= args.core_mask;

  coproc_.AccountTlbSetup();
  launch_latency_ = LaunchLatency{};
  launch_latency_.tlb_setup_ms = coproc_.rates().tlb_setup_ms;

  // Bind pages: ownership, denylist, and the function's locked TLB (virtual
  // address space starts at 0; one entry per physical page).
  crypto::Sha256 measurement;
  std::vector<uint8_t> page_buffer(memory_.page_bytes());
  const double sha_before = coproc_.elapsed_ms();
  for (size_t i = 0; i < record->pages.size(); ++i) {
    const uint64_t page = record->pages[i];
    memory_.SetOwner(page, nf_id);
    mgmt_denylist_->Deny(page);
    sim::TlbEntry entry;
    entry.virt_base = static_cast<uint64_t>(i) * memory_.page_bytes();
    entry.phys_base = page * memory_.page_bytes();
    entry.page_bytes = memory_.page_bytes();
    entry.writable = true;
    SNIC_CHECK_OK(record->tlb.Install(entry));
    // The measurement covers the *initial image* pages (heap pages are
    // zero-filled and excluded, like SGX's unmeasured heap).
    if (i < args.image_pages.size()) {
      memory_.Read(entry.phys_base,
                   std::span<uint8_t>(page_buffer.data(), page_buffer.size()));
      coproc_.DigestUpdate(measurement, std::span<const uint8_t>(
                                            page_buffer.data(),
                                            page_buffer.size()));
    }
  }
  record->tlb.Lock();
  coproc_.AccountDenylistUpdate();
  launch_latency_.denylist_ms = coproc_.rates().denylist_ms;

  // Configure the TLB banks of every allocated accelerator cluster with the
  // same virtual->physical mapping the cores received, then lock them
  // (§4.3: "hardware threads can only access the physical memory that
  // belongs to the new function").
  for (size_t t = 0; t < accel::kNumAcceleratorTypes; ++t) {
    for (uint32_t cluster : clusters[t]) {
      sim::LockedTlb& bank =
          accel_pool_.ClusterTlb(static_cast<accel::AcceleratorType>(t),
                                 cluster);
      for (size_t i = 0; i < record->pages.size(); ++i) {
        if (bank.entry_count() >= bank.max_entries()) {
          break;  // bank reach is bounded by its Table 3 capacity
        }
        sim::TlbEntry entry;
        entry.virt_base = static_cast<uint64_t>(i) * memory_.page_bytes();
        entry.phys_base = record->pages[i] * memory_.page_bytes();
        entry.page_bytes = memory_.page_bytes();
        entry.writable = true;
        SNIC_CHECK_OK(bank.Install(entry));
      }
      bank.Lock();
    }
  }

  // Fold in the configuration blob (switch rules, resource requests).
  coproc_.DigestUpdate(measurement,
                       std::span<const uint8_t>(args.config_blob.data(),
                                                args.config_blob.size()));
  record->measurement = measurement.Finalize();
  launch_latency_.sha_digest_ms = coproc_.elapsed_ms() - sha_before;

  // Install the VPP; its switch rules become live immediately. It joins
  // the device clock mid-flight and publishes its overload series wherever
  // the device's own counters live.
  record->vpp = std::make_unique<VirtualPacketPipeline>(nf_id, args.vpp);
  record->vpp->AdvanceClockTo(now_);
  SNIC_OBS(if (obs_registry_ != nullptr) {
    record->vpp->AttachObs(obs_registry_);
  });
  SNIC_TRACE_RING(if (trace_ring_ != nullptr) {
    record->vpp->AttachTraceRing(trace_ring_);
  });

  nfs_[nf_id] = std::move(record);
  SNIC_OBS({
    if (obs_launches_ != nullptr) {
      obs_launches_->Inc();
    }
    if (obs_live_nfs_ != nullptr) {
      obs_live_nfs_->Set(static_cast<double>(nfs_.size()));
    }
  });
  return nf_id;
}

Status SnicDevice::NfTeardown(uint64_t nf_id) {
  if (config_.mode != SecurityMode::kSnic) {
    return FailedPrecondition("nf_teardown requires S-NIC mode");
  }
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  NfRecord* record = found.value();

  teardown_latency_ = TeardownLatency{};
  const double scrub_before = coproc_.elapsed_ms();
  // Zero every physical page, then return it to the free pool and remove it
  // from the denylist.
  for (uint64_t page : record->pages) {
    memory_.ZeroPage(page);
    coproc_.AccountScrub(memory_.page_bytes());
    memory_.SetOwner(page, kPageFree);
    mgmt_denylist_->Allow(page);
  }
  teardown_latency_.scrub_ms = coproc_.elapsed_ms() - scrub_before;
  coproc_.AccountAllowlistUpdate();
  teardown_latency_.allowlist_ms = coproc_.rates().allowlist_ms;

  core_allocation_mask_ &= ~record->core_mask;
  accel_pool_.ReleaseAll(nf_id);
  nfs_.erase(nf_id);
  SNIC_OBS({
    if (obs_teardowns_ != nullptr) {
      obs_teardowns_->Inc();
    }
    if (obs_live_nfs_ != nullptr) {
      obs_live_nfs_->Set(static_cast<double>(nfs_.size()));
    }
  });
  return OkStatus();
}

Result<AttestationQuote> SnicDevice::NfAttest(uint64_t nf_id,
                                              const AttestationRequest& request) {
  if (config_.mode != SecurityMode::kSnic) {
    return FailedPrecondition("nf_attest requires S-NIC mode");
  }
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  const NfRecord* record = found.value();

  AttestationQuote quote;
  quote.measurement = record->measurement;
  quote.group = request.group;
  quote.nonce = request.nonce;
  quote.g_x = request.g_x;
  const std::vector<uint8_t> payload =
      QuotePayload(quote.measurement, quote.group, quote.nonce, quote.g_x);
  coproc_.AccountRsaSign();
  quote.signature = root_of_trust_.SignWithAk(
      std::span<const uint8_t>(payload.data(), payload.size()));
  SNIC_OBS(if (obs_attests_ != nullptr) obs_attests_->Inc());
  quote.ak_public = root_of_trust_.ak_public();
  quote.ak_endorsement = root_of_trust_.ak_endorsement();
  quote.ek_certificate = root_of_trust_.ek_certificate();
  return quote;
}

Status SnicDevice::NfReadBlock(uint64_t nf_id, uint64_t vaddr,
                               std::span<uint8_t> out) const {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  const NfRecord* record = found.value();
  // Translate page-by-page: a block may span entries.
  size_t done = 0;
  while (done < out.size()) {
    const auto translation = record->tlb.Translate(vaddr + done);
    if (!translation.has_value()) {
      return PermissionDenied("TLB miss: address not mapped for this NF");
    }
    const uint64_t page_off = (vaddr + done) % memory_.page_bytes();
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(
        out.size() - done, memory_.page_bytes() - page_off));
    memory_.Read(translation->phys_addr, out.subspan(done, chunk));
    done += chunk;
  }
  return OkStatus();
}

Status SnicDevice::NfWriteBlock(uint64_t nf_id, uint64_t vaddr,
                                std::span<const uint8_t> data) {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  const NfRecord* record = found.value();
  size_t done = 0;
  while (done < data.size()) {
    const auto translation = record->tlb.Translate(vaddr + done);
    if (!translation.has_value()) {
      return PermissionDenied("TLB miss: address not mapped for this NF");
    }
    if (!translation->writable) {
      return PermissionDenied("write to read-only mapping");
    }
    const uint64_t page_off = (vaddr + done) % memory_.page_bytes();
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(
        data.size() - done, memory_.page_bytes() - page_off));
    memory_.Write(translation->phys_addr, data.subspan(done, chunk));
    done += chunk;
  }
  return OkStatus();
}

Result<uint8_t> SnicDevice::NfRead(uint64_t nf_id, uint64_t vaddr) const {
  uint8_t byte = 0;
  if (Status s = NfReadBlock(nf_id, vaddr, std::span<uint8_t>(&byte, 1));
      !s.ok()) {
    return s;
  }
  return byte;
}

Status SnicDevice::NfWrite(uint64_t nf_id, uint64_t vaddr, uint8_t value) {
  return NfWriteBlock(nf_id, vaddr, std::span<const uint8_t>(&value, 1));
}

Result<uint8_t> SnicDevice::MgmtReadPhys(uint64_t paddr) const {
  if (paddr >= memory_.total_bytes()) {
    return InvalidArgument("physical address out of range");
  }
  if (config_.mode == SecurityMode::kSnic &&
      mgmt_denylist_->IsDenied(paddr / memory_.page_bytes())) {
    SNIC_OBS(if (obs_denylist_rejections_ != nullptr) {
      obs_denylist_rejections_->Inc();
    });
    return PermissionDenied("denylisted page (owned by a live NF)");
  }
  return memory_.ReadByte(paddr);
}

Status SnicDevice::MgmtWritePhys(uint64_t paddr, uint8_t value) {
  if (paddr >= memory_.total_bytes()) {
    return InvalidArgument("physical address out of range");
  }
  if (config_.mode == SecurityMode::kSnic &&
      mgmt_denylist_->IsDenied(paddr / memory_.page_bytes())) {
    SNIC_OBS(if (obs_denylist_rejections_ != nullptr) {
      obs_denylist_rejections_->Inc();
    });
    return PermissionDenied("denylisted page (owned by a live NF)");
  }
  memory_.WriteByte(paddr, value);
  return OkStatus();
}

Result<uint8_t> SnicDevice::CoreReadPhys(uint32_t core, uint64_t paddr) const {
  if (core >= config_.num_cores) {
    return InvalidArgument("no such core");
  }
  if (config_.mode == SecurityMode::kSnic) {
    return PermissionDenied(
        "S-NIC programmable cores have no physical addressing");
  }
  if (paddr >= memory_.total_bytes()) {
    return InvalidArgument("physical address out of range");
  }
  return memory_.ReadByte(paddr);
}

Status SnicDevice::CoreWritePhys(uint32_t core, uint64_t paddr, uint8_t value) {
  if (core >= config_.num_cores) {
    return InvalidArgument("no such core");
  }
  if (config_.mode == SecurityMode::kSnic) {
    return PermissionDenied(
        "S-NIC programmable cores have no physical addressing");
  }
  if (paddr >= memory_.total_bytes()) {
    return InvalidArgument("physical address out of range");
  }
  memory_.WriteByte(paddr, value);
  return OkStatus();
}

Status SnicDevice::DeliverFromWire(net::Packet packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    ++unmatched_rx_drops_;
    SNIC_OBS(if (obs_unmatched_drops_ != nullptr) {
      obs_unmatched_drops_->Inc();
    });
    return parsed.status();
  }
  for (auto& [id, record] : nfs_) {
    if (record->vpp != nullptr && record->vpp->Matches(parsed.value())) {
      // With the vNIC front-end attached, a matched frame goes through the
      // owning VF's descriptor ring and quotas first; NFs without a VF keep
      // the direct path.
      if (vnic_front_end_ != nullptr) {
        const auto vf = vnic_front_end_->VfForNf(id);
        if (vf.ok()) {
          return vnic_front_end_->DeliverToVf(vf.value(), std::move(packet));
        }
      }
      return record->vpp->EnqueueRx(std::move(packet));
    }
  }
  ++unmatched_rx_drops_;
  SNIC_OBS(if (obs_unmatched_drops_ != nullptr) {
    obs_unmatched_drops_->Inc();
  });
  return NotFound("no switch rule matched");
}

Result<net::Packet> SnicDevice::NfReceive(uint64_t nf_id) {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  NfRecord* record = found.value();
  if (record->vpp == nullptr) {
    return FailedPrecondition("function has no VPP");
  }
  return record->vpp->DequeueRx();
}

Status SnicDevice::NfSend(uint64_t nf_id, net::Packet packet) {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  NfRecord* record = found.value();
  if (record->vpp == nullptr) {
    return FailedPrecondition("function has no VPP");
  }
  return record->vpp->EnqueueTx(std::move(packet));
}

Result<net::Packet> SnicDevice::TransmitToWire() {
  if (nfs_.empty()) {
    return NotFound("no live functions");
  }
  // Round-robin across NFs with pending TX, starting after the last served.
  std::vector<NfRecord*> records;
  records.reserve(nfs_.size());
  for (auto& [id, record] : nfs_) {
    records.push_back(record.get());
  }
  for (size_t k = 0; k < records.size(); ++k) {
    NfRecord* record = records[(rr_tx_cursor_ + k + 1) % records.size()];
    // PeekTx sheds stale frames first, so a queue holding only expired
    // frames does not stall the round-robin on a NotFound dequeue.
    if (record->vpp != nullptr && record->vpp->PeekTx() != nullptr) {
      rr_tx_cursor_ = (rr_tx_cursor_ + k + 1) % records.size();
      return record->vpp->DequeueTx();
    }
  }
  return NotFound("no pending TX");
}

void SnicDevice::AdvanceClockTo(uint64_t cycle) {
  if (cycle <= now_) {
    return;
  }
  now_ = cycle;
  for (auto& [id, record] : nfs_) {
    if (record->vpp != nullptr) {
      record->vpp->AdvanceClockTo(cycle);
    }
  }
  if (vnic_front_end_ != nullptr) {
    vnic_front_end_->AdvanceClockTo(cycle);
  }
}

void SnicDevice::AttachVnicFrontEnd(vnic::PfVfManager* front_end) {
  vnic_front_end_ = front_end;
  if (vnic_front_end_ != nullptr) {
    vnic_front_end_->AdvanceClockTo(now_);
  }
}

bool SnicDevice::IsLive(uint64_t nf_id) const { return nfs_.count(nf_id) > 0; }

std::vector<uint64_t> SnicDevice::LiveNfIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(nfs_.size());
  for (const auto& [id, record] : nfs_) {
    ids.push_back(id);
  }
  return ids;
}

Result<crypto::Sha256Digest> SnicDevice::MeasurementOf(uint64_t nf_id) const {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  return found.value()->measurement;
}

Result<uint64_t> SnicDevice::CoresOf(uint64_t nf_id) const {
  auto found = FindNf(nf_id);
  if (!found.ok()) {
    return found.status();
  }
  return found.value()->core_mask;
}

VirtualPacketPipeline* SnicDevice::Vpp(uint64_t nf_id) {
  auto found = FindNf(nf_id);
  return found.ok() ? found.value()->vpp.get() : nullptr;
}

uint32_t SnicDevice::FreeCores() const {
  uint32_t free_count = 0;
  for (uint32_t c = 1; c < config_.num_cores; ++c) {
    if ((core_allocation_mask_ & (1ull << c)) == 0) {
      ++free_count;
    }
  }
  return free_count;
}

}  // namespace snic::core
