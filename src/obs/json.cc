#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace snic::obs::json {

std::string Quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    auto value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return InvalidArgument("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + why);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      auto str = ParseString();
      if (!str.ok()) {
        return str.status();
      }
      Value v;
      v.kind_ = Value::Kind::kString;
      v.string_ = std::move(str.value());
      return v;
    }
    if (ConsumeLiteral("true")) {
      Value v;
      v.kind_ = Value::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      Value v;
      v.kind_ = Value::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (ConsumeLiteral("null")) {
      return Value();
    }
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    Value v;
    v.kind_ = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return v;
    }
    for (;;) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      auto member = ParseValue();
      if (!member.ok()) {
        return member;
      }
      v.object_.emplace_back(std::move(key.value()),
                             std::move(member.value()));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    Value v;
    v.kind_ = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return v;
    }
    for (;;) {
      auto element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      v.array_.push_back(std::move(element.value()));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status(ErrorCode::kInvalidArgument,
                    "expected '\"' at offset " + std::to_string(pos_));
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status(ErrorCode::kInvalidArgument,
                          "truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Status(ErrorCode::kInvalidArgument,
                            "bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the exporters only
          // escape control characters, which fit in one unit).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Status(ErrorCode::kInvalidArgument, "bad escape character");
      }
    }
    return Status(ErrorCode::kInvalidArgument, "unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = number;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<Value> Value::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace snic::obs::json
