#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "src/obs/json.h"

namespace snic::obs {

LatencyHistogram::LatencyHistogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), histogram_(lo, hi, buckets) {}

void LatencyHistogram::Record(double v) {
  if (std::isnan(v)) {
    return;  // NaN samples are dropped (see SampleSet::Add)
  }
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  histogram_.Add(v);
}

double LatencyHistogram::MinValue() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double LatencyHistogram::MaxValue() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double LatencyHistogram::MeanValue() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::PercentileEstimate(double p) const {
  if (count_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  const size_t n = histogram_.NumBuckets();
  const double bucket_width = (hi_ - lo_) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t in_bucket = histogram_.BucketCount(i);
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation within the bucket, clamped to observed extremes
      // (edge buckets absorb out-of-range samples).
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double value = histogram_.BucketLow(i) + frac * bucket_width;
      return std::clamp(value, min_, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

bool LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      histogram_.NumBuckets() != other.histogram_.NumBuckets()) {
    return false;
  }
  if (other.count_ == 0) {
    return true;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  histogram_.MergeFrom(other.histogram_);
  return true;
}

void LatencyHistogram::Reset() {
  histogram_ = snic::Histogram(lo_, hi_, histogram_.NumBuckets());
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricRegistry::Key MetricRegistry::MakeKey(std::string_view name,
                                            Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& MetricRegistry::GetCounter(std::string_view name, Labels labels) {
  MutexLock lock(&mu_);
  auto& slot = counters_[MakeKey(name, std::move(labels))];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, Labels labels) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[MakeKey(name, std::move(labels))];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

LatencyHistogram& MetricRegistry::GetHistogram(std::string_view name,
                                               Labels labels, double lo,
                                               double hi, size_t buckets) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[MakeKey(name, std::move(labels))];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>(lo, hi, buckets);
  }
  return *slot;
}

const Counter* MetricRegistry::FindCounter(std::string_view name,
                                           const Labels& labels) const {
  MutexLock lock(&mu_);
  const auto it = counters_.find(MakeKey(name, labels));
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricRegistry::FindGauge(std::string_view name,
                                       const Labels& labels) const {
  MutexLock lock(&mu_);
  const auto it = gauges_.find(MakeKey(name, labels));
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricRegistry::FindHistogram(
    std::string_view name, const Labels& labels) const {
  MutexLock lock(&mu_);
  const auto it = histograms_.find(MakeKey(name, labels));
  return it == histograms_.end() ? nullptr : it->second.get();
}

size_t MetricRegistry::NumSeries() const {
  MutexLock lock(&mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [key, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [key, histogram] : histograms_) {
    histogram->Reset();
  }
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  if (&other == this) {
    return;
  }
  // Lock order target-then-source is safe: `other` must be quiescent for
  // the duration of the call (class contract), so no thread can be running
  // the mirror-image merge that would invert the order.
  MutexLock lock(&mu_);
  MutexLock other_lock(&other.mu_);
  for (const auto& [key, counter] : other.counters_) {
    auto& slot = counters_[key];
    if (slot == nullptr) {
      slot = std::make_unique<Counter>();
    }
    slot->Inc(counter->value());
  }
  for (const auto& [key, gauge] : other.gauges_) {
    auto& slot = gauges_[key];
    if (slot == nullptr) {
      slot = std::make_unique<Gauge>();
    }
    slot->Set(gauge->value());
  }
  for (const auto& [key, histogram] : other.histograms_) {
    auto& slot = histograms_[key];
    if (slot == nullptr) {
      slot = std::make_unique<LatencyHistogram>(
          histogram->lo(), histogram->hi(),
          histogram->histogram().NumBuckets());
    }
    // Geometry clashes mean two shards (or a shard and the target) disagree
    // about a series — a bug in the sweep, not recoverable here.
    SNIC_CHECK(slot->MergeFrom(*histogram));
  }
}

namespace {

std::string LabelsSuffix(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

void AppendLabelsJson(std::string* out, const Labels& labels) {
  *out += "\"labels\":{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      *out += ",";
    }
    *out += json::Quote(labels[i].first) + ":" + json::Quote(labels[i].second);
  }
  *out += "}";
}

std::string FmtDouble(double v) {
  if (std::isnan(v)) {
    return "null";  // JSON has no NaN
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricRegistry::ExportText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [key, counter] : counters_) {
    out += key.name + LabelsSuffix(key.labels) + " " +
           std::to_string(counter->value()) + "\n";
  }
  for (const auto& [key, gauge] : gauges_) {
    out += key.name + LabelsSuffix(key.labels) + " " +
           FmtDouble(gauge->value()) + "\n";
  }
  for (const auto& [key, histogram] : histograms_) {
    out += key.name + LabelsSuffix(key.labels) + " count=" +
           std::to_string(histogram->count()) +
           " mean=" + FmtDouble(histogram->MeanValue()) +
           " p50=" + FmtDouble(histogram->PercentileEstimate(50)) +
           " p99=" + FmtDouble(histogram->PercentileEstimate(99)) +
           " max=" + FmtDouble(histogram->MaxValue()) + "\n";
  }
  return out;
}

std::string MetricRegistry::ExportJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":" + json::Quote(key.name) + ",";
    AppendLabelsJson(&out, key.labels);
    out += ",\"value\":" + std::to_string(counter->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":" + json::Quote(key.name) + ",";
    AppendLabelsJson(&out, key.labels);
    out += ",\"value\":" + FmtDouble(gauge->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":" + json::Quote(key.name) + ",";
    AppendLabelsJson(&out, key.labels);
    out += ",\"count\":" + std::to_string(histogram->count());
    out += ",\"sum\":" + FmtDouble(histogram->sum());
    out += ",\"min\":" + FmtDouble(histogram->MinValue());
    out += ",\"max\":" + FmtDouble(histogram->MaxValue());
    out += ",\"mean\":" + FmtDouble(histogram->MeanValue());
    out += ",\"p50\":" + FmtDouble(histogram->PercentileEstimate(50));
    out += ",\"p99\":" + FmtDouble(histogram->PercentileEstimate(99));
    out += ",\"buckets\":[";
    const snic::Histogram& h = histogram->histogram();
    bool first_bucket = true;
    for (size_t i = 0; i < h.NumBuckets(); ++i) {
      if (h.BucketCount(i) == 0) {
        continue;  // sparse: empty buckets are implicit
      }
      if (!first_bucket) {
        out += ",";
      }
      first_bucket = false;
      out += "{\"lo\":" + FmtDouble(h.BucketLow(i)) +
             ",\"count\":" + std::to_string(h.BucketCount(i)) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status MetricRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgument("cannot open metrics output file: " + path);
  }
  const std::string body = ExportJson();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to metrics output file: " + path);
  }
  return OkStatus();
}

MetricRegistry& GlobalRegistry() {
  // Intentionally never destroyed: instrumented objects cache raw series
  // pointers and may outlive any static-destruction order (a destructor
  // running during exit teardown must still be able to Inc()). The leak is
  // one registry per process, reclaimed by the OS. This is the only mutable
  // process-wide static in the tree; snic_lint's no-mutable-file-static
  // rule names it (and the thread-local override below) in
  // tools/snic_lint/allowlist.txt so any new ambient state fails the build.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

namespace {
thread_local MetricRegistry* tls_default_registry = nullptr;
}  // namespace

MetricRegistry& DefaultRegistry() {
  return tls_default_registry != nullptr ? *tls_default_registry
                                         : GlobalRegistry();
}

ScopedDefaultRegistry::ScopedDefaultRegistry(MetricRegistry* registry)
    : previous_(tls_default_registry) {
  tls_default_registry = registry;
}

ScopedDefaultRegistry::~ScopedDefaultRegistry() {
  tls_default_registry = previous_;
}

}  // namespace snic::obs
