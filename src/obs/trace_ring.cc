#include "src/obs/trace_ring.h"

#include <cstdio>
#include <utility>

namespace snic::obs {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'I', 'C', 'T', 'R', 'B', '1'};

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked little-endian cursor over the serialized image.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) {
      return false;
    }
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    uint8_t lo = 0;
    uint8_t hi = 0;
    if (!ReadU8(&lo) || !ReadU8(&hi)) {
      return false;
    }
    *v = static_cast<uint16_t>(lo | (hi << 8));
    return true;
  }
  bool ReadU32(uint32_t* v) {
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      uint8_t b = 0;
      if (!ReadU8(&b)) {
        return false;
      }
      *v |= static_cast<uint32_t>(b) << (8 * i);
    }
    return true;
  }
  bool ReadU64(uint64_t* v) {
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      uint8_t b = 0;
      if (!ReadU8(&b)) {
        return false;
      }
      *v |= static_cast<uint64_t>(b) << (8 * i);
    }
    return true;
  }
  bool ReadBytes(size_t n, std::string_view* v) {
    if (pos_ + n > data_.size()) {
      return false;
    }
    *v = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t NameTable::HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint16_t NameTable::Intern(std::string_view name) {
  if (name.empty()) {
    return kNoName;
  }
  if (buckets_.empty()) {
    buckets_.assign(kInitialBuckets, 0);
  }
  const size_t mask = buckets_.size() - 1;
  size_t slot = HashName(name) & mask;
  while (buckets_[slot] != 0) {
    if (names_[buckets_[slot]] == name) {
      return buckets_[slot];
    }
    slot = (slot + 1) & mask;
  }
  if (names_.size() > kMaxNames) {
    return kNoName;  // table exhausted; degrade rather than abort the run
  }
  const uint16_t id = static_cast<uint16_t>(names_.size());
  names_.emplace_back(name);
  buckets_[slot] = id;
  // Keep load below 50% so probe chains stay short.
  if ((names_.size() - 1) * 2 > buckets_.size()) {
    Grow();
  }
  return id;
}

uint16_t NameTable::Find(std::string_view name) const {
  if (name.empty() || buckets_.empty()) {
    return kNoName;
  }
  const size_t mask = buckets_.size() - 1;
  size_t slot = HashName(name) & mask;
  while (buckets_[slot] != 0) {
    if (names_[buckets_[slot]] == name) {
      return buckets_[slot];
    }
    slot = (slot + 1) & mask;
  }
  return kNoName;
}

std::string_view NameTable::NameOf(uint16_t id) const {
  if (id >= names_.size()) {
    return std::string_view();
  }
  return names_[id];
}

void NameTable::Grow() {
  std::vector<uint16_t> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, 0);
  const size_t mask = buckets_.size() - 1;
  for (uint16_t id : old) {
    if (id == 0) {
      continue;
    }
    size_t slot = HashName(names_[id]) & mask;
    while (buckets_[slot] != 0) {
      slot = (slot + 1) & mask;
    }
    buckets_[slot] = id;
  }
}

void TraceRing::SetProcessName(uint32_t pid, std::string_view name) {
  lanes_.push_back(Lane{pid, 0, Intern(name), /*is_process=*/true});
}

void TraceRing::SetThreadName(uint32_t pid, uint32_t tid,
                              std::string_view name) {
  lanes_.push_back(Lane{pid, tid, Intern(name), /*is_process=*/false});
}

void TraceRing::Clear() {
  storage_.clear();
  next_ = 0;
  wrapped_ = false;
  evicted_ = 0;
  lanes_.clear();
}

void TraceRing::Append(const TraceRing& other) {
  // Remap the other ring's name ids into this table, preserving first-seen
  // order so serial and stitched-parallel sinks intern identically.
  std::vector<uint16_t> remap(other.names_.size(), NameTable::kNoName);
  bool identity = true;
  for (size_t id = 1; id < other.names_.size(); ++id) {
    remap[id] = Intern(other.names_.NameOf(static_cast<uint16_t>(id)));
    identity = identity && remap[id] == id;
  }
  auto map_id = [&remap](uint16_t id) {
    return id < remap.size() ? remap[id] : NameTable::kNoName;
  };
  for (const Lane& lane : other.lanes_) {
    lanes_.push_back(Lane{lane.pid, lane.tid, map_id(lane.name),
                          lane.is_process});
  }
  // Oldest-first as at most two contiguous slices, so the merge loop never
  // pays record(i)'s wraparound arithmetic per record. Sweep merges are the
  // common case: shards attach/intern in the same deterministic order, so
  // the remap is the identity and an unbounded sink takes the slices as two
  // bulk (memcpy) inserts.
  const TraceRecord* base = other.storage_.data();
  const size_t n = other.storage_.size();
  const std::pair<const TraceRecord*, size_t> slices[2] = {
      other.wrapped_ ? std::pair{base + other.next_, n - other.next_}
                     : std::pair{base, n},
      other.wrapped_ ? std::pair{base, other.next_}
                     : std::pair{base, size_t{0}},
  };
  for (const auto& [first, count] : slices) {
    if (count == 0) {
      continue;
    }
    if (identity && capacity_ == 0) {
      storage_.insert(storage_.end(), first, first + count);
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      TraceRecord r = first[i];
      r.name = map_id(r.name);
      r.arg_name = map_id(r.arg_name);
      if (r.arg_is_name != 0) {
        r.arg = map_id(static_cast<uint16_t>(r.arg));
      }
      Push(r);
    }
  }
  evicted_ += other.evicted_;
}

void TraceRing::ConvertTo(TraceLog* log) const {
  for (const Lane& lane : lanes_) {
    if (lane.is_process) {
      log->SetProcessName(lane.pid, NameOf(lane.name));
    } else {
      log->SetThreadName(lane.pid, lane.tid, NameOf(lane.name));
    }
  }
  for (size_t i = 0; i < size(); ++i) {
    const TraceRecord& r = record(i);
    Labels args;
    if (r.arg_name != NameTable::kNoName) {
      std::string value =
          r.arg_is_name != 0
              ? std::string(NameOf(static_cast<uint16_t>(r.arg)))
              : std::to_string(r.arg);
      args.emplace_back(std::string(NameOf(r.arg_name)), std::move(value));
    }
    if (r.span != 0) {
      args.emplace_back("span", std::to_string(r.span));
    }
    switch (r.kind) {
      case TraceRecord::kComplete:
        log->AddComplete(NameOf(r.name), r.ts, r.dur, r.pid, r.tid,
                         std::move(args));
        break;
      case TraceRecord::kInstant:
        log->AddInstant(NameOf(r.name), r.ts, r.pid, r.tid, std::move(args));
        break;
      case TraceRecord::kCounter: {
        double value = 0.0;
        std::memcpy(&value, &r.dur, sizeof(value));
        log->AddCounter(NameOf(r.name), r.ts, r.pid, value);
        break;
      }
      default:
        break;
    }
  }
}

std::string TraceRing::ToChromeJson() const {
  TraceLog log;
  ConvertTo(&log);
  return log.ToJson();
}

std::string TraceRing::SerializeBinary() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, static_cast<uint32_t>(names_.size()));
  for (size_t id = 0; id < names_.size(); ++id) {
    const std::string_view name = names_.NameOf(static_cast<uint16_t>(id));
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name.data(), name.size());
  }
  PutU32(&out, static_cast<uint32_t>(lanes_.size()));
  for (const Lane& lane : lanes_) {
    PutU32(&out, lane.pid);
    PutU32(&out, lane.tid);
    PutU16(&out, lane.name);
    PutU8(&out, lane.is_process ? 1 : 0);
  }
  PutU64(&out, evicted_);
  PutU64(&out, static_cast<uint64_t>(size()));
  for (size_t i = 0; i < size(); ++i) {
    const TraceRecord& r = record(i);
    PutU64(&out, r.ts);
    PutU64(&out, r.dur);
    PutU64(&out, r.span);
    PutU64(&out, r.arg);
    PutU32(&out, r.pid);
    PutU32(&out, r.tid);
    PutU16(&out, r.name);
    PutU16(&out, r.arg_name);
    PutU8(&out, r.kind);
    PutU8(&out, r.arg_is_name);
  }
  return out;
}

Status TraceRing::ParseBinary(std::string_view data) {
  Reader in(data);
  std::string_view magic;
  if (!in.ReadBytes(sizeof(kMagic), &magic) ||
      magic != std::string_view(kMagic, sizeof(kMagic))) {
    return InvalidArgument("trace ring: bad magic (not a SNICTRB1 image)");
  }
  TraceRing parsed(0);
  uint32_t name_count = 0;
  if (!in.ReadU32(&name_count) || name_count == 0) {
    return InvalidArgument("trace ring: truncated name table");
  }
  std::vector<uint16_t> ids(name_count, NameTable::kNoName);
  for (uint32_t i = 0; i < name_count; ++i) {
    uint32_t len = 0;
    std::string_view name;
    if (!in.ReadU32(&len) || !in.ReadBytes(len, &name)) {
      return InvalidArgument("trace ring: truncated name entry");
    }
    ids[i] = i == 0 ? NameTable::kNoName : parsed.Intern(name);
  }
  auto map_id = [&ids](uint16_t id) {
    return id < ids.size() ? ids[id] : NameTable::kNoName;
  };
  uint32_t lane_count = 0;
  if (!in.ReadU32(&lane_count)) {
    return InvalidArgument("trace ring: truncated lane table");
  }
  for (uint32_t i = 0; i < lane_count; ++i) {
    Lane lane{};
    uint8_t is_process = 0;
    uint16_t name = 0;
    if (!in.ReadU32(&lane.pid) || !in.ReadU32(&lane.tid) ||
        !in.ReadU16(&name) || !in.ReadU8(&is_process)) {
      return InvalidArgument("trace ring: truncated lane entry");
    }
    lane.name = map_id(name);
    lane.is_process = is_process != 0;
    parsed.lanes_.push_back(lane);
  }
  uint64_t evicted = 0;
  uint64_t record_count = 0;
  if (!in.ReadU64(&evicted) || !in.ReadU64(&record_count)) {
    return InvalidArgument("trace ring: truncated record header");
  }
  for (uint64_t i = 0; i < record_count; ++i) {
    TraceRecord r;
    if (!in.ReadU64(&r.ts) || !in.ReadU64(&r.dur) || !in.ReadU64(&r.span) ||
        !in.ReadU64(&r.arg) || !in.ReadU32(&r.pid) || !in.ReadU32(&r.tid) ||
        !in.ReadU16(&r.name) || !in.ReadU16(&r.arg_name) ||
        !in.ReadU8(&r.kind) || !in.ReadU8(&r.arg_is_name)) {
      return InvalidArgument("trace ring: truncated record");
    }
    r.name = map_id(r.name);
    r.arg_name = map_id(r.arg_name);
    if (r.arg_is_name != 0) {
      r.arg = map_id(static_cast<uint16_t>(r.arg));
    }
    parsed.Push(r);
  }
  if (!in.AtEnd()) {
    return InvalidArgument("trace ring: trailing bytes after records");
  }
  parsed.evicted_ = evicted;
  *this = std::move(parsed);
  return OkStatus();
}

Status TraceRing::WriteBinaryFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgument("cannot open trace ring output file: " + path);
  }
  const std::string body = SerializeBinary();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to trace ring output file: " + path);
  }
  return OkStatus();
}

Status TraceRing::ReadBinaryFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return InvalidArgument("cannot open trace ring input file: " + path);
  }
  std::string body;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return ParseBinary(body);
}

}  // namespace snic::obs
