// Fixed-record binary ring-buffer trace encoder.
//
// TraceLog (trace_event.h) allocates a std::string per event and stringifies
// labels on the hot path — measured at ~15% on the Fig. 5a replay loop
// (BENCH_obs_overhead.json), which is why traces got switched off for the
// big sweeps. TraceRing replaces that hot path with a POD record per event:
// interned 16-bit name ids (registered once at attach time), a 64-bit span
// id minted at VPP ingress and propagated across layers, and one free
// argument word. Recording is a handful of stores into a preallocated ring;
// serialization, JSON conversion and analysis all happen offline after the
// run (tools/snic_trace).
//
// Determinism contract (docs/RUNTIME.md): like TraceLog, a TraceRing is
// SINGLE-OWNER — the parallel sweep runtime records into one ring per task
// and stitches them with Append() on the joining thread in task-index order,
// so ToChromeJson() and SerializeBinary() are byte-identical at every
// --jobs count. There is deliberately no mutex; the TSan CI job enforces
// the contract dynamically.
//
// Bounded rings overwrite their oldest record once full and count the
// evictions; capacity 0 means unbounded (used for merge sinks and parsed
// files). Compile-out: wrap emission sites in SNIC_TRACE_RING(), which —
// like SNIC_OBS() — becomes nothing under -DSNIC_OBS_DISABLED.

#ifndef SNIC_OBS_TRACE_RING_H_
#define SNIC_OBS_TRACE_RING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace_event.h"

// Wraps one ring/span emission statement; compiles to nothing under
// -DSNIC_OBS_DISABLED. Usage:
//   SNIC_TRACE_RING(if (ring_) ring_->EmitInstant(rx_enq_, now_, pid, 0));
#ifdef SNIC_OBS_DISABLED
#define SNIC_TRACE_RING(stmt) \
  do {                        \
  } while (0)
#else
#define SNIC_TRACE_RING(stmt) \
  do {                        \
    stmt;                     \
  } while (0)
#endif

namespace snic::obs {

// One trace event. Plain data, fixed size, no ownership: strings live in the
// owning ring's NameTable and are referenced by id.
struct TraceRecord {
  enum Kind : uint8_t { kComplete = 0, kInstant = 1, kCounter = 2 };

  uint64_t ts = 0;        // simulated cycles
  uint64_t dur = 0;       // span length (kComplete) or double bits (kCounter)
  uint64_t span = 0;      // causal span id; 0 = none
  uint64_t arg = 0;       // free word, keyed by arg_name
  uint32_t pid = 0;       // process lane: NF / security-domain id
  uint32_t tid = 0;       // thread lane within the process
  uint16_t name = 0;      // interned event name id
  uint16_t arg_name = 0;  // interned key for `arg`; 0 = no argument
  uint8_t kind = kComplete;
  uint8_t arg_is_name = 0;  // `arg` is itself an interned name id
};
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord must stay POD: the ring memcpy-merges records");
static_assert(sizeof(TraceRecord) <= 48, "keep the hot-path record small");

// String interning table: stable 16-bit ids for event/argument names,
// assigned in first-Intern order (so merge order stays deterministic). Open
// addressing with linear probing; the bucket count is a power of two
// starting at kInitialBuckets and doubling past 50% load. Id 0 (kNoName) is
// reserved for "no name"; the table holds at most kMaxNames real names and
// Intern() degrades to kNoName when exhausted rather than aborting a run.
class NameTable {
 public:
  static constexpr uint16_t kNoName = 0;
  static constexpr size_t kMaxNames = 65535;
  static constexpr size_t kInitialBuckets = 16;

  // FNV-1a 64-bit. Public so tests can construct deliberate bucket
  // collisions (two names with equal hash % kInitialBuckets).
  static uint64_t HashName(std::string_view name);

  // Returns the existing id for `name` or assigns the next one.
  uint16_t Intern(std::string_view name);
  // kNoName when absent.
  uint16_t Find(std::string_view name) const;
  // Empty string for kNoName and out-of-range ids.
  std::string_view NameOf(uint16_t id) const;
  // Number of interned names including the reserved kNoName slot.
  size_t size() const { return names_.size(); }

 private:
  void Grow();

  std::vector<std::string> names_ = {std::string()};  // slot 0 = kNoName
  std::vector<uint16_t> buckets_;  // name ids; 0 = empty slot
};

// The ring itself: records + lane metadata + the name table.
class TraceRing {
 public:
  // capacity_records == 0 means unbounded (merge sinks, parsed files).
  // Bounded rings preallocate and, once full, overwrite the oldest record.
  explicit TraceRing(size_t capacity_records = 0) : capacity_(capacity_records) {
    if (capacity_ != 0) {
      storage_.reserve(capacity_);
    }
  }

  // --- Hot path -----------------------------------------------------------
  // Name ids come from Intern() at attach/registration time; each Emit is a
  // fixed-size store with no allocation (bounded ring) past warm-up.

  void EmitComplete(uint16_t name, uint64_t ts, uint64_t dur, uint32_t pid,
                    uint32_t tid, uint64_t span = 0, uint64_t arg = 0,
                    uint16_t arg_name = 0) {
    Push(TraceRecord{ts, dur, span, arg, pid, tid, name, arg_name,
                     TraceRecord::kComplete, 0});
  }
  void EmitInstant(uint16_t name, uint64_t ts, uint32_t pid, uint32_t tid,
                   uint64_t span = 0, uint64_t arg = 0, uint16_t arg_name = 0,
                   bool arg_is_name = false) {
    Push(TraceRecord{ts, 0, span, arg, pid, tid, name, arg_name,
                     TraceRecord::kInstant,
                     static_cast<uint8_t>(arg_is_name ? 1 : 0)});
  }
  void EmitCounter(uint16_t name, uint64_t ts, uint32_t pid, double value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    Push(TraceRecord{ts, bits, 0, 0, pid, 0, name, 0, TraceRecord::kCounter,
                     0});
  }

  // --- Registration -------------------------------------------------------

  uint16_t Intern(std::string_view name) { return names_.Intern(name); }
  std::string_view NameOf(uint16_t id) const { return names_.NameOf(id); }
  size_t name_count() const { return names_.size(); }

  // Lane metadata, kept in recorded order (duplicates preserved) so the
  // converter reproduces TraceLog's 'M' records byte-for-byte.
  void SetProcessName(uint32_t pid, std::string_view name);
  void SetThreadName(uint32_t pid, uint32_t tid, std::string_view name);

  // --- Access (oldest record first) ---------------------------------------

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  size_t capacity() const { return capacity_; }
  // Records dropped to make room since construction / Clear().
  uint64_t evicted() const { return evicted_; }
  const TraceRecord& record(size_t i) const {
    return storage_[wrapped_ ? (next_ + i) % storage_.size() : i];
  }

  // Drops records, lanes and eviction counts; interned names survive so
  // cached ids from AttachTraceRing() stay valid across reps.
  void Clear();

  // Appends another ring's records (oldest first) and lanes, remapping its
  // name ids into this ring's table. The sweep runtime calls this on the
  // joining thread in task-index order; evictions are carried over.
  void Append(const TraceRing& other);

  // --- Offline conversion / serialization ---------------------------------

  // Replays every lane and record into a TraceLog. Records without args and
  // without a span convert to events byte-identical to ones recorded through
  // the legacy API; arg/span words render as string args ("span", arg_name).
  void ConvertTo(TraceLog* log) const;
  // ConvertTo() + TraceLog::ToJson(): {"traceEvents":[...]}.
  std::string ToChromeJson() const;

  // Compact binary image (magic "SNICTRB1", little-endian, name table +
  // lanes + records). Parse accepts exactly what Serialize emits.
  std::string SerializeBinary() const;
  Status ParseBinary(std::string_view data);
  Status WriteBinaryFile(const std::string& path) const;
  Status ReadBinaryFile(const std::string& path);

  struct Lane {
    uint32_t pid;
    uint32_t tid;  // ignored for process names
    uint16_t name;
    bool is_process;
  };
  // Recorded lane metadata, in registration order (tools/snic_trace reads
  // these to label tenants in its timelines).
  const std::vector<Lane>& lanes() const { return lanes_; }

 private:
  void Push(const TraceRecord& r) {
    if (capacity_ == 0 || storage_.size() < capacity_) {
      storage_.push_back(r);
      return;
    }
    storage_[next_] = r;
    wrapped_ = true;
    next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
    ++evicted_;
  }

  size_t capacity_;
  std::vector<TraceRecord> storage_;
  size_t next_ = 0;      // overwrite cursor == index of the oldest record
  bool wrapped_ = false;
  uint64_t evicted_ = 0;
  std::vector<Lane> lanes_;
  NameTable names_;
};

}  // namespace snic::obs

#endif  // SNIC_OBS_TRACE_RING_H_
