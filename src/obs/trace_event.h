// Chrome-trace / Perfetto-compatible event tracing over simulated cycles.
//
// Emits the Trace Event Format consumed by chrome://tracing and
// https://ui.perfetto.dev: a JSON object {"traceEvents":[...]} whose entries
// carry {"name","ph","ts","dur","pid","tid"}. In the simulator, `pid` is the
// security domain / NF id (one "process" lane per colocated function, plus a
// dedicated lane for the shared bus) and `ts` is the simulated cycle count,
// so a whole Fig. 5 replay can be opened in Perfetto and the FCFS-vs-temporal
// bus schedules *seen* side by side.
//
// The log is an append-only vector; recording a span is one emplace_back
// (no I/O, no locking). Serialization happens once at the end of a run.
//
// Threading: a TraceLog is SINGLE-OWNER — it belongs to the scenario/task
// that records into it, and per-task logs are stitched together with
// Append() on the joining thread (src/runtime/sweep.cc). There is
// deliberately no mutex (appending is on the <2% obs-overhead hot path);
// the contract is enforced dynamically by the TSan CI job rather than by
// clang -Wthread-safety, which covers the mutex-guarded classes
// (docs/STATIC_ANALYSIS.md).

#ifndef SNIC_OBS_TRACE_EVENT_H_
#define SNIC_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace snic::obs {

struct TraceEvent {
  std::string name;
  char ph = 'X';     // 'X' complete span, 'i' instant, 'C' counter sample
  uint64_t ts = 0;   // simulated cycles (or µs for wall-clock spans)
  uint64_t dur = 0;  // span length; meaningful for ph == 'X'
  uint32_t pid = 0;  // process lane: NF / security-domain id
  uint32_t tid = 0;  // thread lane within the process
  Labels args;       // free-form key/values rendered into "args"
  double counter_value = 0.0;  // for ph == 'C'
};

class TraceLog {
 public:
  // Complete span covering [ts, ts + dur).
  void AddComplete(std::string_view name, uint64_t ts, uint64_t dur,
                   uint32_t pid, uint32_t tid, Labels args = {});
  // Zero-duration marker.
  void AddInstant(std::string_view name, uint64_t ts, uint32_t pid,
                  uint32_t tid, Labels args = {});
  // Counter track sample (renders as a filled graph in Perfetto).
  void AddCounter(std::string_view name, uint64_t ts, uint32_t pid,
                  double value);

  // Metadata: names shown on the process / thread lanes.
  void SetProcessName(uint32_t pid, std::string_view name);
  void SetThreadName(uint32_t pid, uint32_t tid, std::string_view name);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear();

  // Appends another log's events and lane names in their recorded order.
  // Used by the parallel sweep runtime to stitch per-task logs together in
  // task-index order, reproducing the single serial log byte-for-byte.
  void Append(const TraceLog& other);

  // {"traceEvents":[...]} with metadata ('M') records first.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct LaneName {
    uint32_t pid;
    uint32_t tid;       // ignored for process names
    bool is_process;
    std::string name;
  };

  std::vector<TraceEvent> events_;
  std::vector<LaneName> lane_names_;
};

// RAII complete-span over a caller-owned simulated clock: reads *cycle_clock
// at construction and again at destruction (or End()). Pass the address of
// the cycle counter the instrumented code advances.
class ScopedSpan {
 public:
  ScopedSpan(TraceLog* log, std::string_view name, uint32_t pid, uint32_t tid,
             const uint64_t* cycle_clock);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Emits the span early; the destructor then does nothing.
  void End();

 private:
  TraceLog* log_;
  std::string name_;
  uint32_t pid_;
  uint32_t tid_;
  const uint64_t* cycle_clock_;
  uint64_t start_;
  bool ended_ = false;
};

}  // namespace snic::obs

#endif  // SNIC_OBS_TRACE_EVENT_H_
