// Registered span and argument-key names for the binary trace ring.
//
// Every name a ring emission site interns must come from this header (or be
// an existing documented trace name), be listed in
// tools/snic_lint/span_names.txt, and appear verbatim in the "Binary tracing
// & spans" section of docs/OBSERVABILITY.md. The snic_lint
// `span-name-registry` rule enforces all three, so adding a span means
// touching this file, the registry and the doc together — exactly like fault
// sites and metric names.
//
// Values deliberately avoid every fault-site string (e.g. "vpp.rx.drop"):
// the fault-site uniqueness rule treats site strings as globally unique.

#ifndef SNIC_OBS_SPAN_NAMES_H_
#define SNIC_OBS_SPAN_NAMES_H_

#include <string_view>

namespace snic::obs::spans {

// VPP frame lifecycle. A span id is minted when a frame enters EnqueueRx and
// rides the packet through every queue and chain hop it touches.
inline constexpr std::string_view kVppRxEnqueue = "vpp.rx.enqueue";
inline constexpr std::string_view kVppRxDequeue = "vpp.rx.dequeue";
inline constexpr std::string_view kVppTxEnqueue = "vpp.tx.enqueue";
inline constexpr std::string_view kVppTxDequeue = "vpp.tx.dequeue";
inline constexpr std::string_view kVppRxRejected = "vpp.rx.rejected";
inline constexpr std::string_view kVppDeadlineShed = "vpp.deadline_shed";

// Inter-NF chaining (credit stalls included).
inline constexpr std::string_view kChainHop = "chain.hop";
inline constexpr std::string_view kChainStall = "chain.stall";

// Accelerator dispatch gate and circuit breaker.
inline constexpr std::string_view kAccelDispatch = "accel.dispatch";
inline constexpr std::string_view kAccelFallback = "accel.fallback";
inline constexpr std::string_view kAccelBreaker = "accel.breaker";

// Supervisor recovery events mirror the documented TraceLog instants.
inline constexpr std::string_view kSupervisorCrash = "supervisor.crash";
inline constexpr std::string_view kSupervisorRestart = "supervisor.restart";
inline constexpr std::string_view kSupervisorDowngrade = "supervisor.downgrade";
inline constexpr std::string_view kSupervisorQuarantine =
    "supervisor.quarantine";

// Fault-plane injections: one name, the fired site rides in the arg word as
// an interned name id (key "site").
inline constexpr std::string_view kFaultFired = "fault.fired";

// vNIC front-end (src/core/vnic): the device-edge leg of a frame's life.
// kVnicDeliver carries the frame's span id across the descriptor-ring hop;
// the others are per-VF instants on the owning NF's lane (arg key "vf").
inline constexpr std::string_view kVnicDescPost = "vnic.desc.post";
inline constexpr std::string_view kVnicDoorbellRing = "vnic.doorbell.ring";
inline constexpr std::string_view kVnicDeliver = "vnic.deliver";
inline constexpr std::string_view kVnicHarvest = "vnic.harvest";
inline constexpr std::string_view kVnicVfReset = "vnic.vf.reset";
inline constexpr std::string_view kVnicAbuseFlagged = "vnic.abuse.flagged";

// Argument keys (TraceRecord::arg_name). The arg word's meaning per key:
//   depth      queue depth after the enqueue
//   residency  cycles the frame spent queued (dequeue/shed time - enqueue)
//   cause      reason code (admission reject / crash cause enum value)
//   state      circuit-breaker state ordinal
//   peer       the other NF id on a chain hop or stall
//   site       interned name id of the fired fault site
//   vf         VF id of the vNIC front-end event
inline constexpr std::string_view kArgDepth = "depth";
inline constexpr std::string_view kArgResidency = "residency";
inline constexpr std::string_view kArgCause = "cause";
inline constexpr std::string_view kArgState = "state";
inline constexpr std::string_view kArgPeer = "peer";
inline constexpr std::string_view kArgSite = "site";
inline constexpr std::string_view kArgVf = "vf";

}  // namespace snic::obs::spans

#endif  // SNIC_OBS_SPAN_NAMES_H_
