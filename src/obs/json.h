// Minimal zero-dependency JSON support for the observability layer.
//
// The exporters (metrics snapshots, Chrome trace events, bench sidecars)
// emit JSON by string concatenation; this header provides the escaping they
// share plus a small recursive-descent parser so the tests can load the
// output back and assert on structure instead of substring-matching. The
// parser handles the full JSON grammar the exporters produce (objects,
// arrays, strings with \uXXXX escapes, numbers, true/false/null); it is not
// intended as a general-purpose JSON library.

#ifndef SNIC_OBS_JSON_H_
#define SNIC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace snic::obs::json {

// JSON string literal for `s`: quotes, backslash-escapes, and \u00XX for
// control characters.
std::string Quote(std::string_view s);

// Parsed JSON value. Object member order is preserved.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& AsObject() const {
    return object_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  // Parses one JSON document (must consume the whole input modulo trailing
  // whitespace).
  static Result<Value> Parse(std::string_view text);

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

}  // namespace snic::obs::json

#endif  // SNIC_OBS_JSON_H_
