#include "src/obs/trace_event.h"

#include <cmath>
#include <cstdio>

#include "src/obs/json.h"

namespace snic::obs {

void TraceLog::AddComplete(std::string_view name, uint64_t ts, uint64_t dur,
                           uint32_t pid, uint32_t tid, Labels args) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.ph = 'X';
  ev.ts = ts;
  ev.dur = dur;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceLog::AddInstant(std::string_view name, uint64_t ts, uint32_t pid,
                          uint32_t tid, Labels args) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.ph = 'i';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceLog::AddCounter(std::string_view name, uint64_t ts, uint32_t pid,
                          double value) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.ph = 'C';
  ev.ts = ts;
  ev.pid = pid;
  ev.counter_value = value;
  events_.push_back(std::move(ev));
}

void TraceLog::SetProcessName(uint32_t pid, std::string_view name) {
  lane_names_.push_back(LaneName{pid, 0, /*is_process=*/true,
                                 std::string(name)});
}

void TraceLog::SetThreadName(uint32_t pid, uint32_t tid,
                             std::string_view name) {
  lane_names_.push_back(LaneName{pid, tid, /*is_process=*/false,
                                 std::string(name)});
}

void TraceLog::Clear() {
  events_.clear();
  lane_names_.clear();
}

void TraceLog::Append(const TraceLog& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  lane_names_.insert(lane_names_.end(), other.lane_names_.begin(),
                     other.lane_names_.end());
}

std::string TraceLog::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ",";
    }
    first = false;
  };
  // Metadata records first so viewers label lanes before any event needs
  // them.
  for (const LaneName& lane : lane_names_) {
    comma();
    out += "{\"name\":";
    out += lane.is_process ? "\"process_name\"" : "\"thread_name\"";
    out += ",\"ph\":\"M\",\"pid\":" + std::to_string(lane.pid) +
           ",\"tid\":" + std::to_string(lane.tid) +
           ",\"args\":{\"name\":" + json::Quote(lane.name) + "}}";
  }
  for (const TraceEvent& ev : events_) {
    comma();
    out += "{\"name\":" + json::Quote(ev.name) + ",\"ph\":\"" + ev.ph +
           "\",\"ts\":" + std::to_string(ev.ts) +
           ",\"pid\":" + std::to_string(ev.pid) +
           ",\"tid\":" + std::to_string(ev.tid);
    if (ev.ph == 'X') {
      out += ",\"dur\":" + std::to_string(ev.dur);
    }
    if (ev.ph == 'i') {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    if (ev.ph == 'C') {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", ev.counter_value);
      out += ",\"args\":{\"value\":";
      out += buf;
      out += "}";
    } else if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += json::Quote(ev.args[i].first) + ":" +
               json::Quote(ev.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  // displayTimeUnit keeps Perfetto's ruler in sane units for cycle counts.
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

Status TraceLog::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgument("cannot open trace output file: " + path);
  }
  const std::string body = ToJson();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Internal("short write to trace output file: " + path);
  }
  return OkStatus();
}

ScopedSpan::ScopedSpan(TraceLog* log, std::string_view name, uint32_t pid,
                       uint32_t tid, const uint64_t* cycle_clock)
    : log_(log),
      name_(name),
      pid_(pid),
      tid_(tid),
      cycle_clock_(cycle_clock),
      start_(*cycle_clock) {}

void ScopedSpan::End() {
  if (ended_) {
    return;
  }
  ended_ = true;
  const uint64_t now = *cycle_clock_;
  log_->AddComplete(name_, start_, now >= start_ ? now - start_ : 0, pid_,
                    tid_);
}

ScopedSpan::~ScopedSpan() { End(); }

}  // namespace snic::obs
