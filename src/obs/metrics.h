// Lightweight, zero-dependency metrics layer.
//
// The paper's whole evaluation is about *measuring* cross-tenant interference
// (IPC degradation, bus wait cycles, cache miss inflation, §5), so the
// simulator's internals need to be observable at runtime rather than through
// ad-hoc return values. This registry gives every layer named counters,
// gauges and latency histograms with hierarchical labels (`nf_id`, `core`,
// `component`), plus text and JSON snapshot exporters that the benches dump
// as machine-readable sidecars.
//
// Hot-path discipline: an instrumented class looks its metric up once
// (`MetricRegistry::GetCounter` returns a stable reference) and keeps a raw
// pointer; each event is then a plain `uint64_t` add — no locks, no hashing,
// no allocation, no atomics.
//
// Threading / sharding contract (see docs/RUNTIME.md): individual series
// values are single-writer — a registry that is being recorded into belongs
// to exactly one thread. The parallel sweep runtime therefore gives every
// task a private *shard* registry and merges the shards into a target
// registry at join via MergeFrom (counters sum, gauges last-write-win in
// merge order, histograms add bucket-wise). Registry-level operations
// (series creation, Find*, MergeFrom, exports, ResetAll) are guarded by an
// internal mutex, so snapshotting a registry (ExportText / ExportJson /
// WriteJsonFile) is safe while other threads merge shards into it or create
// series — only raw pointer-cached Inc/Set/Record on the *same* registry
// must stay single-threaded.
//
// Compile-out: building with -DSNIC_OBS_DISABLED turns every statement
// wrapped in SNIC_OBS() into nothing, so the instrumentation can be proven
// free (bench/obs_overhead.cc tracks the enabled cost; the acceptance bar is
// <2% on the Fig. 5 replay path).

#ifndef SNIC_OBS_METRICS_H_
#define SNIC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

// Wraps one instrumentation statement; compiles to nothing under
// -DSNIC_OBS_DISABLED. Usage: SNIC_OBS(if (hits_) hits_->Inc());
#ifdef SNIC_OBS_DISABLED
#define SNIC_OBS(stmt) \
  do {                 \
  } while (0)
#else
#define SNIC_OBS(stmt) \
  do {                 \
    stmt;              \
  } while (0)
#endif

namespace snic::obs {

// Label set attached to a metric, e.g. {{"core","3"},{"config","snic"}}.
// Stored sorted by key so {a,b} and {b,a} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (flow-table occupancy, live heap bytes, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket latency/size distribution with O(1) memory per series:
// a snic::Histogram over [lo, hi) plus running count/sum/min/max. Percentiles
// are estimated by linear interpolation inside the owning bucket (exact
// enough for dashboards; the benches keep exact SampleSets where the paper
// needs precise p1/p99 error bars).
class LatencyHistogram {
 public:
  LatencyHistogram(double lo, double hi, size_t buckets);

  void Record(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double MinValue() const;   // NaN when empty
  double MaxValue() const;   // NaN when empty
  double MeanValue() const;  // NaN when empty
  // Estimated percentile, p in [0, 100]; NaN when empty.
  double PercentileEstimate(double p) const;

  const snic::Histogram& histogram() const { return histogram_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  // Adds another histogram's samples (bucket-wise counts plus running
  // count/sum/min/max). Both histograms must share the same geometry;
  // returns false and leaves *this untouched otherwise.
  bool MergeFrom(const LatencyHistogram& other);

  void Reset();

 private:
  double lo_;
  double hi_;
  snic::Histogram histogram_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Holds every metric series, keyed by (name, labels). References returned by
// the getters stay valid for the registry's lifetime — including across
// ResetAll() — so instrumented hot paths may cache raw pointers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. Labels are canonicalized (sorted by key).
  Counter& GetCounter(std::string_view name, Labels labels = {});
  Gauge& GetGauge(std::string_view name, Labels labels = {});
  // Bucket geometry applies only on first creation of the series.
  LatencyHistogram& GetHistogram(std::string_view name, Labels labels = {},
                                 double lo = 0.0, double hi = 4096.0,
                                 size_t buckets = 64);

  // Lookup without creating; nullptr when the series does not exist.
  const Counter* FindCounter(std::string_view name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(std::string_view name,
                         const Labels& labels = {}) const;
  const LatencyHistogram* FindHistogram(std::string_view name,
                                        const Labels& labels = {}) const;

  size_t NumSeries() const;

  // Zeroes every value but keeps all registrations (cached pointers stay
  // valid). Use between bench repetitions or tests.
  void ResetAll();

  // Folds another registry (typically a per-task shard) into this one:
  // counters add, gauges overwrite (so merging shards in ascending task
  // order makes the highest-indexed writer win, mirroring a serial run),
  // histograms merge bucket-wise. Series missing here are created with the
  // shard's geometry; a histogram series present in both with differing
  // geometry aborts (shards of one sweep must agree on geometry). `other`
  // must be quiescent (no concurrent writers) for the duration of the call.
  void MergeFrom(const MetricRegistry& other);

  // One line per series: name{k=v,...} value. Sorted, stable.
  std::string ExportText() const;
  // {"counters":[...],"gauges":[...],"histograms":[...]} — parseable by
  // obs::json and round-tripped in the tests.
  std::string ExportJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& other) const {
      if (name != other.name) {
        return name < other.name;
      }
      return labels < other.labels;
    }
  };

  static Key MakeKey(std::string_view name, Labels labels);

  // Guards the series maps (creation, lookup, merge, export, reset) — not
  // the values behind the returned references, which stay single-writer.
  // The guard is machine-checked: clang's -Wthread-safety (CI job) rejects
  // any access to the maps outside a MutexLock on mu_.
  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ SNIC_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ SNIC_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_
      SNIC_GUARDED_BY(mu_);
};

// Process-wide default registry. Device/NF constructors attach here (via
// DefaultRegistry) so the benches can dump one coherent snapshot via
// --metrics-out.
MetricRegistry& GlobalRegistry();

// The registry newly constructed instrumented objects attach to: the
// innermost ScopedDefaultRegistry override on the calling thread, else
// GlobalRegistry(). Sweep workers install their task's shard registry as
// the override so object construction never races on the global maps.
MetricRegistry& DefaultRegistry();

// RAII thread-local override of DefaultRegistry(). Nestable; the previous
// override is restored on destruction.
class ScopedDefaultRegistry {
 public:
  explicit ScopedDefaultRegistry(MetricRegistry* registry);
  ~ScopedDefaultRegistry();

  ScopedDefaultRegistry(const ScopedDefaultRegistry&) = delete;
  ScopedDefaultRegistry& operator=(const ScopedDefaultRegistry&) = delete;

 private:
  MetricRegistry* previous_;
};

}  // namespace snic::obs

#endif  // SNIC_OBS_METRICS_H_
