// Longest-prefix-match NF using DIR-24-8 (§5.1, [Gupta et al., INFOCOM'98]).
//
// TBL24 holds one entry per /24 (2^24 entries); prefixes longer than /24
// spill into 256-entry TBL8 chunks. Like NetBricks, the routing table is
// built from 16,000 random prefixes. The big flat TBL24 is what gives LPM
// its 64+ MB footprint in Table 6.

#ifndef SNIC_NF_LPM_H_
#define SNIC_NF_LPM_H_

#include <cstdint>
#include <vector>

#include "src/nf/network_function.h"

namespace snic::nf {

struct LpmRoute {
  uint32_t prefix = 0;
  uint8_t prefix_len = 0;
  uint32_t next_hop = 0;
};

struct LpmConfig {
  size_t num_routes = 16'000;
  uint64_t seed = 17;
};

class Lpm : public NetworkFunction {
 public:
  explicit Lpm(const LpmConfig& config = {});
  explicit Lpm(const std::vector<LpmRoute>& routes);

  // Longest-prefix lookup; returns the next hop (0 = default route).
  uint32_t Lookup(uint32_t dst_ip);

  size_t tbl8_chunks() const { return tbl8_.size() / 256; }

  // Deterministic random route table (mix of /8../32 prefixes).
  static std::vector<LpmRoute> GenerateRoutes(size_t count, uint64_t seed);

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.86, 0.06, 2.51}; }

 private:
  void Build(const std::vector<LpmRoute>& routes);

  // Entry encoding: bit 31 = TBL8 indirection; low 24 bits = next hop or
  // TBL8 chunk index. 32-bit entries match the profiled 64.9 MB footprint.
  static constexpr uint32_t kIndirect = 0x80000000u;

  std::vector<uint32_t> tbl24_;  // 2^24 entries
  std::vector<uint32_t> tbl8_;   // chunks of 256
  ArenaAllocation tbl24_allocation_;
  ArenaAllocation tbl8_allocation_;
};

}  // namespace snic::nf

#endif  // SNIC_NF_LPM_H_
