// Stateful firewall NF (§5.1).
//
// Drops packets by scanning an ordered rule list (643 rules, the
// SafeBricks/Emerging-Threats configuration); recently matched flows are
// cached in a hash map bounded to 200,000 entries (the Open vSwitch cached-
// flow limit the paper cites).

#ifndef SNIC_NF_FIREWALL_H_
#define SNIC_NF_FIREWALL_H_

#include <cstdint>
#include <vector>

#include "src/net/switching.h"
#include "src/nf/flow_hash_map.h"
#include "src/nf/network_function.h"

namespace snic::nf {

struct FirewallRule {
  net::SwitchRule match;
  bool allow = false;
};

struct FirewallConfig {
  size_t num_rules = 643;
  size_t cache_max_entries = 200'000;
  uint64_t seed = 7;
  // Fraction of generated rules that allow (the rest deny).
  double allow_fraction = 0.7;
};

class Firewall : public NetworkFunction {
 public:
  explicit Firewall(const FirewallConfig& config = {});

  // Explicit rules instead of the generated set (tests).
  Firewall(std::vector<FirewallRule> rules, size_t cache_max_entries);

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  size_t rule_count() const { return rules_.size(); }

  // Deterministic ruleset with Emerging-Threats-like structure: CIDR
  // prefixes over common service ports, final default-allow rule.
  static std::vector<FirewallRule> GenerateRules(size_t count, uint64_t seed,
                                                 double allow_fraction);

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.87, 0.08, 2.50}; }
  uint64_t FlowTableEntries() const override {
    return cache_ == nullptr ? 0 : cache_->size();
  }

 private:
  void Init(std::vector<FirewallRule> rules, size_t cache_max_entries);

  std::vector<FirewallRule> rules_;
  ArenaAllocation rules_allocation_;
  std::unique_ptr<FlowHashMap<uint8_t>> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace snic::nf

#endif  // SNIC_NF_FIREWALL_H_
