#include "src/nf/firewall.h"

#include "src/common/rng.h"
#include "src/net/parser.h"

namespace snic::nf {

std::vector<FirewallRule> Firewall::GenerateRules(size_t count, uint64_t seed,
                                                  double allow_fraction) {
  Rng rng(seed);
  std::vector<FirewallRule> rules;
  rules.reserve(count);
  static constexpr uint16_t kServicePorts[] = {22,  25,  53,   80,  110, 143,
                                               443, 445, 3306, 5432, 6379, 8080};
  for (size_t i = 0; i + 1 < count; ++i) {
    FirewallRule rule;
    net::SwitchRule::IpPrefix prefix;
    if (i % 8 == 3) {
      // Broad rules over the monitored address space: real rulesets place
      // high-prevalence rules that terminate most scans early.
      prefix.addr = 0xc0a80000u | (rng.NextU32() & 0x00000c00u);
      prefix.prefix_len = 22;
    } else {
      prefix.addr = rng.NextU32();
      prefix.prefix_len = static_cast<uint8_t>(8 + rng.NextBounded(17));
    }
    if (prefix.prefix_len != 22 && rng.NextBounded(2) == 0) {
      rule.match.src_ip = prefix;
    } else {
      rule.match.dst_ip = prefix;
    }
    if (rng.NextBounded(3) != 0) {
      rule.match.dst_port = kServicePorts[rng.NextBounded(std::size(kServicePorts))];
    }
    if (rng.NextBounded(4) == 0) {
      rule.match.protocol = static_cast<uint8_t>(
          rng.NextBounded(2) == 0 ? net::IpProto::kTcp : net::IpProto::kUdp);
    }
    rule.allow = rng.NextDouble() < allow_fraction;
    rules.push_back(rule);
  }
  // Default rule: allow everything not otherwise matched.
  FirewallRule default_rule;
  default_rule.allow = true;
  rules.push_back(default_rule);
  return rules;
}

Firewall::Firewall(const FirewallConfig& config) : NetworkFunction("FW") {
  Init(GenerateRules(config.num_rules, config.seed, config.allow_fraction),
       config.cache_max_entries);
}

Firewall::Firewall(std::vector<FirewallRule> rules, size_t cache_max_entries)
    : NetworkFunction("FW") {
  Init(std::move(rules), cache_max_entries);
}

void Firewall::Init(std::vector<FirewallRule> rules,
                    size_t cache_max_entries) {
  rules_ = std::move(rules);
  // The rule list lives in NF RAM; model ~128 B per compiled rule.
  rules_allocation_ = arena().Alloc(rules_.size() * 128, "fw-rules");
  // Bounded cache: capacity sized so the bound, not the load factor, is the
  // limiting constraint (200k entries -> 512k slots).
  cache_ = std::make_unique<FlowHashMap<uint8_t>>(
      &arena(), &recorder_, cache_max_entries * 2, cache_max_entries,
      "fw-cache");
}

Verdict Firewall::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const net::FiveTuple tuple = parsed.value().Tuple();

  if (const uint8_t* verdict = cache_->Find(tuple)) {
    ++cache_hits_;
    recorder_.Compute(4);
    return *verdict == 1 ? Verdict::kForward : Verdict::kDrop;
  }
  ++cache_misses_;

  // Linear scan of the rule list, touching each rule's RAM.
  bool allow = true;
  for (size_t i = 0; i < rules_.size(); ++i) {
    recorder_.Load(rules_allocation_.base + i * 128);
    recorder_.Compute(8);
    if (rules_[i].match.Matches(parsed.value())) {
      allow = rules_[i].allow;
      break;
    }
  }
  cache_->Insert(tuple, allow ? uint8_t{1} : uint8_t{0});
  return allow ? Verdict::kForward : Verdict::kDrop;
}

}  // namespace snic::nf
