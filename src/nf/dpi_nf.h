// DPI network function (§5.1): Aho-Corasick pattern matching over packet
// payloads, with 33,471 patterns matching the cardinality of the six
// open-source rulesets the paper extracts from. Packets whose payload hits
// any pattern are dropped (IDS-style inline blocking).

#ifndef SNIC_NF_DPI_NF_H_
#define SNIC_NF_DPI_NF_H_

#include <memory>

#include "src/accel/aho_corasick.h"
#include "src/nf/network_function.h"

namespace snic::nf {

struct DpiConfig {
  size_t num_patterns = 33'471;
  uint64_t seed = 11;
  // Matching instructions charged per scanned byte (automaton transition +
  // output check).
  uint32_t instructions_per_byte = 6;
  // Hot top-of-graph region that absorbs 31/32 of the walk's node touches.
  uint64_t hot_graph_bytes = 96 * 1024;
};

class DpiNf : public NetworkFunction {
 public:
  explicit DpiNf(const DpiConfig& config = {});

  // Shares a prebuilt automaton (the bench builds the 33K-pattern graph once
  // and reuses it across co-tenancy mixes).
  DpiNf(std::shared_ptr<const accel::AhoCorasick> automaton,
        const DpiConfig& config);

  uint64_t matches() const { return matches_; }
  const accel::AhoCorasick& automaton() const { return *automaton_; }

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {1.34, 0.56, 2.59}; }

 private:
  void RegisterGraph();

  DpiConfig config_;
  std::shared_ptr<const accel::AhoCorasick> automaton_;
  ArenaAllocation graph_allocation_;
  uint64_t matches_ = 0;
};

}  // namespace snic::nf

#endif  // SNIC_NF_DPI_NF_H_
