#include "src/nf/nf_factory.h"

#include "src/common/status.h"
#include "src/nf/dpi_nf.h"
#include "src/nf/firewall.h"
#include "src/nf/lpm.h"
#include "src/nf/maglev_lb.h"
#include "src/nf/monitor.h"
#include "src/nf/nat.h"

namespace snic::nf {

std::string_view NfKindName(NfKind kind) {
  switch (kind) {
    case NfKind::kFirewall:
      return "FW";
    case NfKind::kDpi:
      return "DPI";
    case NfKind::kNat:
      return "NAT";
    case NfKind::kLoadBalancer:
      return "LB";
    case NfKind::kLpm:
      return "LPM";
    case NfKind::kMonitor:
      return "Mon";
  }
  return "?";
}

std::vector<NfKind> AllNfKinds() {
  return {NfKind::kFirewall, NfKind::kDpi,  NfKind::kNat,
          NfKind::kLoadBalancer, NfKind::kLpm, NfKind::kMonitor};
}

std::unique_ptr<NetworkFunction> MakeNf(NfKind kind, bool light) {
  switch (kind) {
    case NfKind::kFirewall: {
      FirewallConfig config;
      if (light) {
        config.num_rules = 64;
        config.cache_max_entries = 4096;
      }
      return std::make_unique<Firewall>(config);
    }
    case NfKind::kDpi: {
      DpiConfig config;
      if (light) {
        config.num_patterns = 512;
      }
      return std::make_unique<DpiNf>(config);
    }
    case NfKind::kNat:
      return std::make_unique<Nat>();
    case NfKind::kLoadBalancer: {
      MaglevConfig config;
      if (light) {
        config.num_backends = 10;
        config.table_size = 4099;
      }
      return std::make_unique<MaglevLb>(config);
    }
    case NfKind::kLpm: {
      LpmConfig config;
      if (light) {
        config.num_routes = 512;
      }
      return std::make_unique<Lpm>(config);
    }
    case NfKind::kMonitor:
      return std::make_unique<Monitor>();
  }
  SNIC_CHECK(false);
  return nullptr;
}

}  // namespace snic::nf
