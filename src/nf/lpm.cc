#include "src/nf/lpm.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/parser.h"

namespace snic::nf {

std::vector<LpmRoute> Lpm::GenerateRoutes(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LpmRoute> routes;
  routes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LpmRoute r;
    // Internet-like prefix-length mix: mostly /16../24, some longer.
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 10) {
      r.prefix_len = static_cast<uint8_t>(8 + rng.NextBounded(8));    // /8-/15
    } else if (dice < 85) {
      r.prefix_len = static_cast<uint8_t>(16 + rng.NextBounded(9));   // /16-/24
    } else {
      r.prefix_len = static_cast<uint8_t>(25 + rng.NextBounded(8));   // /25-/32
    }
    const uint32_t mask =
        r.prefix_len == 0 ? 0 : ~((r.prefix_len >= 32)
                                      ? 0u
                                      : ((1u << (32 - r.prefix_len)) - 1));
    r.prefix = rng.NextU32() & mask;
    r.next_hop = 1 + static_cast<uint32_t>(rng.NextBounded(255));
    routes.push_back(r);
  }
  return routes;
}

Lpm::Lpm(const LpmConfig& config) : NetworkFunction("LPM") {
  Build(GenerateRoutes(config.num_routes, config.seed));
}

Lpm::Lpm(const std::vector<LpmRoute>& routes) : NetworkFunction("LPM") {
  Build(routes);
}

void Lpm::Build(const std::vector<LpmRoute>& routes) {
  tbl24_.assign(1u << 24, 0);

  // Insert in ascending prefix-length order so longer prefixes overwrite;
  // stable so equal-length routes keep their input order (last one wins).
  std::vector<LpmRoute> sorted = routes;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const LpmRoute& a, const LpmRoute& b) {
                     return a.prefix_len < b.prefix_len;
                   });

  for (const LpmRoute& r : sorted) {
    SNIC_CHECK(r.prefix_len <= 32);
    SNIC_CHECK((r.next_hop & kIndirect) == 0);
    if (r.prefix_len <= 24) {
      const uint32_t first = r.prefix >> 8;
      const uint32_t span = 1u << (24 - r.prefix_len);
      for (uint32_t i = 0; i < span; ++i) {
        tbl24_[first + i] = r.next_hop;  // may overwrite shorter prefixes
      }
    } else {
      const uint32_t idx24 = r.prefix >> 8;
      uint32_t chunk;
      if (tbl24_[idx24] & kIndirect) {
        chunk = tbl24_[idx24] & ~kIndirect;
      } else {
        // Spill: new TBL8 chunk seeded with the current /24 result.
        chunk = static_cast<uint32_t>(tbl8_.size() / 256);
        const uint32_t inherited = tbl24_[idx24];
        tbl8_.resize(tbl8_.size() + 256, inherited);
        tbl24_[idx24] = kIndirect | chunk;
      }
      const uint32_t first = r.prefix & 0xff;
      const uint32_t span = 1u << (32 - r.prefix_len);
      for (uint32_t i = 0; i < span; ++i) {
        tbl8_[chunk * 256 + first + i] = r.next_hop;
      }
    }
  }

  tbl24_allocation_ = arena().Alloc(tbl24_.size() * 4, "lpm-tbl24");
  if (!tbl8_.empty()) {
    tbl8_allocation_ = arena().Alloc(tbl8_.size() * 4, "lpm-tbl8");
  }
}

uint32_t Lpm::Lookup(uint32_t dst_ip) {
  const uint32_t idx24 = dst_ip >> 8;
  recorder_.Load(tbl24_allocation_.base + static_cast<uint64_t>(idx24) * 4);
  recorder_.Compute(30);
  const uint32_t entry = tbl24_[idx24];
  if ((entry & kIndirect) == 0) {
    return entry;
  }
  const uint32_t chunk = entry & ~kIndirect;
  const uint32_t idx8 = chunk * 256 + (dst_ip & 0xff);
  recorder_.Load(tbl8_allocation_.base + static_cast<uint64_t>(idx8) * 4);
  recorder_.Compute(12);
  return tbl8_[idx8];
}

Verdict Lpm::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const uint32_t next_hop = Lookup(parsed.value().ip.dst_addr);
  // Route found: rewrite the destination MAC toward the next hop; default
  // route (0) forwards unchanged.
  if (next_hop != 0) {
    auto bytes = packet.mutable_bytes();
    bytes[5] = static_cast<uint8_t>(next_hop);
  }
  return Verdict::kForward;
}

}  // namespace snic::nf
