#include "src/nf/network_function.h"

#include "src/common/units.h"

namespace snic::nf {

Verdict NetworkFunction::Process(net::Packet& packet) {
  recorder_.Compute(kPerPacketOverheadInstructions);
  // Reading the packet header from NF RAM: the input module deposited the
  // frame at a per-packet buffer address. Fresh DMA data is a compulsory
  // fetch; stream it past the caches.
  recorder_.LoadUncached(kPacketBufferBase +
                         (counters_.packets % kPacketRing) * 2048);
  const Verdict verdict = HandlePacket(packet);
  ++counters_.packets;
  counters_.bytes += packet.size();
  if (verdict == Verdict::kForward) {
    ++counters_.forwarded;
  } else {
    ++counters_.dropped;
  }
  SNIC_OBS(if (obs_packets_ != nullptr) {
    obs_packets_->Inc();
    obs_bytes_->Inc(packet.size());
    (verdict == Verdict::kForward ? obs_forwarded_ : obs_dropped_)->Inc();
    if (counters_.packets % kFlowGaugePeriod == 0) {
      obs_flow_entries_->Set(static_cast<double>(FlowTableEntries()));
    }
  });
  return verdict;
}

void NetworkFunction::AttachObs(obs::MetricRegistry* registry) {
  SNIC_OBS({
    obs::Labels labels;
    labels.emplace_back("nf", name_);
    obs_packets_ = &registry->GetCounter("nf.packets", labels);
    obs_forwarded_ = &registry->GetCounter("nf.forwarded", labels);
    obs_dropped_ = &registry->GetCounter("nf.dropped", labels);
    obs_bytes_ = &registry->GetCounter("nf.bytes", labels);
    obs_flow_entries_ = &registry->GetGauge("nf.flow_entries", labels);
  });
  (void)registry;
}

void NetworkFunction::ModelDpdkInit(double staging_mib) {
  const uint64_t bytes = MiBToBytes(staging_mib);
  const ArenaAllocation staging = arena_.Alloc(bytes, "dpdk-staging");
  arena_.Free(staging);
}

NfMemoryProfile NetworkFunction::Profile() const {
  NfMemoryProfile profile;
  profile.name = name_;
  profile.image = Image();
  profile.heap_stack_mib = BytesToMiB(arena_.peak_bytes());
  return profile;
}

}  // namespace snic::nf
