#include "src/nf/network_function.h"

#include "src/common/units.h"

namespace snic::nf {

Verdict NetworkFunction::Process(net::Packet& packet) {
  recorder_.Compute(kPerPacketOverheadInstructions);
  // Reading the packet header from NF RAM: the input module deposited the
  // frame at a per-packet buffer address. Fresh DMA data is a compulsory
  // fetch; stream it past the caches.
  recorder_.LoadUncached(kPacketBufferBase +
                         (counters_.packets % kPacketRing) * 2048);
  const Verdict verdict = HandlePacket(packet);
  ++counters_.packets;
  counters_.bytes += packet.size();
  if (verdict == Verdict::kForward) {
    ++counters_.forwarded;
  } else {
    ++counters_.dropped;
  }
  return verdict;
}

void NetworkFunction::ModelDpdkInit(double staging_mib) {
  const uint64_t bytes = MiBToBytes(staging_mib);
  const ArenaAllocation staging = arena_.Alloc(bytes, "dpdk-staging");
  arena_.Free(staging);
}

NfMemoryProfile NetworkFunction::Profile() const {
  NfMemoryProfile profile;
  profile.name = name_;
  profile.image = Image();
  profile.heap_stack_mib = BytesToMiB(arena_.peak_bytes());
  return profile;
}

}  // namespace snic::nf
