#include "src/nf/dpi_nf.h"

#include <algorithm>

#include "src/net/parser.h"

namespace snic::nf {

DpiNf::DpiNf(const DpiConfig& config)
    : DpiNf(std::make_shared<const accel::AhoCorasick>(
                accel::GenerateDpiRuleset(config.num_patterns, config.seed)),
            config) {}

DpiNf::DpiNf(std::shared_ptr<const accel::AhoCorasick> automaton,
             const DpiConfig& config)
    : NetworkFunction("DPI"), config_(config), automaton_(std::move(automaton)) {
  RegisterGraph();
}

void DpiNf::RegisterGraph() {
  graph_allocation_ = arena().Alloc(automaton_->GraphBytes(), "dpi-graph");
}

Verdict DpiNf::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const auto& pp = parsed.value();
  const auto payload = packet.bytes().subspan(pp.payload_offset);

  // Record the automaton walk: one graph access per scanned byte. Real
  // Aho-Corasick walks are heavily root-biased (shallow nodes are hot, deep
  // nodes cold), so most touches land in a hot prefix of the graph with an
  // occasional excursion into the full region — that working-set structure
  // is what makes DPI cache-sensitive in Fig. 5.
  // SIMD-accelerated matchers touch the graph roughly once per 4-byte
  // stride. Node popularity is graded like the trie itself: half the
  // touches stay within the root fan-out (~24 KB), most of the rest within
  // the hot top levels, and 1/32 dive deep into the full graph.
  uint64_t walk = 0x9e3779b97f4a7c15ULL ^ packet.flow_rank();
  for (size_t i = 0; i < payload.size(); i += 4) {
    walk = walk * 6364136223846793005ULL + payload[i] + 1;
    const uint64_t tier = walk & 31;
    uint64_t region;
    if (tier == 0) {
      region = graph_allocation_.bytes;  // deep excursion
    } else if (tier < 16) {
      region = std::min<uint64_t>(config_.hot_graph_bytes,
                                  graph_allocation_.bytes);
    } else {
      region = std::min<uint64_t>(24 * 1024, graph_allocation_.bytes);
    }
    recorder_.Load(graph_allocation_.base + ((walk >> 8) % region) / 64 * 64);
    recorder_.Compute(config_.instructions_per_byte * 4);
  }

  const accel::MatchResult result = automaton_->ScanFirstMatch(payload);
  if (result.Matched()) {
    ++matches_;
    return Verdict::kDrop;
  }
  return Verdict::kForward;
}

}  // namespace snic::nf
