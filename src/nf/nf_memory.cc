#include "src/nf/nf_memory.h"

namespace snic::nf {

ArenaAllocation NfArena::Alloc(uint64_t bytes, std::string_view label) {
  (void)label;  // labels exist for debugging; accounting is aggregate
  SNIC_CHECK(bytes > 0);
  ArenaAllocation allocation;
  allocation.base = next_base_;
  allocation.bytes = bytes;
  // Keep allocations 64-byte aligned so recorded addresses have realistic
  // cache-line structure.
  next_base_ += (bytes + 63) & ~uint64_t{63};
  live_bytes_ += bytes;
  if (live_bytes_ > peak_bytes_) {
    peak_bytes_ = live_bytes_;
  }
  events_.push_back(ArenaEvent{sequence_++, live_bytes_});
  return allocation;
}

void NfArena::Free(const ArenaAllocation& allocation) {
  SNIC_CHECK(allocation.bytes <= live_bytes_);
  live_bytes_ -= allocation.bytes;
  events_.push_back(ArenaEvent{sequence_++, live_bytes_});
}

}  // namespace snic::nf
