#include "src/nf/maglev_lb.h"

#include "src/common/status.h"
#include "src/net/parser.h"

namespace snic::nf {
namespace {

// Two independent hashes of a backend index (Maglev uses two hash functions
// of the backend name for offset and skip).
uint64_t BackendHash(uint32_t backend, uint64_t salt) {
  uint64_t h = (static_cast<uint64_t>(backend) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= salt;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

MaglevLb::MaglevLb(const MaglevConfig& config)
    : NetworkFunction("LB"), config_(config) {
  SNIC_CHECK(config_.num_backends > 0);
  SNIC_CHECK(config_.table_size > config_.num_backends);
  // DPDK initialization staging (see Appendix C: nearly two thirds of LB's
  // allocation is init-time temporary memory).
  ModelDpdkInit(6.0);
  backend_alive_.assign(config_.num_backends, true);
  table_allocation_ =
      arena().Alloc(static_cast<uint64_t>(config_.table_size) * 4, "lb-table");
  BuildTable();
  connections_ = std::make_unique<FlowHashMap<uint32_t>>(
      &arena(), &recorder_, 64 * 1024, 0, "lb-conn");
}

void MaglevLb::BuildTable() {
  const uint32_t m = config_.table_size;
  table_.assign(m, -1);
  struct BackendState {
    uint64_t offset;
    uint64_t skip;
    uint64_t next = 0;  // index into its permutation
  };
  std::vector<BackendState> states(config_.num_backends);
  for (uint32_t b = 0; b < config_.num_backends; ++b) {
    states[b].offset = BackendHash(b, config_.seed) % m;
    states[b].skip = BackendHash(b, config_.seed ^ 0xabcdefULL) % (m - 1) + 1;
  }
  uint32_t filled = 0;
  while (filled < m) {
    for (uint32_t b = 0; b < config_.num_backends && filled < m; ++b) {
      if (!backend_alive_[b]) {
        continue;
      }
      BackendState& s = states[b];
      // Next unclaimed slot in this backend's permutation.
      uint64_t slot;
      do {
        slot = (s.offset + s.next * s.skip) % m;
        ++s.next;
      } while (table_[slot] >= 0);
      table_[slot] = static_cast<int32_t>(b);
      ++filled;
    }
    // All backends dead: leave remaining slots unassigned.
    bool any_alive = false;
    for (uint32_t b = 0; b < config_.num_backends; ++b) {
      any_alive |= backend_alive_[b];
    }
    if (!any_alive) {
      break;
    }
  }
}

uint32_t MaglevLb::BackendForTuple(const net::FiveTuple& tuple) {
  // Connection table first (flow affinity across rebuilds).
  if (uint32_t* pinned = connections_->Find(tuple)) {
    recorder_.Compute(6);
    return *pinned;
  }
  const uint64_t h = net::FiveTupleHash{}(tuple);
  const uint32_t slot = static_cast<uint32_t>(h % config_.table_size);
  recorder_.Load(table_allocation_.base + static_cast<uint64_t>(slot) * 4);
  recorder_.Compute(40);
  const int32_t backend = table_[slot];
  SNIC_CHECK(backend >= 0);
  connections_->Insert(tuple, static_cast<uint32_t>(backend));
  return static_cast<uint32_t>(backend);
}

void MaglevLb::RemoveBackend(uint32_t backend) {
  SNIC_CHECK(backend < config_.num_backends);
  backend_alive_[backend] = false;
  BuildTable();
}

Verdict MaglevLb::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const uint32_t backend = BackendForTuple(parsed.value().Tuple());
  // A production Maglev would now encapsulate toward the backend; rewriting
  // the destination MAC models the forwarding decision.
  auto bytes = packet.mutable_bytes();
  bytes[5] = static_cast<uint8_t>(backend);
  bytes[4] = static_cast<uint8_t>(backend >> 8);
  return Verdict::kForward;
}

}  // namespace snic::nf
