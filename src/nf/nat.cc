#include "src/nf/nat.h"

#include "src/net/parser.h"

namespace snic::nf {
namespace {

void WriteU16(std::span<uint8_t> b, size_t off, uint16_t v) {
  b[off] = static_cast<uint8_t>(v >> 8);
  b[off + 1] = static_cast<uint8_t>(v);
}

void WriteU32(std::span<uint8_t> b, size_t off, uint32_t v) {
  b[off] = static_cast<uint8_t>(v >> 24);
  b[off + 1] = static_cast<uint8_t>(v >> 16);
  b[off + 2] = static_cast<uint8_t>(v >> 8);
  b[off + 3] = static_cast<uint8_t>(v);
}

}  // namespace

Nat::Nat(const NatConfig& config)
    : NetworkFunction("NAT"), config_(config), next_port_(config.first_port) {
  // MazuNAT keeps forward and reverse maps; both grow from a small initial
  // capacity, producing resize events until they plateau at 64Ki entries.
  outbound_ = std::make_unique<FlowHashMap<Translation>>(
      &arena(), &recorder_, 1024, 0, "nat-out");
  inbound_ = std::make_unique<FlowHashMap<ReverseEntry>>(
      &arena(), &recorder_, 1024, 0, "nat-in");
}

bool Nat::IsInternal(uint32_t ip) const {
  const uint32_t mask =
      config_.internal_prefix_len == 0
          ? 0
          : ~((1u << (32 - config_.internal_prefix_len)) - 1);
  return (ip & mask) == (config_.internal_prefix & mask);
}

Verdict Nat::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const auto& pp = parsed.value();
  const net::FiveTuple tuple = pp.Tuple();

  if (IsInternal(tuple.src_ip)) {
    // Outbound: translate, or install a translation if ports remain.
    Translation* translation = outbound_->Find(tuple);
    if (translation == nullptr) {
      if (next_port_ > config_.last_port) {
        ++exhausted_;
        recorder_.Compute(6);
        return Verdict::kForward;  // pass through untranslated
      }
      Translation fresh;
      fresh.external_ip = config_.external_ip;
      fresh.external_port = static_cast<uint16_t>(next_port_++);
      outbound_->Insert(tuple, fresh);
      net::FiveTuple reverse;
      reverse.src_ip = tuple.dst_ip;
      reverse.dst_ip = fresh.external_ip;
      reverse.src_port = tuple.dst_port;
      reverse.dst_port = fresh.external_port;
      reverse.protocol = tuple.protocol;
      ReverseEntry back;
      back.internal_ip = tuple.src_ip;
      back.internal_port = tuple.src_port;
      inbound_->Insert(reverse, back);
      ++installed_;
      translation = outbound_->Find(tuple);
    }
    translation->last_used_ns = packet.arrival_ns();
    ++translation->packets;
    translation->bytes += packet.size();
    recorder_.Compute(90);  // header rewrite + incremental checksum
    RewriteOutbound(packet, pp.l3_offset, pp.l4_offset, *translation);
    return Verdict::kForward;
  }

  // Inbound: restore the internal endpoint if a mapping exists.
  ReverseEntry* entry = inbound_->Find(tuple);
  if (entry != nullptr) {
    entry->last_used_ns = packet.arrival_ns();
    ++entry->packets;
    entry->bytes += packet.size();
    recorder_.Compute(90);
    RewriteInbound(packet, pp.l3_offset, pp.l4_offset, *entry);
    return Verdict::kForward;
  }
  recorder_.Compute(4);
  return Verdict::kForward;
}

void Nat::RewriteOutbound(net::Packet& packet, size_t l3_offset,
                          size_t l4_offset, const Translation& translation) {
  auto bytes = packet.mutable_bytes();
  WriteU32(bytes, l3_offset + 12, translation.external_ip);  // src IP
  WriteU16(bytes, l4_offset, translation.external_port);     // src port
  net::UpdateIpv4Checksum(bytes, l3_offset);
}

void Nat::RewriteInbound(net::Packet& packet, size_t l3_offset,
                         size_t l4_offset, const ReverseEntry& entry) {
  auto bytes = packet.mutable_bytes();
  WriteU32(bytes, l3_offset + 16, entry.internal_ip);     // dst IP
  WriteU16(bytes, l4_offset + 2, entry.internal_port);    // dst port
  net::UpdateIpv4Checksum(bytes, l3_offset);
}

}  // namespace snic::nf
