#include "src/nf/monitor.h"

#include "src/common/units.h"
#include "src/net/parser.h"

namespace snic::nf {

Monitor::Monitor(const MonitorConfig& config) : NetworkFunction("Mon") {
  if (config.model_hugepage_init) {
    // DPDK allocates a temporary normal-memory block, copies the hugepage
    // data through it, then releases it — a transient doubling at startup.
    const uint64_t pool = MiBToBytes(config.hugepage_pool_mib);
    ArenaAllocation staging = arena().Alloc(pool, "dpdk-staging");
    ArenaAllocation hugepages = arena().Alloc(pool, "dpdk-hugepages");
    arena().Free(staging);
    // The hugepage pool itself is replaced by demand allocations below; the
    // model releases it so steady-state accounting tracks the flow table.
    arena().Free(hugepages);
  }
  flows_ = std::make_unique<FlowHashMap<uint64_t>>(
      &arena(), &recorder_, config.initial_capacity, 0, "mon-flows");
}

uint64_t Monitor::CountForFlow(const net::FiveTuple& tuple) {
  const uint64_t* count = flows_->Find(tuple);
  return count == nullptr ? 0 : *count;
}

Verdict Monitor::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const net::FiveTuple tuple = parsed.value().Tuple();
  uint64_t* count = flows_->Find(tuple);
  if (count != nullptr) {
    ++*count;
    recorder_.Store(flows_->last_touched_addr());  // counter write-back
    recorder_.Compute(16);
  } else {
    flows_->Insert(tuple, 1);
  }
  return Verdict::kForward;
}

}  // namespace snic::nf
