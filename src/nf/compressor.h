// Packet-compressor NF.
//
// The paper's introduction motivates smart-NIC offload with simple NFs
// "like packet compressors" and complex ones "like WAN optimizers". This NF
// implements the former over the ZIP accelerator's LZ77 codec: payloads are
// compressed in place (frames whose payload does not shrink pass through
// unchanged, flagged in the IP header's DSCP bits so the peer knows whether
// to decompress). It doubles as the workload for the ZIP accelerator's
// functional path.

#ifndef SNIC_NF_COMPRESSOR_H_
#define SNIC_NF_COMPRESSOR_H_

#include <cstdint>

#include "src/nf/network_function.h"

namespace snic::nf {

struct CompressorConfig {
  // Payloads below this size are never worth the header cost.
  size_t min_payload_bytes = 64;
  // Modeled instruction cost per payload byte (hash-chain matcher).
  uint32_t instructions_per_byte = 12;
};

// DSCP marker for compressed payloads (a locally administered codepoint).
inline constexpr uint8_t kCompressedDscp = 0x2c;

class Compressor : public NetworkFunction {
 public:
  explicit Compressor(const CompressorConfig& config = {});

  uint64_t packets_compressed() const { return compressed_; }
  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }
  double CompressionRatio() const {
    return bytes_out_ == 0 ? 1.0
                           : static_cast<double>(bytes_in_) /
                                 static_cast<double>(bytes_out_);
  }

  // Inverse NF: restores a frame produced by this compressor. Returns false
  // when the frame was not compressed.
  static bool Decompress(net::Packet& packet);

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.88, 0.07, 2.52}; }

 private:
  CompressorConfig config_;
  ArenaAllocation window_allocation_;  // the 32 KB dictionary window
  uint64_t compressed_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
};

}  // namespace snic::nf

#endif  // SNIC_NF_COMPRESSOR_H_
