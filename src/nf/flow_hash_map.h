// Open-addressing flow hash map with arena accounting and access recording.
//
// Stand-in for the Rust std HashMap the paper's NFs use for flow caches
// (Firewall, NAT, Monitor, LB connection table). Resizing doubles capacity
// by allocating the new table *before* freeing the old one — exactly the
// behaviour that produces the Fig. 7 memory spikes and the Table 8
// allocated-vs-used gaps.

#ifndef SNIC_NF_FLOW_HASH_MAP_H_
#define SNIC_NF_FLOW_HASH_MAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/net/five_tuple.h"
#include "src/nf/nf_memory.h"

namespace snic::nf {

template <typename Value>
class FlowHashMap {
 public:
  // `max_entries` = 0 means unbounded (Monitor); otherwise the map behaves
  // like the paper's bounded caches (the Firewall's 200k-entry cache, the
  // NAT's 65,535-flow table): once full, new keys are simply not cached and
  // Insert reports false.
  FlowHashMap(NfArena* arena, MemoryRecorder* recorder, size_t initial_capacity,
              size_t max_entries, std::string_view label)
      : arena_(arena),
        recorder_(recorder),
        max_entries_(max_entries),
        label_(label) {
    SNIC_CHECK(initial_capacity >= 8);
    capacity_ = RoundUpPow2(initial_capacity);
    slots_.assign(capacity_, Slot{});
    allocation_ = arena_->Alloc(capacity_ * sizeof(Slot), label_);
  }

  ~FlowHashMap() {
    if (allocation_.Valid()) {
      arena_->Free(allocation_);
    }
  }

  FlowHashMap(const FlowHashMap&) = delete;
  FlowHashMap& operator=(const FlowHashMap&) = delete;

  // Looks up `key`; records the probe-sequence memory accesses.
  Value* Find(const net::FiveTuple& key) {
    const size_t mask = capacity_ - 1;
    size_t idx = Hash(key) & mask;
    recorder_->Compute(kHashInstructions);
    for (size_t probes = 0; probes < capacity_; ++probes) {
      recorder_->Load(SlotAddr(idx));
      Slot& slot = slots_[idx];
      if (!slot.used) {
        return nullptr;
      }
      if (slot.key == key) {
        return &slot.value;
      }
      idx = (idx + 1) & mask;
    }
    return nullptr;
  }

  // Inserts or updates. Returns false when the map is full (bounded mode)
  // and the key was not cached.
  bool Insert(const net::FiveTuple& key, const Value& value) {
    if (Value* existing = Find(key)) {
      *existing = value;
      recorder_->Store(last_touched_addr_);
      return true;
    }
    if (max_entries_ != 0 && size_ >= max_entries_) {
      recorder_->Compute(4);  // bound check on the insert path
      return false;
    }
    if (max_entries_ == 0 && NeedsGrow()) {
      Grow();
    }
    const size_t mask = capacity_ - 1;
    size_t idx = Hash(key) & mask;
    for (size_t probes = 0;; ++probes) {
      recorder_->Load(SlotAddr(idx));
      Slot& slot = slots_[idx];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = value;
        ++size_;
        recorder_->Store(SlotAddr(idx));
        return true;
      }
      idx = (idx + 1) & mask;
      SNIC_CHECK(probes < capacity_);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  // Address of the most recently probed slot (for counter write-backs).
  uint64_t last_touched_addr() const { return last_touched_addr_; }
  uint64_t MemoryBytes() const { return capacity_ * sizeof(Slot); }

  // Iterates live entries (Monitor reporting).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) {
        fn(slot.key, slot.value);
      }
    }
  }

 private:
  struct Slot {
    net::FiveTuple key;
    Value value{};
    bool used = false;
  };

  static constexpr uint32_t kHashInstructions = 60;
  static constexpr double kMaxLoadFactor = 0.75;

  static size_t RoundUpPow2(size_t v) {
    size_t p = 8;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  size_t Hash(const net::FiveTuple& key) const {
    return net::FiveTupleHash{}(key);
  }

  uint64_t SlotAddr(size_t idx) {
    last_touched_addr_ = allocation_.base + idx * sizeof(Slot);
    return last_touched_addr_;
  }

  bool NeedsGrow() const {
    return static_cast<double>(size_ + 1) >
           kMaxLoadFactor * static_cast<double>(capacity_);
  }

  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    // Allocate-then-free ordering creates the transient doubling spike that
    // Fig. 7 attributes to "multiple HashMap resizings".
    ArenaAllocation new_allocation =
        arena_->Alloc(new_capacity * sizeof(Slot), label_);
    std::vector<Slot> new_slots(new_capacity);
    const size_t mask = new_capacity - 1;
    for (const Slot& slot : slots_) {
      if (!slot.used) {
        continue;
      }
      size_t idx = Hash(slot.key) & mask;
      while (new_slots[idx].used) {
        idx = (idx + 1) & mask;
      }
      new_slots[idx] = slot;
    }
    arena_->Free(allocation_);
    allocation_ = new_allocation;
    slots_ = std::move(new_slots);
    capacity_ = new_capacity;
  }

  NfArena* arena_;
  MemoryRecorder* recorder_;
  size_t max_entries_;
  std::string label_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<Slot> slots_;
  ArenaAllocation allocation_;
  uint64_t last_touched_addr_ = 0;
};

}  // namespace snic::nf

#endif  // SNIC_NF_FLOW_HASH_MAP_H_
