// Factory for the six evaluation NFs (§5.1), used by the experiment
// harnesses that sweep over every NF and every colocation mix.

#ifndef SNIC_NF_NF_FACTORY_H_
#define SNIC_NF_NF_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/nf/network_function.h"

namespace snic::nf {

enum class NfKind : uint8_t {
  kFirewall = 0,
  kDpi = 1,
  kNat = 2,
  kLoadBalancer = 3,
  kLpm = 4,
  kMonitor = 5,
};
inline constexpr size_t kNumNfKinds = 6;

std::string_view NfKindName(NfKind kind);

// All six kinds in the paper's presentation order (FW, DPI, NAT, LB, LPM,
// Mon).
std::vector<NfKind> AllNfKinds();

// Builds one NF with the paper's §5.1 parameters. `light` uses reduced
// rule/pattern counts (tests and quick sweeps); behaviour is unchanged,
// only working-set size shrinks.
std::unique_ptr<NetworkFunction> MakeNf(NfKind kind, bool light = false);

}  // namespace snic::nf

#endif  // SNIC_NF_NF_FACTORY_H_
