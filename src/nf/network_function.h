// The network-function interface and common machinery.
//
// All six evaluation NFs (§5.1) implement this interface. Packets arrive as
// wire-format frames (the packet input module has already copied them into
// the function's RAM); the function may rewrite bytes in place and returns a
// forwarding verdict. Each NF owns an NfArena (memory profiling) and shares
// a MemoryRecorder (timing traces).

#ifndef SNIC_NF_NETWORK_FUNCTION_H_
#define SNIC_NF_NETWORK_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/net/packet.h"
#include "src/nf/nf_memory.h"
#include "src/obs/metrics.h"

namespace snic::nf {

enum class Verdict : uint8_t {
  kForward = 0,
  kDrop = 1,
};

struct NfCounters {
  uint64_t packets = 0;
  uint64_t forwarded = 0;
  uint64_t dropped = 0;
  uint64_t bytes = 0;
};

class NetworkFunction {
 public:
  explicit NetworkFunction(std::string name)
      : name_(std::move(name)), arena_(name_) {
    SNIC_OBS(AttachObs(&obs::DefaultRegistry()));
  }
  virtual ~NetworkFunction() = default;

  NetworkFunction(const NetworkFunction&) = delete;
  NetworkFunction& operator=(const NetworkFunction&) = delete;

  const std::string& name() const { return name_; }

  // Processes one packet (may rewrite it). Wraps HandlePacket with counter
  // and per-packet framework-cost accounting.
  Verdict Process(net::Packet& packet);

  NfArena& arena() { return arena_; }
  const NfArena& arena() const { return arena_; }
  MemoryRecorder& recorder() { return recorder_; }
  const NfCounters& counters() const { return counters_; }

  // The Table 6 row: modeled image sections + measured heap/stack peak.
  NfMemoryProfile Profile() const;

  // Points the per-NF series (`nf.packets{nf=<name>}`, `nf.forwarded`,
  // `nf.dropped`, `nf.bytes`, `nf.flow_entries`) at `registry`. The
  // constructor attaches to obs::DefaultRegistry() — the global registry,
  // or the task's shard inside a parallel sweep worker.
  void AttachObs(obs::MetricRegistry* registry);

 protected:
  virtual Verdict HandlePacket(net::Packet& packet) = 0;

  // Image-section model; subclasses override with their NF's constants.
  virtual ImageSections Image() const { return ImageSections{}; }

  // Models DPDK initialization: a transient allocation (packet-pool staging
  // and setup scratch) that inflates the peak an S-NIC launch must
  // preallocate without contributing to steady-state usage. The paper's
  // Appendix C attributes the LB's and Monitor's low memory-utilization
  // ratios to exactly this.
  void ModelDpdkInit(double staging_mib);

  // Live flow-table occupancy, exported as the `nf.flow_entries` gauge every
  // kFlowGaugePeriod packets. NFs without per-flow state keep the default.
  virtual uint64_t FlowTableEntries() const { return 0; }

  // Approximate per-packet framework instructions (parse, queue handling).
  static constexpr uint32_t kPerPacketOverheadInstructions = 180;
  // Modeled packet-buffer ring. Freshly DMA'd packet bytes are compulsory
  // misses on real hardware; a ring far larger than any cache reproduces
  // that in the trace regardless of partitioning policy.
  static constexpr uint64_t kPacketBufferBase = 0x40000000;
  static constexpr uint64_t kPacketRing = 32768;

  MemoryRecorder recorder_;

 private:
  static constexpr uint64_t kFlowGaugePeriod = 1024;

  std::string name_;
  NfArena arena_;
  NfCounters counters_;

  obs::Counter* obs_packets_ = nullptr;
  obs::Counter* obs_forwarded_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Gauge* obs_flow_entries_ = nullptr;
};

}  // namespace snic::nf

#endif  // SNIC_NF_NETWORK_FUNCTION_H_
