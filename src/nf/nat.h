// NAT network function, derived from MazuNAT (§5.1, §3.3).
//
// Source NAT: outbound flows get their source address rewritten to the NAT's
// external IP and a distinct external port; a reverse mapping restores
// return traffic. Per the paper, "the cache only records the translation
// results of the first 65,535 flows that can be successfully assigned a
// distinct port number" — later flows pass through untranslated.

#ifndef SNIC_NF_NAT_H_
#define SNIC_NF_NAT_H_

#include <cstdint>
#include <memory>

#include "src/nf/flow_hash_map.h"
#include "src/nf/network_function.h"

namespace snic::nf {

struct NatConfig {
  uint32_t external_ip = 0xc6336401;  // 198.51.100.1 (TEST-NET-2)
  uint16_t first_port = 1;
  uint16_t last_port = 65'535;
  // The internal network whose outbound traffic is translated.
  uint32_t internal_prefix = 0x0a000000;  // 10.0.0.0/8
  uint8_t internal_prefix_len = 8;
};

class Nat : public NetworkFunction {
 public:
  explicit Nat(const NatConfig& config = {});

  uint64_t translations_installed() const { return installed_; }
  uint64_t port_pool_exhausted() const { return exhausted_; }

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.86, 0.05, 2.49}; }
  uint64_t FlowTableEntries() const override {
    return outbound_ == nullptr ? 0 : outbound_->size();
  }

 private:
  // Per-mapping state mirrors MazuNAT/Click: the rewrite target plus the
  // liveness bookkeeping its garbage collector consults.
  struct Translation {
    uint32_t external_ip = 0;
    uint16_t external_port = 0;
    uint16_t tcp_flags_seen = 0;
    uint64_t last_used_ns = 0;
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };
  struct ReverseEntry {
    uint32_t internal_ip = 0;
    uint16_t internal_port = 0;
    uint16_t tcp_flags_seen = 0;
    uint64_t last_used_ns = 0;
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };

  bool IsInternal(uint32_t ip) const;
  void RewriteOutbound(net::Packet& packet, size_t l3_offset, size_t l4_offset,
                       const Translation& translation);
  void RewriteInbound(net::Packet& packet, size_t l3_offset, size_t l4_offset,
                      const ReverseEntry& entry);

  NatConfig config_;
  std::unique_ptr<FlowHashMap<Translation>> outbound_;
  std::unique_ptr<FlowHashMap<ReverseEntry>> inbound_;
  uint32_t next_port_;
  uint64_t installed_ = 0;
  uint64_t exhausted_ = 0;
};

}  // namespace snic::nf

#endif  // SNIC_NF_NAT_H_
