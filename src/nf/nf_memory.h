// NF memory instrumentation: the arena and access recorder.
//
// Two of the paper's methodologies hang off NF memory behaviour:
//   * Memory profiling (Tables 6/8, Fig. 7): per-NF heap usage over time,
//     including HashMap-resize and hugepage-init spikes, determines TLB
//     sizing and memory-utilization ratios.
//   * Trace-driven timing (Fig. 5): gem5 replaced by native NF execution
//     that records loads/stores (with arena-relative addresses) plus
//     interleaved compute-instruction counts into a sim::InstructionTrace.
//
// NF data structures own their real backing memory (std::vector etc.) but
// additionally (a) register logical allocations with the NfArena so usage is
// observable, and (b) report every representative access to the
// MemoryRecorder so the replay engine sees a faithful address stream.

#ifndef SNIC_NF_NF_MEMORY_H_
#define SNIC_NF_NF_MEMORY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sim/mem_access.h"

namespace snic::nf {

// One logical allocation in the NF's virtual address space.
struct ArenaAllocation {
  uint64_t base = 0;
  uint64_t bytes = 0;
  bool Valid() const { return bytes != 0; }
};

// A point in the allocation history (drives the Fig. 7 time series).
struct ArenaEvent {
  uint64_t sequence;    // monotonically increasing event index
  uint64_t live_bytes;  // bytes allocated after this event
};

class NfArena {
 public:
  explicit NfArena(std::string name) : name_(std::move(name)) {}

  // Reserves `bytes` at a fresh virtual base (bump allocation; frees do not
  // recycle address space, mirroring S-NIC's no-dynamic-return model).
  ArenaAllocation Alloc(uint64_t bytes, std::string_view label);

  // Releases a prior allocation (the memory stays mapped — S-NIC functions
  // cannot return pages — but live-byte accounting drops, which is exactly
  // the allocated-vs-used gap Table 8 reports).
  void Free(const ArenaAllocation& allocation);

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }
  const std::string& name() const { return name_; }
  const std::vector<ArenaEvent>& events() const { return events_; }

  // Total address space ever handed out (what nf_launch must preallocate).
  uint64_t reserved_bytes() const { return next_base_ - kHeapBase; }

 private:
  static constexpr uint64_t kHeapBase = 0x10000000;  // leaves room for image

  std::string name_;
  uint64_t next_base_ = kHeapBase;
  uint64_t live_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  uint64_t sequence_ = 0;
  std::vector<ArenaEvent> events_;
};

// Forwards accesses into an InstructionTrace when attached; free when not.
class MemoryRecorder {
 public:
  void Attach(sim::InstructionTrace* trace) { trace_ = trace; }
  void Detach() { trace_ = nullptr; }
  bool attached() const { return trace_ != nullptr; }

  void Load(uint64_t addr) {
    if (trace_ != nullptr) {
      trace_->RecordAccess(addr, sim::AccessType::kRead);
    }
  }
  void Store(uint64_t addr) {
    if (trace_ != nullptr) {
      trace_->RecordAccess(addr, sim::AccessType::kWrite);
    }
  }
  // Streaming/DMA data (fresh packet bytes): crosses the bus but never
  // pollutes the cache hierarchy.
  void LoadUncached(uint64_t addr) {
    if (trace_ != nullptr) {
      trace_->RecordAccess(addr, sim::AccessType::kUncachedRead);
    }
  }
  // `n` ALU instructions between memory operations.
  void Compute(uint32_t n) {
    if (trace_ != nullptr) {
      trace_->RecordCompute(n);
    }
  }

 private:
  sim::InstructionTrace* trace_ = nullptr;
};

// Static image sections of an NF binary. The paper profiles these for its
// Rust/NetBricks binaries (Table 6: Text/Data/Code); we model them as
// per-NF constants since this reproduction compiles NFs into one C++
// library. Heap & stack come from the live arena.
struct ImageSections {
  double text_mib = 0.86;
  double data_mib = 0.05;
  double code_mib = 2.49;
};

// The Table 6 row for one NF.
struct NfMemoryProfile {
  std::string name;
  ImageSections image;
  double heap_stack_mib = 0.0;

  double TotalMib() const {
    return image.text_mib + image.data_mib + image.code_mib + heap_stack_mib;
  }
  // Memory regions in MiB, in Table 6 order (text, data, code, heap&stack);
  // consumed by the TLB-sizing algorithm.
  std::vector<double> RegionsMib() const {
    return {image.text_mib, image.data_mib, image.code_mib, heap_stack_mib};
  }
};

}  // namespace snic::nf

#endif  // SNIC_NF_NF_MEMORY_H_
