// Monitor NF (§5.1): per-flow packet counting.
//
// "Uses a HashMap to record the number of packets for each 5-tuple flow."
// Unlike the other NFs its memory is unbounded in the flow count, which is
// why it dominates Table 6 (361 MB peak over a five-minute CAIDA interval)
// and why Fig. 7 tracks its usage over time. The optional hugepage-init
// model reproduces the DPDK initialization spike the paper calls out
// (DPDK stages hugepage contents through a temporary normal-memory block).

#ifndef SNIC_NF_MONITOR_H_
#define SNIC_NF_MONITOR_H_

#include <cstdint>
#include <memory>

#include "src/nf/flow_hash_map.h"
#include "src/nf/network_function.h"

namespace snic::nf {

struct MonitorConfig {
  size_t initial_capacity = 1024;
  // Model DPDK hugepage initialization: a transient allocation of
  // `hugepage_pool_mib` staged through an equally sized temporary buffer.
  bool model_hugepage_init = false;
  double hugepage_pool_mib = 64.0;
};

class Monitor : public NetworkFunction {
 public:
  explicit Monitor(const MonitorConfig& config = {});

  uint64_t CountForFlow(const net::FiveTuple& tuple);
  size_t distinct_flows() const { return flows_->size(); }

  // Live heap bytes (drives the Fig. 7 series together with arena events).
  uint64_t live_bytes() const { return arena().live_bytes(); }

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.85, 0.05, 2.48}; }
  uint64_t FlowTableEntries() const override {
    return flows_ == nullptr ? 0 : flows_->size();
  }

 private:
  std::unique_ptr<FlowHashMap<uint64_t>> flows_;
};

}  // namespace snic::nf

#endif  // SNIC_NF_MONITOR_H_
