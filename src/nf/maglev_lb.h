// Load balancer NF: Google's Maglev (§5.1, [Eisenbud et al., NSDI'16]).
//
// Maglev consistent hashing: each backend generates a permutation of table
// slots from (offset, skip) derived from its name hash; backends take turns
// claiming their next unclaimed slot until the table (a prime size, 65537 by
// default) is full. Lookup hashes the 5-tuple into the table. A connection
// tracking map pins established flows to their backend across table rebuilds.

#ifndef SNIC_NF_MAGLEV_LB_H_
#define SNIC_NF_MAGLEV_LB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/nf/flow_hash_map.h"
#include "src/nf/network_function.h"

namespace snic::nf {

struct MaglevConfig {
  uint32_t num_backends = 100;
  uint32_t table_size = 65'537;  // prime, per the Maglev paper
  uint64_t seed = 13;
};

class MaglevLb : public NetworkFunction {
 public:
  explicit MaglevLb(const MaglevConfig& config = {});

  // Backend chosen for a tuple (exposed for tests and the quickstart).
  uint32_t BackendForTuple(const net::FiveTuple& tuple);

  // Removes one backend and rebuilds the table; established connections keep
  // their backend via the connection table (the consistent-hashing claim the
  // tests verify: remaining flows mostly keep their backends).
  void RemoveBackend(uint32_t backend);

  uint32_t num_backends() const { return config_.num_backends; }
  const std::vector<int32_t>& table() const { return table_; }

 protected:
  Verdict HandlePacket(net::Packet& packet) override;
  ImageSections Image() const override { return {0.86, 0.05, 2.49}; }
  uint64_t FlowTableEntries() const override {
    return connections_ == nullptr ? 0 : connections_->size();
  }

 private:
  void BuildTable();

  MaglevConfig config_;
  std::vector<bool> backend_alive_;
  std::vector<int32_t> table_;  // slot -> backend id
  ArenaAllocation table_allocation_;
  std::unique_ptr<FlowHashMap<uint32_t>> connections_;
};

}  // namespace snic::nf

#endif  // SNIC_NF_MAGLEV_LB_H_
