#include "src/nf/compressor.h"

#include <cstring>
#include <vector>

#include "src/accel/zip.h"
#include "src/common/units.h"
#include "src/net/parser.h"

namespace snic::nf {
namespace {

void SetTotalLength(std::span<uint8_t> frame, size_t l3_offset,
                    uint16_t total_length) {
  frame[l3_offset + 2] = static_cast<uint8_t>(total_length >> 8);
  frame[l3_offset + 3] = static_cast<uint8_t>(total_length);
}

}  // namespace

Compressor::Compressor(const CompressorConfig& config)
    : NetworkFunction("ZIPNF"), config_(config) {
  window_allocation_ = arena().Alloc(accel::kZipWindowBytes, "zip-window");
  // Hash-chain tables of the matcher (head + prev arrays).
  (void)arena().Alloc(KiB(256), "zip-chains");
}

Verdict Compressor::HandlePacket(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return Verdict::kDrop;
  }
  const auto& pp = parsed.value();
  bytes_in_ += packet.size();
  if (pp.payload_len < config_.min_payload_bytes || !pp.tcp.has_value()) {
    bytes_out_ += packet.size();
    recorder_.Compute(8);
    return Verdict::kForward;
  }

  const auto payload = packet.bytes().subspan(pp.payload_offset);
  // Record the matcher's window/chain traffic: one window touch per byte.
  for (size_t i = 0; i < payload.size(); i += 8) {
    recorder_.Load(window_allocation_.base + (i % accel::kZipWindowBytes));
    recorder_.Compute(config_.instructions_per_byte * 8);
  }
  const accel::ZipResult result = accel::ZipCompress(payload);
  if (result.data.size() >= payload.size()) {
    bytes_out_ += packet.size();  // incompressible: pass through
    return Verdict::kForward;
  }

  // Rewrite the frame in place: swap the payload, mark DSCP, fix lengths
  // and the header checksum.
  const size_t new_size = pp.payload_offset + result.data.size();
  auto bytes = packet.mutable_bytes();
  std::memcpy(bytes.data() + pp.payload_offset, result.data.data(),
              result.data.size());
  packet.Resize(new_size);
  auto frame = packet.mutable_bytes();
  frame[pp.l3_offset + 1] = static_cast<uint8_t>(kCompressedDscp << 2);
  SetTotalLength(frame, pp.l3_offset,
                 static_cast<uint16_t>(new_size - pp.l3_offset));
  net::UpdateIpv4Checksum(frame, pp.l3_offset);

  ++compressed_;
  bytes_out_ += packet.size();
  return Verdict::kForward;
}

bool Compressor::Decompress(net::Packet& packet) {
  const auto parsed = net::Parse(packet.bytes());
  if (!parsed.ok()) {
    return false;
  }
  const auto& pp = parsed.value();
  if ((pp.ip.dscp_ecn >> 2) != kCompressedDscp) {
    return false;
  }
  const auto payload = packet.bytes().subspan(pp.payload_offset);
  const std::vector<uint8_t> restored = accel::ZipDecompress(payload);

  std::vector<uint8_t> frame(packet.bytes().begin(),
                             packet.bytes().begin() +
                                 static_cast<ptrdiff_t>(pp.payload_offset));
  frame.insert(frame.end(), restored.begin(), restored.end());
  frame[pp.l3_offset + 1] = 0;  // clear the DSCP marker
  packet = net::Packet(std::move(frame));
  auto bytes = packet.mutable_bytes();
  SetTotalLength(bytes, pp.l3_offset,
                 static_cast<uint16_t>(packet.size() - pp.l3_offset));
  net::UpdateIpv4Checksum(bytes, pp.l3_offset);
  return true;
}

}  // namespace snic::nf
