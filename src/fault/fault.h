// Deterministic fault-injection plane (docs/ROBUSTNESS.md).
//
// S-NIC's isolation claim is only meaningful if it holds when things break:
// accelerators stall, DMA staging errors, packets arrive corrupted, launches
// transiently fail, the bus times out. This module makes those failures
// first-class, *deterministic* scenarios. A FaultPlane holds a schedule of
// rules keyed by (site name, NF id); instrumented code consults the plane
// through the SNIC_FAULT_* macros at named injection sites.
//
// Determinism contract (mirrors src/runtime, docs/RUNTIME.md): every rule
// owns its own hit counter and its own Rng stream derived from (plane seed,
// rule index), so a decision depends only on the sequence of matching hits
// at that rule — never on wall clock, thread ids, or interleaving with other
// sites. A rule scoped to NF A structurally cannot consume randomness or
// advance counters on NF B's hits, which is what makes the chaos_soak
// differential isolation invariant (B byte-identical with and without faults
// in A) provable rather than probabilistic, at every --jobs count.
//
// Installation is scoped and thread-local (like obs::ScopedDefaultRegistry):
// with no plane installed every site is one thread-local load plus a null
// check. Compile-out: building with -DSNIC_FAULTS_DISABLED turns every site
// into the constant `false` / `0`, so the hot path provably carries zero
// fault-plane code (tests/fault_disabled_test.cc proves it per-TU; the CI
// faults-off job proves the whole build and re-runs the obs_overhead
// budget).

#ifndef SNIC_FAULT_FAULT_H_
#define SNIC_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/obs/trace_ring.h"

// Injection-site check: true when an installed FaultPlane schedules a fault
// for this execution of the site. Compiles to the constant `false` under
// -DSNIC_FAULTS_DISABLED (the arguments are not evaluated).
// Usage: if (SNIC_FAULT_FIRES(fault::sites::kVppRxDrop, nf_id)) { ... }
#ifdef SNIC_FAULTS_DISABLED
#define SNIC_FAULT_FIRES(site, nf_id) (false)
#define SNIC_FAULT_STALL(site, nf_id) (uint64_t{0})
#define SNIC_FAULT_FIRES_ATTEMPT(site, nf_id, attempt) (false)
#else
#define SNIC_FAULT_FIRES(site, nf_id) \
  (::snic::fault::SiteFires((site), (nf_id)))
#define SNIC_FAULT_STALL(site, nf_id) \
  (::snic::fault::SiteStall((site), (nf_id)))
// Attempt-carrying site: the caller supplies which recovery attempt it is on
// (1-based; 0 = not a retry). Rules with `on_attempt` set match only hits
// whose attempt equals theirs, which is how a schedule says "fail the Nth
// restart" without counting unrelated hits at the site.
#define SNIC_FAULT_FIRES_ATTEMPT(site, nf_id, attempt) \
  (::snic::fault::SiteFiresAttempt((site), (nf_id), (attempt)))
#endif

namespace snic::fault {

// Canonical site names. A site is just a string key — components may mint
// new ones — but the wired-in sites live here so schedules and docs agree.
namespace sites {
// Accelerator dispatch: a firing hit makes the cluster's thread access fail
// with kUnavailable (transient accelerator failure/stall).
inline constexpr std::string_view kAccelThreadAccess = "accel.thread_access";
// DMA staging between host and NIC windows: transfer fails with
// kUnavailable before any byte moves.
inline constexpr std::string_view kDmaHostToNic = "dma.host_to_nic";
inline constexpr std::string_view kDmaNicToHost = "dma.nic_to_host";
// VPP ingress: drop the frame, or flip one byte before it is buffered.
inline constexpr std::string_view kVppRxDrop = "vpp.rx.drop";
inline constexpr std::string_view kVppRxCorrupt = "vpp.rx.corrupt";
// VPP ingress admission (overload plane): the frame is rejected as if the
// admission token bucket were empty (`rx_dropped_admission` stat).
inline constexpr std::string_view kVppRxAdmissionReject =
    "vpp.rx.admission_reject";
// Chain credit grant: the link grants zero credits this tick, so the
// producer stalls one tick even though the consumer has room.
inline constexpr std::string_view kChainCreditGrant = "chain.credit_grant";
// Circuit-breaker half-open probe (overload plane): the probe fails and the
// breaker reopens without dispatching.
inline constexpr std::string_view kBreakerProbe = "overload.breaker.probe";
// Trusted-instruction layer: nf_launch fails with transient
// kResourceExhausted before touching any resource.
inline constexpr std::string_view kNfLaunch = "snic.nf_launch";
// Supervisor re-attestation during a restart (mgmt::Supervisor): a firing
// hit makes the relaunched child's attestation handshake fail, so the
// restart attempt is charged as a failed recovery and re-enters backoff.
// This is an attempt-carrying site — the Supervisor passes the 1-based
// recovery-attempt number, so `FaultRule::on_attempt` can target exactly
// the Nth attempt (crash-during-recovery scenarios).
inline constexpr std::string_view kSupervisorReattest = "supervisor.reattest";
// NF service loop: a firing hit makes the NF skip its heartbeat and all
// work this step (a silent hang the watchdog must catch). Consulted by the
// chaos soak and the scenario runner's workload tenants.
inline constexpr std::string_view kNfHang = "nf.hang";
// Internal IO bus: the request is stalled by the rule's stall_cycles
// payload before arbitration (a modeled timeout).
inline constexpr std::string_view kBusTimeout = "sim.bus.timeout";
// vNIC front-end (src/core/vnic, docs/ROBUSTNESS.md attack taxonomy). Each
// site models one move of the hostile-tenant playbook on the firing VF's
// own resources — a victim VF is structurally unreachable.
// Doorbell write storm: the firing write drains the VF's doorbell token
// bucket, so this and following writes bounce until the next refill.
inline constexpr std::string_view kVnicDoorbellFlood = "vnic.doorbell.flood";
// Completion-queue squatting: the firing harvest is skipped, so completions
// pile up until deliveries drop against a full queue.
inline constexpr std::string_view kVnicCqSquat = "vnic.cq.squat";
// Malformed descriptor: one byte of the posted descriptor block is flipped
// before the strict decoder sees it (the decode must reject, never crash).
inline constexpr std::string_view kVnicDescCorrupt = "vnic.desc.corrupt";
// Descriptor replay: the first decoded descriptor's ring index is rewritten
// to an already-consumed slot, which the ring rejects as stale.
inline constexpr std::string_view kVnicDescStale = "vnic.desc.stale";
// Quota-exhaustion churn: a phantom reservation charges the VF's posted-byte
// quota to its limit; only a VF reset releases it.
inline constexpr std::string_view kVnicQuotaChurn = "vnic.quota.churn";
}  // namespace sites

// Matches every NF id (including 0, the "no NF yet" id used by nf_launch).
inline constexpr uint64_t kAnyNf = ~uint64_t{0};

// One scheduled fault. A rule observes the stream of hits matching its
// (site, nf_id) filter; hit numbering is per-rule. The first `skip` matching
// hits pass through unharmed ("arming delay"). With period == 0 the next
// `count` hits fire (kForever = keep firing); with period > 0 the armed
// stream fires cyclically whenever (armed_hit % period) < count. An optional
// Bernoulli draw (probability < 1) from the rule's private stream thins the
// firing hits.
struct FaultRule {
  static constexpr uint64_t kForever = ~uint64_t{0};

  std::string site;
  uint64_t nf_id = kAnyNf;
  uint64_t skip = 0;
  uint64_t count = 1;
  uint64_t period = 0;
  double probability = 1.0;
  uint64_t stall_cycles = 0;  // payload for stall/timeout sites
  // Attempt predicate: 0 matches every hit (classic behavior). When set,
  // the rule only considers hits whose caller-supplied attempt number (see
  // SNIC_FAULT_FIRES_ATTEMPT) equals this value — e.g. on_attempt = 2
  // means "fire during the 2nd recovery attempt". Hits at sites that do
  // not carry an attempt (attempt 0) never match a rule with on_attempt
  // set, and non-matching hits do not advance the rule's counters, so an
  // attempt-scoped rule cannot be perturbed by unrelated traffic at the
  // same site.
  uint64_t on_attempt = 0;
};

// A seeded, schedule-driven fault injector. Single-threaded like a metric
// shard: a plane belongs to the scenario (thread) that installed it, so it
// carries no mutex by design — the single-owner contract is checked by the
// TSan CI job (chaos_soak runs one plane per parallel scenario), not by
// clang -Wthread-safety (docs/STATIC_ANALYSIS.md).
class FaultPlane {
 public:
  explicit FaultPlane(uint64_t seed) : seed_(seed) {}

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  void AddRule(FaultRule rule);

  // Decision for one execution of a site: advances every matching rule's hit
  // counter and returns true when at least one fires. `attempt` is the
  // caller-supplied recovery-attempt context (0 = none); rules with
  // on_attempt set match only hits carrying their attempt number.
  bool Fires(std::string_view site, uint64_t nf_id, uint64_t attempt = 0);

  // Like Fires, but returns the summed stall_cycles payload of the firing
  // rules (0 when none fire).
  uint64_t StallCycles(std::string_view site, uint64_t nf_id);

  // Re-points rules scoped to `old_nf` at `new_nf` (hit counters and rng
  // streams keep running). Lets a schedule follow a supervised NF whose id
  // changes across restarts.
  void RetargetRules(uint64_t old_nf, uint64_t new_nf);

  // The plane's simulated clock. Components that need a time base for
  // backoff (mgmt::Autoscaler) read now(); the scenario driver advances it.
  void AdvanceClockTo(uint64_t cycle) { now_ = cycle > now_ ? cycle : now_; }
  uint64_t now() const { return now_; }

  uint64_t injected_total() const { return injected_total_; }
  uint64_t InjectedAt(std::string_view site) const;

  // Publishes `fault.injected{site=...,nf=...}` counters (one per rule) to
  // `registry`. Unlike the device classes the plane does NOT self-attach to
  // the default registry: a plane is an experiment fixture, so its series
  // appear only where the experiment asks for them.
  void AttachObs(obs::MetricRegistry* registry);
  // Emits one instant event per injected fault at the plane clock, on the
  // faulted NF's trace lane.
  void AttachTrace(obs::TraceLog* trace) { trace_ = trace; }
  // Binary-ring flavour: each injection lands as one fault.fired span
  // instant whose arg resolves to the rule's site name (interned up front,
  // so the firing path stays allocation-free).
  void AttachTraceRing(obs::TraceRing* ring);

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t hits = 0;
    uint64_t injected = 0;
    Rng rng;
    obs::Counter* obs_injected = nullptr;
    uint16_t ring_site = 0;  // interned site name while a ring is attached

    RuleState(FaultRule r, uint64_t rule_seed)
        : rule(std::move(r)), rng(rule_seed) {}
  };

  // Shared evaluation: advances matching rules, returns whether any fired
  // and accumulates firing rules' stall payloads into *stall.
  bool Evaluate(std::string_view site, uint64_t nf_id, uint64_t attempt,
                uint64_t* stall);
  void PublishRule(RuleState& state);

  uint64_t seed_;
  uint64_t now_ = 0;
  uint64_t injected_total_ = 0;
  std::vector<RuleState> rules_;
  obs::MetricRegistry* registry_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  obs::TraceRing* ring_ = nullptr;
  uint16_t ring_fired_ = 0;
  uint16_t ring_arg_site_ = 0;
};

// The plane installed on the calling thread, or nullptr. Injection sites go
// through this so uninstrumented runs pay one thread-local load.
FaultPlane* CurrentFaultPlane();

// RAII thread-local installation (nestable; previous plane restored).
class ScopedFaultPlane {
 public:
  explicit ScopedFaultPlane(FaultPlane* plane);
  ~ScopedFaultPlane();

  ScopedFaultPlane(const ScopedFaultPlane&) = delete;
  ScopedFaultPlane& operator=(const ScopedFaultPlane&) = delete;

 private:
  FaultPlane* previous_;
};

namespace internal {
// The calling thread's installed plane (set by ScopedFaultPlane). Exposed so
// the injection-site macros below can test it inline: sites sit on hot loops
// (every bus grant crosses one), and an uninstrumented run must pay one
// thread-local load and a predicted branch, not an out-of-line call.
extern thread_local FaultPlane* tls_plane;
}  // namespace internal

// Macro back-ends: inline null-plane fast path, then the out-of-line
// FaultPlane::Fires / StallCycles on the installed plane.
inline bool SiteFires(std::string_view site, uint64_t nf_id) {
  FaultPlane* plane = internal::tls_plane;
  return plane != nullptr && plane->Fires(site, nf_id);
}

inline uint64_t SiteStall(std::string_view site, uint64_t nf_id) {
  FaultPlane* plane = internal::tls_plane;
  return plane == nullptr ? 0 : plane->StallCycles(site, nf_id);
}

inline bool SiteFiresAttempt(std::string_view site, uint64_t nf_id,
                             uint64_t attempt) {
  FaultPlane* plane = internal::tls_plane;
  return plane != nullptr && plane->Fires(site, nf_id, attempt);
}

}  // namespace snic::fault

#endif  // SNIC_FAULT_FAULT_H_
