#include "src/fault/fault.h"

#include "src/obs/span_names.h"

namespace snic::fault {

namespace internal {
thread_local FaultPlane* tls_plane = nullptr;
}  // namespace internal

namespace {

// Per-rule stream seed: a pure function of (plane seed, rule index), mixed
// the same way runtime::DeriveTaskSeed mixes (base, task) so adjacent rules
// get decorrelated streams.
uint64_t DeriveRuleSeed(uint64_t plane_seed, uint64_t rule_index) {
  uint64_t x = plane_seed;
  Rng::SplitMix64(x);
  x += rule_index;
  return Rng::SplitMix64(x);
}

}  // namespace

void FaultPlane::AddRule(FaultRule rule) {
  rules_.emplace_back(std::move(rule), DeriveRuleSeed(seed_, rules_.size()));
  if (registry_ != nullptr) {
    PublishRule(rules_.back());
  }
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    // Rule sites are schedule data, not compile-time span names; they live
    // in the fault-site registry. snic-lint: allow(span-name-registry)
    rules_.back().ring_site = ring_->Intern(rules_.back().rule.site);
  });
}

void FaultPlane::PublishRule(RuleState& state) {
  obs::Labels labels;
  labels.emplace_back("site", state.rule.site);
  labels.emplace_back("nf", state.rule.nf_id == kAnyNf
                                ? std::string("any")
                                : std::to_string(state.rule.nf_id));
  state.obs_injected = &registry_->GetCounter("fault.injected", labels);
}

void FaultPlane::AttachObs(obs::MetricRegistry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) {
    for (RuleState& state : rules_) {
      state.obs_injected = nullptr;
    }
    return;
  }
  for (RuleState& state : rules_) {
    PublishRule(state);
  }
}

void FaultPlane::AttachTraceRing(obs::TraceRing* ring) {
  SNIC_TRACE_RING({
    ring_ = ring;
    if (ring_ != nullptr) {
      ring_fired_ = ring_->Intern(obs::spans::kFaultFired);
      ring_arg_site_ = ring_->Intern(obs::spans::kArgSite);
      for (RuleState& state : rules_) {
        // snic-lint: allow(span-name-registry) — see AddRule.
        state.ring_site = ring_->Intern(state.rule.site);
      }
    }
  });
  (void)ring;
}

bool FaultPlane::Evaluate(std::string_view site, uint64_t nf_id,
                          uint64_t attempt, uint64_t* stall) {
  bool fired = false;
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site) {
      continue;
    }
    if (rule.nf_id != kAnyNf && rule.nf_id != nf_id) {
      continue;
    }
    if (rule.on_attempt != 0 && rule.on_attempt != attempt) {
      // Attempt predicate mismatch: not a hit for this rule at all, so its
      // counters and rng stream stay untouched — "fire on the Nth recovery
      // attempt" cannot be skewed by other traffic at the site.
      continue;
    }
    const uint64_t hit = state.hits++;
    if (hit < rule.skip) {
      continue;
    }
    const uint64_t armed = hit - rule.skip;
    const bool in_window =
        rule.period == 0
            ? (rule.count == FaultRule::kForever || armed < rule.count)
            : (armed % rule.period) < rule.count;
    if (!in_window) {
      continue;
    }
    if (rule.probability < 1.0 && state.rng.NextDouble() >= rule.probability) {
      continue;
    }
    fired = true;
    *stall += rule.stall_cycles;
    ++state.injected;
    ++injected_total_;
    if (state.obs_injected != nullptr) {
      state.obs_injected->Inc();
    }
    if (trace_ != nullptr) {
      obs::Labels args;
      args.emplace_back("site", rule.site);
      trace_->AddInstant("fault", now_, static_cast<uint32_t>(nf_id),
                         /*tid=*/0, std::move(args));
    }
    SNIC_TRACE_RING(if (ring_ != nullptr) {
      ring_->EmitInstant(ring_fired_, now_, static_cast<uint32_t>(nf_id),
                         /*tid=*/0, /*span=*/0, state.ring_site,
                         ring_arg_site_, /*arg_is_name=*/true);
    });
  }
  return fired;
}

bool FaultPlane::Fires(std::string_view site, uint64_t nf_id,
                       uint64_t attempt) {
  uint64_t stall = 0;
  return Evaluate(site, nf_id, attempt, &stall);
}

uint64_t FaultPlane::StallCycles(std::string_view site, uint64_t nf_id) {
  uint64_t stall = 0;
  Evaluate(site, nf_id, /*attempt=*/0, &stall);
  return stall;
}

void FaultPlane::RetargetRules(uint64_t old_nf, uint64_t new_nf) {
  for (RuleState& state : rules_) {
    if (state.rule.nf_id == old_nf) {
      // The obs series keeps its original nf label (the schedule's
      // identity); only the live filter moves.
      state.rule.nf_id = new_nf;
    }
  }
}

uint64_t FaultPlane::InjectedAt(std::string_view site) const {
  uint64_t total = 0;
  for (const RuleState& state : rules_) {
    if (state.rule.site == site) {
      total += state.injected;
    }
  }
  return total;
}

FaultPlane* CurrentFaultPlane() { return internal::tls_plane; }

ScopedFaultPlane::ScopedFaultPlane(FaultPlane* plane)
    : previous_(internal::tls_plane) {
  internal::tls_plane = plane;
}

ScopedFaultPlane::~ScopedFaultPlane() { internal::tls_plane = previous_; }

}  // namespace snic::fault
