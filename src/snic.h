// Umbrella header: the public API of the S-NIC reproduction.
//
// Library map (see DESIGN.md for the full inventory):
//   core/     the paper's contribution — trusted instructions, denylists,
//             virtual packet pipelines, attestation, attack scenarios
//   mgmt/     NIC OS management plane, host DMA, secure constellations
//   nf/       the six evaluation network functions
//   accel/    virtualized accelerators (DPI/ZIP/RAID) + crypto co-processor
//   sim/      cache/bus/DRAM timing simulator (gem5-lite)
//   hwmodel/  McPAT-lite TLB costs + TCO model
//   runtime/  deterministic parallel sweep runtime (docs/RUNTIME.md)
//   net/      packets, headers, switching rules
//   trace/    synthetic CAIDA/iCTF-like workload generation
//   crypto/   SHA-256, RSA, Diffie-Hellman (attestation substrate)

#ifndef SNIC_SNIC_H_
#define SNIC_SNIC_H_

#include "src/accel/accelerator.h"
#include "src/accel/aho_corasick.h"
#include "src/accel/crypto_coproc.h"
#include "src/accel/raid.h"
#include "src/accel/zip.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/common/zipf.h"
#include "src/core/attacks.h"
#include "src/core/attestation.h"
#include "src/core/attestation_wire.h"
#include "src/core/chaining.h"
#include "src/core/dpi_device.h"
#include "src/core/liquidio_kernel.h"
#include "src/core/mips_segments.h"
#include "src/core/watermark.h"
#include "src/core/denylist.h"
#include "src/core/physical_memory.h"
#include "src/core/snic_device.h"
#include "src/core/tlb_sizing.h"
#include "src/core/trustzone.h"
#include "src/core/vpp.h"
#include "src/crypto/diffie_hellman.h"
#include "src/crypto/keys.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha256.h"
#include "src/hwmodel/tco.h"
#include "src/hwmodel/tlb_cost.h"
#include "src/mgmt/constellation.h"
#include "src/mgmt/dma.h"
#include "src/mgmt/nic_os.h"
#include "src/mgmt/verifier.h"
#include "src/net/packet.h"
#include "src/net/parser.h"
#include "src/net/switching.h"
#include "src/crypto/drbg.h"
#include "src/mgmt/autoscaler.h"
#include "src/nf/compressor.h"
#include "src/nf/dpi_nf.h"
#include "src/nf/firewall.h"
#include "src/nf/lpm.h"
#include "src/nf/maglev_lb.h"
#include "src/nf/monitor.h"
#include "src/nf/nat.h"
#include "src/nf/nf_factory.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/bus.h"
#include "src/sim/cache.h"
#include "src/sim/replay.h"
#include "src/sim/secdcp.h"
#include "src/sim/tlb.h"
#include "src/trace/trace_gen.h"
#include "src/trace/trace_io.h"

#endif  // SNIC_SNIC_H_
