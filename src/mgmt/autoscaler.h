// Utilization management by function churn (§4.8 "Underutilization").
//
// S-NIC deliberately freezes a function's resources at launch — pages and
// cores can never be returned while the function lives, because OS-visible
// resource dynamics are themselves a side channel. The paper's prescription:
// "physical utilization should be kept high by creating or destroying
// functions in response to time-varying load." This module implements that
// control loop over the NIC OS API and accounts its costs: every scaling
// action pays the (real, modeled) nf_launch / nf_teardown latency, which is
// the trade against static peak provisioning the ablation bench quantifies.

#ifndef SNIC_MGMT_AUTOSCALER_H_
#define SNIC_MGMT_AUTOSCALER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/mgmt/nic_os.h"

namespace snic::mgmt {

struct AutoscalerConfig {
  FunctionImage image;                  // the scale unit (one NF instance)
  double capacity_per_instance = 1.0;   // load one instance absorbs
  double scale_up_threshold = 0.85;     // utilization that triggers +1
  double scale_down_threshold = 0.45;   // utilization that triggers -1
  uint32_t min_instances = 1;
  uint32_t max_instances = 8;

  // Transient-launch-failure handling: a scale-up that fails with
  // kResourceExhausted / kUnavailable is retried up to max_launch_retries
  // times with doubling backoff (measured on the fault plane's cycle clock
  // when one is installed, otherwise in control-loop steps).
  uint32_t max_launch_retries = 3;
  uint64_t retry_backoff_base = 2;
  uint64_t retry_backoff_max = 32;

  // Backpressure-driven scale-out (overload plane): after this many
  // *consecutive* pressured steps an extra instance is launched even if the
  // utilization estimate alone would not trigger one — queues backing up
  // mean the load estimate under-reports real demand.
  uint32_t pressure_scale_up_after = 3;
};

struct AutoscalerStats {
  uint64_t launches = 0;
  uint64_t teardowns = 0;
  double launch_ms_paid = 0.0;    // modeled nf_launch time spent scaling
  double teardown_ms_paid = 0.0;
  uint64_t overload_steps = 0;    // steps where load exceeded capacity
  uint64_t launch_failures = 0;   // transient nf_launch errors absorbed
  uint64_t launch_retries = 0;    // retry attempts issued
  uint64_t abandoned_launches = 0;  // retry budget exhausted
  uint64_t pressured_steps = 0;     // steps that reported backpressure
  uint64_t pressure_scale_ups = 0;  // launches triggered by sustained pressure
  double utilization_sum = 0.0;   // for the mean
  uint64_t steps = 0;

  double MeanUtilization() const {
    return steps == 0 ? 0.0 : utilization_sum / static_cast<double>(steps);
  }
};

class Autoscaler {
 public:
  Autoscaler(NicOs* nic_os, AutoscalerConfig config);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // One control-loop step under `offered_load` (same unit as
  // capacity_per_instance). Launches or destroys at most one instance.
  Status Step(double offered_load);

  // Overload-aware step: `backpressured` is the sustained-pressure signal
  // from the data plane (chain credit stalls, RX fill above the high-water
  // mark). Sustained pressure forces a scale-out and vetoes scale-down.
  Status Step(double offered_load, bool backpressured);

  uint32_t instances() const { return static_cast<uint32_t>(live_.size()); }
  double Capacity() const {
    return static_cast<double>(live_.size()) * config_.capacity_per_instance;
  }
  const AutoscalerStats& stats() const { return stats_; }
  const std::vector<uint64_t>& live_ids() const { return live_; }
  bool RetryPending() const { return retry_pending_; }

 private:
  Status ScaleUp();
  Status ScaleDown();
  // Fault-plane cycle clock when a plane is installed, else the step count.
  uint64_t Clock() const;
  // Routes a ScaleUp failure: transient codes arm (or re-arm) the retry
  // state and are absorbed; anything else propagates.
  Status HandleLaunchFailure(Status status);

  NicOs* nic_os_;
  AutoscalerConfig config_;
  std::vector<uint64_t> live_;
  AutoscalerStats stats_;
  bool retry_pending_ = false;
  uint32_t retry_attempts_ = 0;
  uint64_t retry_due_ = 0;
  uint32_t consecutive_pressure_ = 0;
};

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_AUTOSCALER_H_
