#include "src/mgmt/dma.h"

#include <cstring>

#include "src/fault/fault.h"

namespace snic::mgmt {

Status HostMemory::Read(uint64_t offset, std::span<uint8_t> out) const {
  if (offset + out.size() > data_.size()) {
    return InvalidArgument("host read out of range");
  }
  std::memcpy(out.data(), data_.data() + offset, out.size());
  return OkStatus();
}

Status HostMemory::Write(uint64_t offset, std::span<const uint8_t> data) {
  if (offset + data.size() > data_.size()) {
    return InvalidArgument("host write out of range");
  }
  std::memcpy(data_.data() + offset, data.data(), data.size());
  return OkStatus();
}

Status DmaController::ConfigureBank(uint32_t bank,
                                    const DmaBankConfig& config) {
  if (bank >= device_->config().num_cores) {
    return InvalidArgument("bank index exceeds core count");
  }
  if (banks_.size() <= bank) {
    banks_.resize(bank + 1);
  }
  banks_[bank] = config;
  return OkStatus();
}

Status DmaController::CheckWindows(const DmaBankConfig& bank,
                                   uint64_t host_offset, uint64_t nic_vaddr,
                                   uint64_t bytes) const {
  if (bank.nf_id == 0) {
    return FailedPrecondition("DMA bank not configured");
  }
  if (host_offset < bank.host_window_base ||
      host_offset + bytes > bank.host_window_base + bank.host_window_bytes) {
    return PermissionDenied("host address outside sanctioned window");
  }
  if (nic_vaddr < bank.nic_window_vbase ||
      nic_vaddr + bytes > bank.nic_window_vbase + bank.nic_window_bytes) {
    return PermissionDenied("NIC address outside the function's DMA window");
  }
  return OkStatus();
}

Status DmaController::HostToNic(uint32_t bank, uint64_t host_offset,
                                uint64_t nic_vaddr, uint64_t bytes) {
  if (bank >= banks_.size()) {
    return InvalidArgument("unknown DMA bank");
  }
  const DmaBankConfig& config = banks_[bank];
  if (Status s = CheckWindows(config, host_offset, nic_vaddr, bytes);
      !s.ok()) {
    return s;
  }
  if (SNIC_FAULT_FIRES(fault::sites::kDmaHostToNic, config.nf_id)) {
    return Unavailable("injected DMA staging error (host->NIC)");
  }
  std::vector<uint8_t> buffer(bytes);
  if (Status s = host_->Read(host_offset,
                             std::span<uint8_t>(buffer.data(), buffer.size()));
      !s.ok()) {
    return s;
  }
  return device_->NfWriteBlock(
      config.nf_id, nic_vaddr,
      std::span<const uint8_t>(buffer.data(), buffer.size()));
}

Status DmaController::NicToHost(uint32_t bank, uint64_t nic_vaddr,
                                uint64_t host_offset, uint64_t bytes) {
  if (bank >= banks_.size()) {
    return InvalidArgument("unknown DMA bank");
  }
  const DmaBankConfig& config = banks_[bank];
  if (Status s = CheckWindows(config, host_offset, nic_vaddr, bytes);
      !s.ok()) {
    return s;
  }
  if (SNIC_FAULT_FIRES(fault::sites::kDmaNicToHost, config.nf_id)) {
    return Unavailable("injected DMA staging error (NIC->host)");
  }
  std::vector<uint8_t> buffer(bytes);
  if (Status s = device_->NfReadBlock(
          config.nf_id, nic_vaddr,
          std::span<uint8_t>(buffer.data(), buffer.size()));
      !s.ok()) {
    return s;
  }
  return host_->Write(host_offset, std::span<const uint8_t>(buffer.data(),
                                                            buffer.size()));
}

}  // namespace snic::mgmt
