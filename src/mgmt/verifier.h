// Tenant-side attestation verifier.
//
// The tenant knows what it uploaded; the NIC OS is untrusted and "may
// improperly setup a function, e.g., by omitting a code page from the
// registration process. Remote clients can detect improper function setups
// by requiring the function to attest" (§4.8). This module gives the tenant
// the two halves of that check:
//   * ExpectedMeasurement() — recompute, from the uploaded image alone, the
//     cumulative hash trusted hardware will produce at nf_launch;
//   * Verifier — a policy object holding trusted vendor keys and expected
//     measurements, which validates quotes end to end and issues channel
//     keys only for functions that match.

#ifndef SNIC_MGMT_VERIFIER_H_
#define SNIC_MGMT_VERIFIER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/attestation.h"
#include "src/crypto/diffie_hellman.h"
#include "src/mgmt/constellation.h"
#include "src/mgmt/nic_os.h"

namespace snic::mgmt {

// Recomputes the launch-time measurement for an image: the image bytes
// padded to whole pages of `page_bytes` (nf_launch hashes full pages) plus
// the serialized configuration. Must track SnicDevice::NfLaunch exactly —
// the integration tests pin the two together.
crypto::Sha256Digest ExpectedMeasurement(const FunctionImage& image,
                                         uint64_t page_bytes);

class Verifier {
 public:
  explicit Verifier(crypto::RsaPublicKey trusted_vendor_key)
      : vendor_key_(std::move(trusted_vendor_key)) {}

  // Registers what a correctly launched `name` must measure as.
  void ExpectFunction(const std::string& name,
                      const crypto::Sha256Digest& measurement);

  // Runs the full check against a quote received for `name`: certificate
  // chain, signature, nonce freshness, and measurement policy. On success
  // returns the verifier-side channel (the caller supplied its DH share in
  // the request; the quote carries the function's).
  Result<SecureChannel> VerifyAndKey(const std::string& name,
                                     const core::AttestationQuote& quote,
                                     const std::vector<uint8_t>& nonce,
                                     const crypto::DhParticipant& my_dh) const;

  size_t expected_count() const { return expected_.size(); }

 private:
  crypto::RsaPublicKey vendor_key_;
  std::map<std::string, crypto::Sha256Digest> expected_;
};

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_VERIFIER_H_
