#include "src/mgmt/autoscaler.h"

#include <algorithm>

#include "src/fault/fault.h"

namespace snic::mgmt {

namespace {
bool IsTransient(const Status& status) {
  return status.code() == ErrorCode::kResourceExhausted ||
         status.code() == ErrorCode::kUnavailable;
}
}  // namespace

Autoscaler::Autoscaler(NicOs* nic_os, AutoscalerConfig config)
    : nic_os_(nic_os), config_(std::move(config)) {
  SNIC_CHECK(config_.capacity_per_instance > 0.0);
  SNIC_CHECK(config_.min_instances >= 1);
  SNIC_CHECK(config_.max_instances >= config_.min_instances);
  SNIC_CHECK(config_.scale_down_threshold < config_.scale_up_threshold);
  while (instances() < config_.min_instances) {
    SNIC_CHECK_OK(ScaleUp());
  }
}

Autoscaler::~Autoscaler() {
  for (uint64_t id : live_) {
    (void)nic_os_->NfDestroy(id);
  }
}

Status Autoscaler::ScaleUp() {
  const auto id = nic_os_->NfCreate(config_.image);
  if (!id.ok()) {
    return id.status();
  }
  live_.push_back(id.value());
  ++stats_.launches;
  stats_.launch_ms_paid +=
      nic_os_->device().last_launch_latency().TotalMs();
  return OkStatus();
}

Status Autoscaler::ScaleDown() {
  SNIC_CHECK(!live_.empty());
  const uint64_t id = live_.back();
  if (Status s = nic_os_->NfDestroy(id); !s.ok()) {
    return s;
  }
  live_.pop_back();
  ++stats_.teardowns;
  stats_.teardown_ms_paid +=
      nic_os_->device().last_teardown_latency().TotalMs();
  return OkStatus();
}

uint64_t Autoscaler::Clock() const {
  const fault::FaultPlane* plane = fault::CurrentFaultPlane();
  return plane != nullptr ? plane->now() : stats_.steps;
}

Status Autoscaler::HandleLaunchFailure(Status status) {
  if (!IsTransient(status)) {
    retry_pending_ = false;
    retry_attempts_ = 0;
    return status;
  }
  ++stats_.launch_failures;
  if (retry_attempts_ >= config_.max_launch_retries) {
    // Budget exhausted: give up on this launch; a later step that still
    // sees pressure starts a fresh attempt sequence.
    retry_pending_ = false;
    retry_attempts_ = 0;
    ++stats_.abandoned_launches;
    return status;
  }
  uint64_t backoff = config_.retry_backoff_base;
  for (uint32_t i = 0; i < retry_attempts_ && backoff < config_.retry_backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.retry_backoff_max);
  retry_pending_ = true;
  ++retry_attempts_;
  retry_due_ = Clock() + backoff;
  return OkStatus();  // absorbed: the control loop owns the retry
}

Status Autoscaler::Step(double offered_load) {
  return Step(offered_load, /*backpressured=*/false);
}

Status Autoscaler::Step(double offered_load, bool backpressured) {
  ++stats_.steps;
  if (backpressured) {
    ++stats_.pressured_steps;
    ++consecutive_pressure_;
  } else {
    consecutive_pressure_ = 0;
  }
  const double capacity = Capacity();
  const double utilization = capacity == 0.0 ? 1.0 : offered_load / capacity;
  stats_.utilization_sum += utilization > 1.0 ? 1.0 : utilization;
  if (offered_load > capacity) {
    ++stats_.overload_steps;
  }

  // A pending retry is committed demand: service it before fresh decisions,
  // but never past max_instances (pressure may have been satisfied since).
  if (retry_pending_) {
    if (instances() >= config_.max_instances ||
        utilization <= config_.scale_down_threshold) {
      retry_pending_ = false;
      retry_attempts_ = 0;
    } else if (Clock() >= retry_due_) {
      ++stats_.launch_retries;
      Status retried = ScaleUp();
      if (retried.ok()) {
        retry_pending_ = false;
        retry_attempts_ = 0;
      } else if (Status s = HandleLaunchFailure(std::move(retried)); !s.ok()) {
        return s;
      }
      return OkStatus();
    } else {
      return OkStatus();  // still backing off
    }
  }

  if (utilization > config_.scale_up_threshold &&
      instances() < config_.max_instances) {
    Status up = ScaleUp();
    if (!up.ok()) {
      return HandleLaunchFailure(std::move(up));
    }
    consecutive_pressure_ = 0;
    return OkStatus();
  }
  // Sustained backpressure means queues are growing even though the load
  // estimate looks fine: trust the data plane and add an instance.
  if (consecutive_pressure_ >= config_.pressure_scale_up_after &&
      instances() < config_.max_instances) {
    Status up = ScaleUp();
    if (!up.ok()) {
      return HandleLaunchFailure(std::move(up));
    }
    ++stats_.pressure_scale_ups;
    consecutive_pressure_ = 0;
    return OkStatus();
  }
  // Scale down only if the remaining capacity still clears the up-threshold
  // margin (hysteresis; avoids flapping at the boundary) — and never while
  // the data plane is reporting pressure.
  if (!backpressured && instances() > config_.min_instances &&
      utilization < config_.scale_down_threshold) {
    const double capacity_after =
        capacity - config_.capacity_per_instance;
    if (capacity_after > 0.0 &&
        offered_load / capacity_after < config_.scale_up_threshold) {
      return ScaleDown();
    }
  }
  return OkStatus();
}

}  // namespace snic::mgmt
