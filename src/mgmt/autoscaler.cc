#include "src/mgmt/autoscaler.h"

namespace snic::mgmt {

Autoscaler::Autoscaler(NicOs* nic_os, AutoscalerConfig config)
    : nic_os_(nic_os), config_(std::move(config)) {
  SNIC_CHECK(config_.capacity_per_instance > 0.0);
  SNIC_CHECK(config_.min_instances >= 1);
  SNIC_CHECK(config_.max_instances >= config_.min_instances);
  SNIC_CHECK(config_.scale_down_threshold < config_.scale_up_threshold);
  while (instances() < config_.min_instances) {
    SNIC_CHECK_OK(ScaleUp());
  }
}

Autoscaler::~Autoscaler() {
  for (uint64_t id : live_) {
    (void)nic_os_->NfDestroy(id);
  }
}

Status Autoscaler::ScaleUp() {
  const auto id = nic_os_->NfCreate(config_.image);
  if (!id.ok()) {
    return id.status();
  }
  live_.push_back(id.value());
  ++stats_.launches;
  stats_.launch_ms_paid +=
      nic_os_->device().last_launch_latency().TotalMs();
  return OkStatus();
}

Status Autoscaler::ScaleDown() {
  SNIC_CHECK(!live_.empty());
  const uint64_t id = live_.back();
  if (Status s = nic_os_->NfDestroy(id); !s.ok()) {
    return s;
  }
  live_.pop_back();
  ++stats_.teardowns;
  stats_.teardown_ms_paid +=
      nic_os_->device().last_teardown_latency().TotalMs();
  return OkStatus();
}

Status Autoscaler::Step(double offered_load) {
  ++stats_.steps;
  const double capacity = Capacity();
  const double utilization = capacity == 0.0 ? 1.0 : offered_load / capacity;
  stats_.utilization_sum += utilization > 1.0 ? 1.0 : utilization;
  if (offered_load > capacity) {
    ++stats_.overload_steps;
  }

  if (utilization > config_.scale_up_threshold &&
      instances() < config_.max_instances) {
    return ScaleUp();
  }
  // Scale down only if the remaining capacity still clears the up-threshold
  // margin (hysteresis; avoids flapping at the boundary).
  if (instances() > config_.min_instances &&
      utilization < config_.scale_down_threshold) {
    const double capacity_after =
        capacity - config_.capacity_per_instance;
    if (capacity_after > 0.0 &&
        offered_load / capacity_after < config_.scale_up_threshold) {
      return ScaleDown();
    }
  }
  return OkStatus();
}

}  // namespace snic::mgmt
