#include "src/mgmt/verifier.h"

#include <algorithm>

#include "src/common/units.h"
#include "src/crypto/sha256.h"

namespace snic::mgmt {

crypto::Sha256Digest ExpectedMeasurement(const FunctionImage& image,
                                         uint64_t page_bytes) {
  crypto::Sha256 hasher;
  // nf_launch digests the image page by page, zero-padded to page size.
  const uint64_t pages = CeilDiv(image.code_and_data.size(), page_bytes);
  std::vector<uint8_t> page(page_bytes, 0);
  for (uint64_t p = 0; p < pages; ++p) {
    std::fill(page.begin(), page.end(), 0);
    const uint64_t offset = p * page_bytes;
    const uint64_t chunk =
        std::min<uint64_t>(page_bytes, image.code_and_data.size() - offset);
    std::copy(image.code_and_data.begin() + static_cast<ptrdiff_t>(offset),
              image.code_and_data.begin() +
                  static_cast<ptrdiff_t>(offset + chunk),
              page.begin());
    hasher.Update(page.data(), page.size());
  }
  const std::vector<uint8_t> config = image.SerializeConfig();
  hasher.Update(config.data(), config.size());
  return hasher.Finalize();
}

void Verifier::ExpectFunction(const std::string& name,
                              const crypto::Sha256Digest& measurement) {
  expected_[name] = measurement;
}

Result<SecureChannel> Verifier::VerifyAndKey(
    const std::string& name, const core::AttestationQuote& quote,
    const std::vector<uint8_t>& nonce,
    const crypto::DhParticipant& my_dh) const {
  const auto it = expected_.find(name);
  if (it == expected_.end()) {
    return NotFound("no expected measurement registered for " + name);
  }
  const auto verification =
      core::VerifyQuote(vendor_key_, quote, nonce, &it->second);
  if (!verification.chain_ok) {
    return PermissionDenied("certificate chain does not reach the vendor");
  }
  if (!verification.signature_ok) {
    return PermissionDenied("quote signature invalid");
  }
  if (!verification.nonce_ok) {
    return PermissionDenied("stale or replayed nonce");
  }
  if (!verification.measurement_ok) {
    return PermissionDenied(
        "measurement mismatch: the NIC OS launched something other than "
        "the uploaded image/config for " +
        name);
  }
  return SecureChannel(my_dh.DeriveChannelKey(quote.g_x));
}

}  // namespace snic::mgmt
