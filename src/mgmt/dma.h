// Host/NIC DMA with per-bank isolation (§4.2).
//
// S-NIC's DMA controller is multi-bank: one bank per programmable core, each
// bank carrying locked TLB entries for the upstream and downstream transfer
// windows (SR-IOV style). The host can only deposit into the function-owned
// window; the function can only reach the host-sanctioned region. Table 4
// prices these banks at 2 entries each (packet buffer + instruction queue).

#ifndef SNIC_MGMT_DMA_H_
#define SNIC_MGMT_DMA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/core/snic_device.h"

namespace snic::mgmt {

// Plain host RAM.
class HostMemory {
 public:
  explicit HostMemory(size_t bytes) : data_(bytes, 0) {}

  size_t size() const { return data_.size(); }
  std::span<uint8_t> Span() { return data_; }
  std::span<const uint8_t> Span() const { return data_; }

  Status Read(uint64_t offset, std::span<uint8_t> out) const;
  Status Write(uint64_t offset, std::span<const uint8_t> data);

 private:
  std::vector<uint8_t> data_;
};

// One DMA bank: a host-side sanctioned window plus a NIC-side window
// expressed in the owning function's virtual address space.
struct DmaBankConfig {
  uint64_t nf_id = 0;
  uint64_t host_window_base = 0;
  uint64_t host_window_bytes = 0;
  uint64_t nic_window_vbase = 0;
  uint64_t nic_window_bytes = 0;
};

class DmaController {
 public:
  DmaController(core::SnicDevice* device, HostMemory* host)
      : device_(device), host_(host) {}

  // Configures bank `bank` (one per programmable core). Reconfiguration of a
  // bank bound to a live NF is the NIC OS's job at launch/teardown time.
  Status ConfigureBank(uint32_t bank, const DmaBankConfig& config);

  // Host -> NIC: both endpoints must sit inside the bank's windows.
  Status HostToNic(uint32_t bank, uint64_t host_offset, uint64_t nic_vaddr,
                   uint64_t bytes);
  // NIC -> host.
  Status NicToHost(uint32_t bank, uint64_t nic_vaddr, uint64_t host_offset,
                   uint64_t bytes);

 private:
  Status CheckWindows(const DmaBankConfig& bank, uint64_t host_offset,
                      uint64_t nic_vaddr, uint64_t bytes) const;

  core::SnicDevice* device_;
  HostMemory* host_;
  std::vector<DmaBankConfig> banks_;
};

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_DMA_H_
