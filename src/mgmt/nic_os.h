// The NIC OS management layer (§4.1, Table 1 first column).
//
// The datacenter-provided NIC OS runs on the dedicated management core. It
// stages a function's initial state into on-NIC RAM (via DMA from the host)
// and then invokes the trusted `nf_launch` instruction. After launch the OS
// cannot touch the function's resources — that is S-NIC's whole point — but
// it can still destroy functions (`NF_destroy`), which the threat model
// treats as an out-of-scope denial of service.

#ifndef SNIC_MGMT_NIC_OS_H_
#define SNIC_MGMT_NIC_OS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/accel/accelerator.h"
#include "src/common/status.h"
#include "src/core/snic_device.h"
#include "src/net/switching.h"
#include "src/obs/metrics.h"

namespace snic::mgmt {

// What a tenant uploads: initial code+data, configuration, and resource
// reservations (e.g. "three cores, 40 MB of RAM, two crypto accelerators").
struct FunctionImage {
  std::string name;
  std::vector<uint8_t> code_and_data;
  uint32_t cores = 1;
  uint64_t memory_bytes = 40ull << 20;
  std::array<uint32_t, accel::kNumAcceleratorTypes> accel_clusters = {0, 0, 0};
  std::vector<net::SwitchRule> switch_rules;
  core::PacketScheduler scheduler = core::PacketScheduler::kFifo;
  // Overload-control policy for the function's VPP (queue bounds, drop
  // policy, admission bucket, deadline). Serialized into the config blob,
  // so the tenant's admission contract is covered by the launch measurement
  // and attestable like every other resource request.
  core::OverloadPolicy overload;

  // Canonical serialization of the configuration (covered by the launch
  // measurement so a tampered config is detectable via attestation).
  std::vector<uint8_t> SerializeConfig() const;
};

class NicOs {
 public:
  explicit NicOs(core::SnicDevice* device) : device_(device) {
    SNIC_OBS(AttachObs(&obs::DefaultRegistry()));
  }

  // NF_create: stage pages, pick cores, invoke nf_launch.
  Result<uint64_t> NfCreate(const FunctionImage& image);

  // NF_destroy: invoke nf_teardown.
  Status NfDestroy(uint64_t nf_id);

  // Management-plane physical memory access (denylist applies). Exposed so
  // the attack demos can show a *hostile* NIC OS being stopped by hardware.
  Result<uint8_t> PeekPhys(uint64_t paddr) const {
    return device_->MgmtReadPhys(paddr);
  }
  Status PokePhys(uint64_t paddr, uint8_t value) {
    return device_->MgmtWritePhys(paddr, value);
  }

  core::SnicDevice& device() { return *device_; }

  // Points the management-plane counters (`mgmt.nf_create.ok`,
  // `mgmt.nf_create.failures`, `mgmt.nf_destroy.ok`,
  // `mgmt.nf_destroy.failures`) at `registry`; the constructor attaches to
  // obs::DefaultRegistry() by default.
  void AttachObs(obs::MetricRegistry* registry);

 private:
  // Lowest `count` free programmable cores as a mask.
  Result<uint64_t> PickCores(uint32_t count) const;

  core::SnicDevice* device_;
  obs::Counter* obs_create_ok_ = nullptr;
  obs::Counter* obs_create_failures_ = nullptr;
  obs::Counter* obs_destroy_ok_ = nullptr;
  obs::Counter* obs_destroy_failures_ = nullptr;
};

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_NIC_OS_H_
