#include "src/mgmt/constellation.h"

#include <cstring>

namespace snic::mgmt {

SnicFunctionParty::SnicFunctionParty(std::string name,
                                     core::SnicDevice* device, uint64_t nf_id,
                                     const crypto::RsaPublicKey& vendor_key)
    : name_(std::move(name)),
      device_(device),
      nf_id_(nf_id),
      vendor_key_(vendor_key) {}

Result<core::AttestationQuote> SnicFunctionParty::Attest(
    const core::AttestationRequest& request) {
  return device_->NfAttest(nf_id_, request);
}

crypto::Sha256Digest SnicFunctionParty::expected_measurement() const {
  const auto m = device_->MeasurementOf(nf_id_);
  SNIC_CHECK(m.ok());
  return m.value();
}

EnclaveParty::EnclaveParty(std::string name, std::vector<uint8_t> code,
                           const crypto::VendorAuthority& platform_vendor,
                           size_t rsa_modulus_bits, Rng& rng)
    : name_(std::move(name)),
      measurement_(crypto::Sha256::Hash(
          std::span<const uint8_t>(code.data(), code.size()))),
      root_of_trust_(platform_vendor, rsa_modulus_bits, rng),
      vendor_key_(platform_vendor.public_key()) {}

Result<core::AttestationQuote> EnclaveParty::Attest(
    const core::AttestationRequest& request) {
  core::AttestationQuote quote;
  quote.measurement = measurement_;
  quote.group = request.group;
  quote.nonce = request.nonce;
  quote.g_x = request.g_x;
  const std::vector<uint8_t> payload = core::QuotePayload(
      quote.measurement, quote.group, quote.nonce, quote.g_x);
  quote.signature = root_of_trust_.SignWithAk(
      std::span<const uint8_t>(payload.data(), payload.size()));
  quote.ak_public = root_of_trust_.ak_public();
  quote.ak_endorsement = root_of_trust_.ak_endorsement();
  quote.ek_certificate = root_of_trust_.ek_certificate();
  return quote;
}

std::vector<uint8_t> SecureChannel::Seal(std::span<const uint8_t> plaintext,
                                         uint64_t seq) const {
  std::vector<uint8_t> out(plaintext.begin(), plaintext.end());
  // Counter-mode keystream: block i = HMAC(key, "ks" || seq || i).
  for (size_t block = 0; block * 32 < out.size(); ++block) {
    uint8_t info[2 + 8 + 8] = {'k', 's'};
    for (int i = 0; i < 8; ++i) {
      info[2 + i] = static_cast<uint8_t>(seq >> (56 - 8 * i));
      info[10 + i] = static_cast<uint8_t>(static_cast<uint64_t>(block) >>
                                          (56 - 8 * i));
    }
    const crypto::Sha256Digest ks = crypto::HmacSha256(
        std::span<const uint8_t>(key_.data(), key_.size()),
        std::span<const uint8_t>(info, sizeof(info)));
    for (size_t i = 0; i < 32 && block * 32 + i < out.size(); ++i) {
      out[block * 32 + i] ^= ks[i];
    }
  }
  // Tag = HMAC(key, "tag" || seq || ciphertext).
  std::vector<uint8_t> tag_input = {'t', 'a', 'g'};
  for (int i = 0; i < 8; ++i) {
    tag_input.push_back(static_cast<uint8_t>(seq >> (56 - 8 * i)));
  }
  tag_input.insert(tag_input.end(), out.begin(), out.end());
  const crypto::Sha256Digest tag = crypto::HmacSha256(
      std::span<const uint8_t>(key_.data(), key_.size()),
      std::span<const uint8_t>(tag_input.data(), tag_input.size()));
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Result<std::vector<uint8_t>> SecureChannel::Open(
    std::span<const uint8_t> sealed, uint64_t seq) const {
  if (sealed.size() < 32) {
    return InvalidArgument("sealed message shorter than its tag");
  }
  const std::span<const uint8_t> ciphertext = sealed.first(sealed.size() - 32);
  const std::span<const uint8_t> tag = sealed.last(32);

  std::vector<uint8_t> tag_input = {'t', 'a', 'g'};
  for (int i = 0; i < 8; ++i) {
    tag_input.push_back(static_cast<uint8_t>(seq >> (56 - 8 * i)));
  }
  tag_input.insert(tag_input.end(), ciphertext.begin(), ciphertext.end());
  const crypto::Sha256Digest expected = crypto::HmacSha256(
      std::span<const uint8_t>(key_.data(), key_.size()),
      std::span<const uint8_t>(tag_input.data(), tag_input.size()));
  if (std::memcmp(expected.data(), tag.data(), 32) != 0) {
    return PermissionDenied("channel tag mismatch (tampered or replayed)");
  }

  std::vector<uint8_t> plain(ciphertext.begin(), ciphertext.end());
  for (size_t block = 0; block * 32 < plain.size(); ++block) {
    uint8_t info[2 + 8 + 8] = {'k', 's'};
    for (int i = 0; i < 8; ++i) {
      info[2 + i] = static_cast<uint8_t>(seq >> (56 - 8 * i));
      info[10 + i] = static_cast<uint8_t>(static_cast<uint64_t>(block) >>
                                          (56 - 8 * i));
    }
    const crypto::Sha256Digest ks = crypto::HmacSha256(
        std::span<const uint8_t>(key_.data(), key_.size()),
        std::span<const uint8_t>(info, sizeof(info)));
    for (size_t i = 0; i < 32 && block * 32 + i < plain.size(); ++i) {
      plain[block * 32 + i] ^= ks[i];
    }
  }
  return plain;
}

PairwiseResult EstablishChannel(AttestedParty& a, AttestedParty& b,
                                const crypto::DhGroup& group, Rng& rng) {
  PairwiseResult result;

  // Each side holds an ephemeral DH participant.
  crypto::DhParticipant dh_a(group, rng);
  crypto::DhParticipant dh_b(group, rng);

  // A challenges B.
  std::vector<uint8_t> nonce_a(16);
  for (auto& byte : nonce_a) {
    byte = static_cast<uint8_t>(rng.NextU32());
  }
  core::AttestationRequest request_b;
  request_b.group = group;
  request_b.nonce = nonce_a;
  request_b.g_x = dh_b.public_value();
  const auto quote_b = b.Attest(request_b);
  if (quote_b.ok()) {
    const crypto::Sha256Digest expected = b.expected_measurement();
    const auto verification = core::VerifyQuote(b.vendor_key(), quote_b.value(),
                                                nonce_a, &expected);
    result.a_verified_b = verification.Ok();
  }

  // B challenges A.
  std::vector<uint8_t> nonce_b(16);
  for (auto& byte : nonce_b) {
    byte = static_cast<uint8_t>(rng.NextU32());
  }
  core::AttestationRequest request_a;
  request_a.group = group;
  request_a.nonce = nonce_b;
  request_a.g_x = dh_a.public_value();
  const auto quote_a = a.Attest(request_a);
  if (quote_a.ok()) {
    const crypto::Sha256Digest expected = a.expected_measurement();
    const auto verification = core::VerifyQuote(a.vendor_key(), quote_a.value(),
                                                nonce_b, &expected);
    result.b_verified_a = verification.Ok();
  }

  if (result.a_verified_b && result.b_verified_a) {
    result.channel_a = SecureChannel(dh_a.DeriveChannelKey(dh_b.public_value()));
    result.channel_b = SecureChannel(dh_b.DeriveChannelKey(dh_a.public_value()));
  }
  return result;
}

}  // namespace snic::mgmt
