#include "src/mgmt/supervisor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/attestation.h"
#include "src/fault/fault.h"
#include "src/mgmt/verifier.h"
#include "src/obs/span_names.h"

namespace snic::mgmt {

std::string_view NfHealthName(NfHealth health) {
  switch (health) {
    case NfHealth::kRunning:
      return "RUNNING";
    case NfHealth::kRestarting:
      return "RESTARTING";
    case NfHealth::kQuarantined:
      return "QUARANTINED";
  }
  return "UNKNOWN";
}

std::string_view CrashCauseName(CrashCause cause) {
  switch (cause) {
    case CrashCause::kGeneric:
      return "generic";
    case CrashCause::kAccelFault:
      return "accel_fault";
    case CrashCause::kDmaFault:
      return "dma_fault";
    case CrashCause::kWatchdog:
      return "watchdog";
    case CrashCause::kVnicAbuse:
      return "vnic_abuse";
  }
  return "unknown";
}

Supervisor::Supervisor(NicOs* nic_os, crypto::RsaPublicKey vendor_key,
                       SupervisorConfig config)
    : nic_os_(nic_os),
      vendor_key_(std::move(vendor_key)),
      config_(config),
      rng_(config.seed) {}

void Supervisor::AttachObs(obs::MetricRegistry* registry) {
  SNIC_OBS({
    obs_crashes_ = &registry->GetCounter("mgmt.supervisor.crashes");
    obs_restarts_ = &registry->GetCounter("mgmt.supervisor.restarts");
    obs_quarantines_ = &registry->GetCounter("mgmt.supervisor.quarantines");
    obs_downgrades_ = &registry->GetCounter("mgmt.supervisor.downgrades");
    obs_restart_queue_depth_ =
        &registry->GetGauge("mgmt.supervisor.restart_queue_depth");
  });
  (void)registry;
}

void Supervisor::AttachTraceRing(obs::TraceRing* ring) {
  SNIC_TRACE_RING({
    ring_ = ring;
    if (ring_ != nullptr) {
      ring_crash_ = ring_->Intern(obs::spans::kSupervisorCrash);
      ring_restart_ = ring_->Intern(obs::spans::kSupervisorRestart);
      ring_downgrade_ = ring_->Intern(obs::spans::kSupervisorDowngrade);
      ring_quarantine_ = ring_->Intern(obs::spans::kSupervisorQuarantine);
      ring_arg_cause_ = ring_->Intern(obs::spans::kArgCause);
    }
  });
  (void)ring;
}

void Supervisor::Emit(std::string_view event, const std::string& name,
                      const Child& child) {
  if (trace_ != nullptr) {
    trace_->AddInstant(event, now_, static_cast<uint32_t>(child.nf_id), 0,
                       {{"nf", name},
                        {"cause", std::string(CrashCauseName(child.last_cause))}});
  }
  SNIC_TRACE_RING(if (ring_ != nullptr) {
    // Event strings here are the registry constants themselves; resolve to
    // the pre-interned id by identity so the hot path never re-interns.
    uint16_t id = 0;
    if (event == obs::spans::kSupervisorCrash) {
      id = ring_crash_;
    } else if (event == obs::spans::kSupervisorRestart) {
      id = ring_restart_;
    } else if (event == obs::spans::kSupervisorDowngrade) {
      id = ring_downgrade_;
    } else if (event == obs::spans::kSupervisorQuarantine) {
      id = ring_quarantine_;
    }
    if (id != 0) {
      ring_->EmitInstant(
          id, now_, static_cast<uint32_t>(child.nf_id), /*tid=*/0, /*span=*/0,
          static_cast<uint64_t>(static_cast<uint8_t>(child.last_cause)),
          ring_arg_cause_);
    }
  });
}

Status Supervisor::LaunchChild(const std::string& name, Child& child,
                               uint64_t attempt) {
  FunctionImage launch_image = child.image;
  if (child.degraded) {
    // Graceful degradation: the function's accelerator cluster keeps
    // failing, so relaunch on the software path with no reservations.
    launch_image.accel_clusters = {0, 0, 0};
  }
  auto launched = nic_os_->NfCreate(launch_image);
  if (!launched.ok()) {
    return launched.status();
  }
  const uint64_t nf_id = launched.value();

  // Mandatory re-measurement: the hardware hash of what actually launched
  // must equal what the tenant image predicts. A NIC OS that staged the
  // wrong bytes (or a bit-flipped image) is caught here, every restart.
  const uint64_t page_bytes = nic_os_->device().memory().page_bytes();
  const crypto::Sha256Digest expected =
      ExpectedMeasurement(launch_image, page_bytes);
  auto measured = nic_os_->device().MeasurementOf(nf_id);
  if (!measured.ok() || measured.value() != expected) {
    (void)nic_os_->NfDestroy(nf_id);
    return Status(ErrorCode::kInternal,
                  "relaunch measurement mismatch for " + name);
  }

  if (config_.verify_attestation) {
    // Fresh nonce + ephemeral DH share per launch: quotes never replay.
    core::AttestationRequest request;
    request.group = config_.dh_group;
    request.nonce.resize(16);
    for (uint8_t& b : request.nonce) {
      b = static_cast<uint8_t>(rng_.NextU64());
    }
    crypto::DhParticipant nf_dh(config_.dh_group, rng_);
    request.g_x = nf_dh.public_value();
    auto quote = nic_os_->device().NfAttest(nf_id, request);
    if (!quote.ok()) {
      (void)nic_os_->NfDestroy(nf_id);
      return quote.status();
    }
    const core::QuoteVerification verdict =
        core::VerifyQuote(vendor_key_, quote.value(), request.nonce, &expected);
    // Crash-during-recovery site: a firing hit poisons this attempt's
    // attestation verdict after the real exchange ran, so the failure path
    // exercised is exactly the one a genuinely bad quote would take. The
    // attempt number lets schedules target "the Nth recovery attempt". The
    // site is keyed by the child's PREVIOUS nf id (still in child.nf_id
    // here): that is the identity schedules know, and RetargetRules keeps
    // it current across successful restarts — the fresh candidate id is
    // unknowable to a schedule.
    const bool injected_reattest_fault = SNIC_FAULT_FIRES_ATTEMPT(
        fault::sites::kSupervisorReattest, child.nf_id, attempt);
    if (!verdict.Ok() || injected_reattest_fault) {
      (void)nic_os_->NfDestroy(nf_id);
      return Status(ErrorCode::kInternal,
                    "relaunch attestation failed for " + name);
    }
    ++stats_.reattestations;
  }

  child.nf_id = nf_id;
  return OkStatus();
}

Result<uint64_t> Supervisor::Adopt(const FunctionImage& image) {
  if (children_.count(image.name) != 0) {
    return AlreadyOwned("function already supervised: " + image.name);
  }
  Child child;
  child.image = image;
  if (Status s = LaunchChild(image.name, child, /*attempt=*/0); !s.ok()) {
    return s;
  }
  child.health = NfHealth::kRunning;
  child.last_launch = now_;
  child.last_heartbeat = now_;
  const uint64_t nf_id = child.nf_id;
  children_.emplace(image.name, std::move(child));
  return nf_id;
}

void Supervisor::Heartbeat(const std::string& name) {
  auto it = children_.find(name);
  if (it == children_.end() || it->second.health != NfHealth::kRunning) {
    return;
  }
  it->second.last_heartbeat = now_;
}

uint64_t Supervisor::BackoffCycles(uint32_t consecutive_failures) {
  const uint32_t exponent =
      consecutive_failures > 0 ? consecutive_failures - 1 : 0;
  uint64_t backoff = config_.backoff_base_cycles;
  for (uint32_t i = 0; i < exponent && backoff < config_.backoff_max_cycles;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.backoff_max_cycles);
  if (config_.backoff_jitter_pct > 0) {
    const uint64_t span = backoff * config_.backoff_jitter_pct / 100;
    if (span > 0) {
      backoff += rng_.NextBounded(span + 1);
    }
  }
  return backoff;
}

void Supervisor::HandleCrash(const std::string& name, Child& child,
                             CrashCause cause) {
  ++stats_.crashes;
  SNIC_OBS(if (obs_crashes_ != nullptr) obs_crashes_->Inc());
  child.last_cause = cause;
  Emit(obs::spans::kSupervisorCrash, name, child);

  // The instance is gone as far as the tenant is concerned; reclaim its
  // resources through the trusted teardown path. Failure just means the
  // device already lost it.
  (void)nic_os_->NfDestroy(child.nf_id);

  // A crash inside the stability window extends the failure streak; a crash
  // after a long healthy run starts a new one.
  if (now_ - child.last_launch <= config_.stable_cycles) {
    ++child.consecutive_failures;
  } else {
    child.consecutive_failures = 1;
  }

  if (cause == CrashCause::kAccelFault && !child.degraded) {
    bool has_accel = false;
    for (uint32_t c : child.image.accel_clusters) {
      has_accel |= c > 0;
    }
    if (has_accel) {
      child.degraded = true;
      ++stats_.accel_downgrades;
      SNIC_OBS(if (obs_downgrades_ != nullptr) obs_downgrades_->Inc());
      Emit(obs::spans::kSupervisorDowngrade, name, child);
    }
  }

  if (child.consecutive_failures > config_.quarantine_after) {
    child.health = NfHealth::kQuarantined;
    ++stats_.quarantines;
    SNIC_OBS(if (obs_quarantines_ != nullptr) obs_quarantines_->Inc());
    Emit(obs::spans::kSupervisorQuarantine, name, child);
    return;
  }
  child.health = NfHealth::kRestarting;
  child.restart_due = now_ + BackoffCycles(child.consecutive_failures);
}

void Supervisor::ReportCrash(const std::string& name, CrashCause cause) {
  auto it = children_.find(name);
  if (it == children_.end() || it->second.health != NfHealth::kRunning) {
    return;
  }
  HandleCrash(name, it->second, cause);
}

void Supervisor::Tick(uint64_t now_cycles) {
  now_ = std::max(now_, now_cycles);

  // Watchdog pass (map order => deterministic).
  if (config_.watchdog_timeout_cycles > 0) {
    for (auto& [name, child] : children_) {
      if (child.health == NfHealth::kRunning &&
          now_ - child.last_heartbeat > config_.watchdog_timeout_cycles) {
        ++stats_.watchdog_timeouts;
        HandleCrash(name, child, CrashCause::kWatchdog);
      }
    }
  }

  // Due restarts, capped per tick. The pending queue is deterministic:
  // due children sorted by (restart_due, name), the first
  // max_concurrent_restarts of them relaunched now, the rest deferred to
  // the next tick with their deadlines untouched. A correlated burst that
  // downs N children therefore costs at most cap relaunches (measurement +
  // attestation each) per tick instead of N.
  std::vector<std::pair<uint64_t, std::string>> due;
  for (auto& [name, child] : children_) {
    if (child.health == NfHealth::kRestarting && child.restart_due <= now_) {
      due.emplace_back(child.restart_due, name);
    }
  }
  std::sort(due.begin(), due.end());
  const size_t budget =
      config_.max_concurrent_restarts == 0
          ? due.size()
          : std::min<size_t>(due.size(), config_.max_concurrent_restarts);
  restart_queue_depth_ = due.size() - budget;
  restart_queue_peak_ = std::max(restart_queue_peak_, restart_queue_depth_);
  stats_.restart_deferrals += restart_queue_depth_;
  SNIC_OBS(if (obs_restart_queue_depth_ != nullptr) {
    obs_restart_queue_depth_->Set(static_cast<double>(restart_queue_depth_));
  });
  for (size_t i = 0; i < budget; ++i) {
    const std::string& name = due[i].second;
    Child& child = children_.find(name)->second;
    const uint64_t old_id = child.nf_id;
    if (Status s = LaunchChild(name, child, child.consecutive_failures);
        !s.ok()) {
      ++stats_.failed_restarts;
      ++child.consecutive_failures;
      if (child.consecutive_failures > config_.quarantine_after) {
        child.health = NfHealth::kQuarantined;
        ++stats_.quarantines;
        SNIC_OBS(if (obs_quarantines_ != nullptr) obs_quarantines_->Inc());
        Emit(obs::spans::kSupervisorQuarantine, name, child);
      } else {
        child.restart_due = now_ + BackoffCycles(child.consecutive_failures);
      }
      continue;
    }
    child.health = NfHealth::kRunning;
    child.last_launch = now_;
    child.last_heartbeat = now_;
    ++stats_.restarts;
    SNIC_OBS(if (obs_restarts_ != nullptr) obs_restarts_->Inc());
    Emit(obs::spans::kSupervisorRestart, name, child);
    if (restart_callback_) {
      restart_callback_(name, old_id, child.nf_id);
    }
  }
}

NfHealth Supervisor::HealthOf(const std::string& name) const {
  auto it = children_.find(name);
  SNIC_CHECK(it != children_.end());
  return it->second.health;
}

Result<uint64_t> Supervisor::NfIdOf(const std::string& name) const {
  auto it = children_.find(name);
  if (it == children_.end()) {
    return NotFound("not supervised: " + name);
  }
  if (it->second.health != NfHealth::kRunning) {
    return Unavailable(name + " is " +
                       std::string(NfHealthName(it->second.health)));
  }
  return it->second.nf_id;
}

bool Supervisor::IsDegraded(const std::string& name) const {
  auto it = children_.find(name);
  return it != children_.end() && it->second.degraded;
}

uint32_t Supervisor::ConsecutiveFailures(const std::string& name) const {
  auto it = children_.find(name);
  return it == children_.end() ? 0 : it->second.consecutive_failures;
}

}  // namespace snic::mgmt
