#include "src/mgmt/nic_os.h"

#include <algorithm>

#include "src/common/units.h"

namespace snic::mgmt {

std::vector<uint8_t> FunctionImage::SerializeConfig() const {
  std::vector<uint8_t> out;
  auto push_u64 = [&out](uint64_t v) {
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  out.insert(out.end(), name.begin(), name.end());
  out.push_back(0);
  push_u64(cores);
  push_u64(memory_bytes);
  for (uint32_t c : accel_clusters) {
    push_u64(c);
  }
  push_u64(static_cast<uint64_t>(scheduler));
  // Overload policy: every knob is measured so the admission contract the
  // tenant launched with is the one attestation vouches for.
  push_u64(overload.rx_queue_capacity_frames);
  push_u64(overload.tx_queue_capacity_frames);
  push_u64(static_cast<uint64_t>(overload.drop_policy));
  push_u64(overload.admission_burst_frames);
  push_u64(overload.admission_frames_per_refill);
  push_u64(overload.admission_refill_cycles);
  push_u64(overload.deadline_cycles);
  for (const net::SwitchRule& rule : switch_rules) {
    const std::string text = rule.ToString();
    out.insert(out.end(), text.begin(), text.end());
    out.push_back('\n');
  }
  return out;
}

Result<uint64_t> NicOs::PickCores(uint32_t count) const {
  uint64_t mask = 0;
  uint32_t found = 0;
  for (uint32_t c = 1; c < device_->config().num_cores && found < count; ++c) {
    // Probe by attempting to find unbound cores; CoresOf covers live NFs.
    bool taken = false;
    for (uint64_t id : device_->LiveNfIds()) {
      const auto cores = device_->CoresOf(id);
      if (cores.ok() && (cores.value() & (1ull << c))) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      mask |= 1ull << c;
      ++found;
    }
  }
  if (found < count) {
    return ResourceExhausted("not enough free programmable cores");
  }
  return mask;
}

void NicOs::AttachObs(obs::MetricRegistry* registry) {
  SNIC_OBS({
    obs_create_ok_ = &registry->GetCounter("mgmt.nf_create.ok");
    obs_create_failures_ = &registry->GetCounter("mgmt.nf_create.failures");
    obs_destroy_ok_ = &registry->GetCounter("mgmt.nf_destroy.ok");
    obs_destroy_failures_ = &registry->GetCounter("mgmt.nf_destroy.failures");
  });
  (void)registry;
}

Status NicOs::NfDestroy(uint64_t nf_id) {
  Status status = device_->NfTeardown(nf_id);
  SNIC_OBS({
    obs::Counter* c = status.ok() ? obs_destroy_ok_ : obs_destroy_failures_;
    if (c != nullptr) {
      c->Inc();
    }
  });
  return status;
}

Result<uint64_t> NicOs::NfCreate(const FunctionImage& image) {
  auto count_result = [this](bool ok) {
    SNIC_OBS({
      obs::Counter* c = ok ? obs_create_ok_ : obs_create_failures_;
      if (c != nullptr) {
        c->Inc();
      }
    });
    (void)this;
    (void)ok;
  };
  if (image.code_and_data.empty()) {
    count_result(false);
    return InvalidArgument("function image has no code");
  }
  const uint64_t page_bytes = device_->memory().page_bytes();
  const uint64_t image_pages = CeilDiv(image.code_and_data.size(), page_bytes);
  const uint64_t total_pages = CeilDiv(image.memory_bytes, page_bytes);
  const uint64_t heap_pages =
      total_pages > image_pages ? total_pages - image_pages : 0;

  auto cores = PickCores(image.cores);
  if (!cores.ok()) {
    count_result(false);
    return cores.status();
  }

  // Stage the image into NIC-OS-owned pages (models the DMA pull from host
  // RAM described in §4.1).
  auto staged = device_->memory().AllocatePages(image_pages, core::kPageNicOs);
  if (!staged.ok()) {
    count_result(false);
    return staged.status();
  }
  size_t written = 0;
  for (uint64_t page : staged.value()) {
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(
        image.code_and_data.size() - written, page_bytes));
    device_->memory().Write(
        page * page_bytes,
        std::span<const uint8_t>(image.code_and_data.data() + written, chunk));
    written += chunk;
    if (written >= image.code_and_data.size()) {
      break;
    }
  }

  core::NfLaunchArgs args;
  args.core_mask = cores.value();
  args.image_pages = staged.value();
  args.heap_pages = heap_pages;
  args.config_blob = image.SerializeConfig();
  args.vpp.rules = image.switch_rules;
  args.vpp.scheduler = image.scheduler;
  args.vpp.overload = image.overload;
  args.accel_clusters = image.accel_clusters;

  auto launched = device_->NfLaunch(args);
  if (!launched.ok()) {
    // Launch failed: return the staged pages to the free pool.
    for (uint64_t page : staged.value()) {
      device_->memory().SetOwner(page, core::kPageFree);
    }
    count_result(false);
    return launched.status();
  }
  count_result(true);
  return launched;
}

}  // namespace snic::mgmt
