// NF supervisor: crash detection, deterministic restart, quarantine
// (docs/ROBUSTNESS.md).
//
// The NIC OS can destroy and relaunch functions but cannot observe or forge
// their state — so recovery must go through the same trusted instructions as
// a first launch. The Supervisor leans on that: every restart re-runs
// NfCreate, re-checks the launch measurement against the tenant image
// (mgmt::ExpectedMeasurement) and re-verifies a fresh attestation quote. A
// restarted function is never trusted on the supervisor's say-so; the
// hardware measurement chain vouches for it each time.
//
// Time is the scenario's simulated cycle clock (the same clock the fault
// plane advances): the driver calls Tick(now) and the supervisor schedules
// watchdog expiries and backoff deadlines against it. All jitter comes from
// a seeded Rng, so a given (seed, crash sequence) always produces the same
// restart/quarantine schedule — chaos runs replay bit-for-bit.
//
// Threading: a Supervisor is SINGLE-OWNER — it lives on its scenario's
// thread beside the FaultPlane and the scenario's TraceLog, and carries no
// mutex (a lock here would serialize independent scenarios for nothing).
// The contract is checked dynamically by the TSan CI job; the mutex-guarded
// classes are covered statically by clang -Wthread-safety
// (docs/STATIC_ANALYSIS.md).

#ifndef SNIC_MGMT_SUPERVISOR_H_
#define SNIC_MGMT_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/diffie_hellman.h"
#include "src/crypto/keys.h"
#include "src/mgmt/nic_os.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/obs/trace_ring.h"

namespace snic::mgmt {

enum class NfHealth : uint8_t {
  kRunning = 0,
  kRestarting = 1,  // crashed; relaunch scheduled at a backoff deadline
  kQuarantined = 2, // exceeded the consecutive-failure budget; needs operator
};

std::string_view NfHealthName(NfHealth health);

// Why a child went down. The cause picks the recovery flavour: an
// accelerator-cluster fault downgrades the function to its software path
// (accelerator reservations stripped on relaunch).
enum class CrashCause : uint8_t {
  kGeneric = 0,
  kAccelFault = 1,
  kDmaFault = 2,
  kWatchdog = 3,
  // The vNIC front-end flagged the child's VF as abusive (doorbell flood,
  // CQ squatting, malformed descriptors, quota churn — src/core/vnic).
  kVnicAbuse = 4,
};

std::string_view CrashCauseName(CrashCause cause);

struct SupervisorConfig {
  uint64_t seed = 0;  // jitter stream; part of the determinism contract

  // A running child that has not heartbeated for this many cycles is
  // declared hung and crash-handled with CrashCause::kWatchdog. 0 disables
  // the watchdog.
  uint64_t watchdog_timeout_cycles = 10000;

  // Restart backoff: base * 2^(consecutive_failures - 1), clamped to max,
  // plus a deterministic jitter drawn uniformly from
  // [0, backoff * jitter_pct / 100].
  uint64_t backoff_base_cycles = 1000;
  uint64_t backoff_max_cycles = 64000;
  uint32_t backoff_jitter_pct = 25;

  // Quarantine after this many consecutive failures. A crash counts as
  // consecutive when it lands within stable_cycles of the previous
  // (re)launch; surviving longer resets the streak.
  uint32_t quarantine_after = 3;
  uint64_t stable_cycles = 5000;

  // Every (re)launch re-checks the hardware measurement; with this set it
  // also runs the full attestation exchange against the vendor key.
  bool verify_attestation = true;
  crypto::DhGroup dh_group = crypto::SmallTestGroup();

  // Restart-storm guard: at most this many relaunch attempts per Tick
  // (0 = unlimited). When a correlated fault burst downs many children at
  // once, the due set beyond the cap waits in a deterministic pending
  // queue ordered by (restart_due, name) and drains cap-per-tick, so
  // recovery cost per tick is bounded no matter how wide the burst. The
  // queue depth is published as mgmt.supervisor.restart_queue_depth.
  uint32_t max_concurrent_restarts = 0;
};

struct SupervisorStats {
  uint64_t crashes = 0;            // ReportCrash + watchdog expiries
  uint64_t watchdog_timeouts = 0;
  uint64_t restarts = 0;           // successful relaunches
  uint64_t failed_restarts = 0;    // relaunch attempts that errored
  uint64_t quarantines = 0;
  uint64_t accel_downgrades = 0;   // children demoted to the software path
  uint64_t reattestations = 0;     // fresh quotes verified on relaunch
  uint64_t restart_deferrals = 0;  // due relaunches held back by the cap
};

class Supervisor {
 public:
  // Fired after a successful relaunch, before the child is marked running.
  // Drivers use it to re-point per-NF plumbing (DMA banks, fault-plane
  // rules, NF objects) at the new id.
  using RestartCallback = std::function<void(
      const std::string& name, uint64_t old_nf_id, uint64_t new_nf_id)>;

  Supervisor(NicOs* nic_os, crypto::RsaPublicKey vendor_key,
             SupervisorConfig config);

  // Launches `image` under supervision (measurement + attestation checked
  // exactly like a restart). Returns the initial nf id.
  Result<uint64_t> Adopt(const FunctionImage& image);

  // Liveness signal from the child, stamped with the last Tick clock.
  void Heartbeat(const std::string& name);

  // The driver observed `name` crash (accelerator fault, DMA error, ...).
  // Tears the instance down and schedules recovery or quarantine.
  void ReportCrash(const std::string& name, CrashCause cause);

  // Advances the supervisor clock: expires watchdogs, then attempts every
  // relaunch whose backoff deadline has passed.
  void Tick(uint64_t now_cycles);

  NfHealth HealthOf(const std::string& name) const;
  // Current nf id of a running child (error while restarting/quarantined).
  Result<uint64_t> NfIdOf(const std::string& name) const;
  // True once the child has been demoted to its software path.
  bool IsDegraded(const std::string& name) const;
  uint32_t ConsecutiveFailures(const std::string& name) const;

  const SupervisorStats& stats() const { return stats_; }
  uint64_t now() const { return now_; }

  // Pending-restart queue introspection (satellite of the restart cap):
  // depth after the most recent Tick, and the high-water mark.
  uint64_t restart_queue_depth() const { return restart_queue_depth_; }
  uint64_t restart_queue_peak() const { return restart_queue_peak_; }

  void SetRestartCallback(RestartCallback callback) {
    restart_callback_ = std::move(callback);
  }

  // Publishes `mgmt.supervisor.*` counters / emits instant events on the
  // child's trace lane for crash, restart and quarantine transitions.
  void AttachObs(obs::MetricRegistry* registry);
  void AttachTrace(obs::TraceLog* trace) { trace_ = trace; }

  // Binary-ring flavour of AttachTrace: crash/restart/downgrade/quarantine
  // land as fixed-size supervisor.* span instants on the crashed child's
  // lane (arg = crash-cause ordinal), so forensics can correlate recovery
  // with the victim's packet spans without parsing JSON.
  void AttachTraceRing(obs::TraceRing* ring);

 private:
  struct Child {
    FunctionImage image;
    uint64_t nf_id = 0;
    NfHealth health = NfHealth::kRunning;
    bool degraded = false;
    uint64_t last_heartbeat = 0;
    uint64_t last_launch = 0;       // cycle of the most recent (re)launch
    uint64_t restart_due = 0;       // valid while kRestarting
    uint32_t consecutive_failures = 0;
    CrashCause last_cause = CrashCause::kGeneric;
  };

  // NfCreate (accelerators stripped when degraded) + measurement check +
  // optional attestation. On success the child's nf_id is updated.
  // `attempt` is the 1-based recovery-attempt number (0 for the initial
  // Adopt launch); it is forwarded to the supervisor.reattest fault site so
  // schedules can fail exactly the Nth re-attestation.
  Status LaunchChild(const std::string& name, Child& child, uint64_t attempt);
  // Shared crash path for ReportCrash and watchdog expiry.
  void HandleCrash(const std::string& name, Child& child, CrashCause cause);
  uint64_t BackoffCycles(uint32_t consecutive_failures);
  void Emit(std::string_view event, const std::string& name,
            const Child& child);

  NicOs* nic_os_;
  crypto::RsaPublicKey vendor_key_;
  SupervisorConfig config_;
  Rng rng_;
  uint64_t now_ = 0;
  SupervisorStats stats_;
  uint64_t restart_queue_depth_ = 0;
  uint64_t restart_queue_peak_ = 0;
  std::map<std::string, Child> children_;  // ordered: deterministic scans
  RestartCallback restart_callback_;
  obs::TraceLog* trace_ = nullptr;
  obs::TraceRing* ring_ = nullptr;
  uint16_t ring_crash_ = 0;
  uint16_t ring_restart_ = 0;
  uint16_t ring_downgrade_ = 0;
  uint16_t ring_quarantine_ = 0;
  uint16_t ring_arg_cause_ = 0;
  obs::Counter* obs_crashes_ = nullptr;
  obs::Counter* obs_restarts_ = nullptr;
  obs::Counter* obs_quarantines_ = nullptr;
  obs::Counter* obs_downgrades_ = nullptr;
  obs::Gauge* obs_restart_queue_depth_ = nullptr;
};

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_SUPERVISOR_H_
