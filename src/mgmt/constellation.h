// Secure constellations (§4.7, Fig. 4b).
//
// A tenant stitches together S-NIC functions and host-level enclaves into a
// constellation of mutually attested computations. Each party holds trusted
// hardware that can produce signed quotes; pairwise attestation yields a
// shared symmetric key; the key seals traffic crossing the (operator-
// observable) NIC/host bus and datacenter network.
//
// Enclaves (SGX/TrustZone) are modeled with the same root-of-trust
// machinery as the NIC: a platform vendor authority endorses per-device
// keys. The paper assumes this symmetry ("if P runs atop trusted hardware
// as well ... F can now ask P to attest to F").

#ifndef SNIC_MGMT_CONSTELLATION_H_
#define SNIC_MGMT_CONSTELLATION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/attestation.h"
#include "src/core/snic_device.h"
#include "src/crypto/diffie_hellman.h"
#include "src/crypto/keys.h"

namespace snic::mgmt {

// Anything that can respond to an attestation challenge.
class AttestedParty {
 public:
  virtual ~AttestedParty() = default;

  virtual const std::string& name() const = 0;
  // Produces a quote binding `g_x` (this party's DH contribution) and the
  // verifier's nonce to the party's measured state.
  virtual Result<core::AttestationQuote> Attest(
      const core::AttestationRequest& request) = 0;
  // The vendor key a peer should validate this party's chain against.
  virtual const crypto::RsaPublicKey& vendor_key() const = 0;
  // The measurement a peer should expect (distributed out of band).
  virtual crypto::Sha256Digest expected_measurement() const = 0;
};

// An S-NIC network function as a constellation party.
class SnicFunctionParty : public AttestedParty {
 public:
  SnicFunctionParty(std::string name, core::SnicDevice* device, uint64_t nf_id,
                    const crypto::RsaPublicKey& vendor_key);

  const std::string& name() const override { return name_; }
  Result<core::AttestationQuote> Attest(
      const core::AttestationRequest& request) override;
  const crypto::RsaPublicKey& vendor_key() const override {
    return vendor_key_;
  }
  crypto::Sha256Digest expected_measurement() const override;

 private:
  std::string name_;
  core::SnicDevice* device_;
  uint64_t nf_id_;
  crypto::RsaPublicKey vendor_key_;
};

// A host-level enclave (SGX-like) as a constellation party.
class EnclaveParty : public AttestedParty {
 public:
  // `code` is the enclave's measured initial state.
  EnclaveParty(std::string name, std::vector<uint8_t> code,
               const crypto::VendorAuthority& platform_vendor,
               size_t rsa_modulus_bits, Rng& rng);

  const std::string& name() const override { return name_; }
  Result<core::AttestationQuote> Attest(
      const core::AttestationRequest& request) override;
  const crypto::RsaPublicKey& vendor_key() const override {
    return vendor_key_;
  }
  crypto::Sha256Digest expected_measurement() const override {
    return measurement_;
  }

 private:
  std::string name_;
  crypto::Sha256Digest measurement_;
  crypto::NicRootOfTrust root_of_trust_;
  crypto::RsaPublicKey vendor_key_;
};

// An established, keyed channel. Seal/Open provide confidentiality (HMAC
// counter keystream) plus integrity (HMAC tag) with a sequence number for
// replay protection.
class SecureChannel {
 public:
  explicit SecureChannel(const crypto::Sha256Digest& key) : key_(key) {}

  std::vector<uint8_t> Seal(std::span<const uint8_t> plaintext, uint64_t seq) const;
  // Returns the plaintext, or an error on tag mismatch.
  Result<std::vector<uint8_t>> Open(std::span<const uint8_t> sealed,
                                    uint64_t seq) const;

  const crypto::Sha256Digest& key() const { return key_; }

 private:
  crypto::Sha256Digest key_;
};

// Outcome of pairwise attestation between two parties.
struct PairwiseResult {
  bool a_verified_b = false;
  bool b_verified_a = false;
  std::optional<SecureChannel> channel_a;  // A's end
  std::optional<SecureChannel> channel_b;  // B's end (same key when honest)

  bool Ok() const {
    return a_verified_b && b_verified_a && channel_a.has_value() &&
           channel_b.has_value();
  }
};

// Runs the full mutual attestation + Diffie-Hellman exchange between two
// parties. `rng` supplies nonces and ephemeral exponents.
PairwiseResult EstablishChannel(AttestedParty& a, AttestedParty& b,
                                const crypto::DhGroup& group, Rng& rng);

}  // namespace snic::mgmt

#endif  // SNIC_MGMT_CONSTELLATION_H_
