#include "src/net/parser.h"

#include <cstdio>
#include <cstring>

namespace snic::net {
namespace {

uint16_t ReadU16(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint16_t>((b[off] << 8) | b[off + 1]);
}

uint32_t ReadU32(std::span<const uint8_t> b, size_t off) {
  return (static_cast<uint32_t>(b[off]) << 24) |
         (static_cast<uint32_t>(b[off + 1]) << 16) |
         (static_cast<uint32_t>(b[off + 2]) << 8) |
         static_cast<uint32_t>(b[off + 3]);
}

void WriteU16(std::vector<uint8_t>& b, size_t off, uint16_t v) {
  b[off] = static_cast<uint8_t>(v >> 8);
  b[off + 1] = static_cast<uint8_t>(v);
}

void WriteU32(std::vector<uint8_t>& b, size_t off, uint32_t v) {
  b[off] = static_cast<uint8_t>(v >> 24);
  b[off + 1] = static_cast<uint8_t>(v >> 16);
  b[off + 2] = static_cast<uint8_t>(v >> 8);
  b[off + 3] = static_cast<uint8_t>(v);
}

}  // namespace

std::string MacToString(const MacAddress& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

uint32_t Ipv4FromString(const char* dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  const int n = std::sscanf(dotted, "%u.%u.%u.%u", &a, &b, &c, &d);
  SNIC_CHECK(n == 4 && a < 256 && b < 256 && c < 256 && d < 256);
  return (a << 24) | (b << 16) | (c << 8) | d;
}

std::string FiveTuple::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u proto=%u",
                Ipv4ToString(src_ip).c_str(), src_port,
                Ipv4ToString(dst_ip).c_str(), dst_port, protocol);
  return buf;
}

FiveTuple ParsedPacket::Tuple() const {
  FiveTuple t;
  t.src_ip = ip.src_addr;
  t.dst_ip = ip.dst_addr;
  t.protocol = ip.protocol;
  if (tcp.has_value()) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp.has_value()) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

Result<ParsedPacket> Parse(std::span<const uint8_t> frame) {
  if (frame.size() < kEthernetHeaderLen + kIpv4MinHeaderLen) {
    return InvalidArgument("frame truncated before IPv4 header");
  }
  ParsedPacket out;
  std::memcpy(out.eth.dst.data(), frame.data(), 6);
  std::memcpy(out.eth.src.data(), frame.data() + 6, 6);
  out.eth.ether_type = ReadU16(frame, 12);
  if (out.eth.ether_type != static_cast<uint16_t>(EtherType::kIpv4)) {
    return InvalidArgument("unsupported ethertype");
  }

  const size_t l3 = kEthernetHeaderLen;
  out.l3_offset = l3;
  out.ip.version_ihl = frame[l3];
  if ((out.ip.version_ihl >> 4) != 4) {
    return InvalidArgument("not IPv4");
  }
  const size_t ihl = out.ip.HeaderLen();
  if (ihl < kIpv4MinHeaderLen || frame.size() < l3 + ihl) {
    return InvalidArgument("bad IHL");
  }
  out.ip.dscp_ecn = frame[l3 + 1];
  out.ip.total_length = ReadU16(frame, l3 + 2);
  out.ip.identification = ReadU16(frame, l3 + 4);
  out.ip.flags_fragment = ReadU16(frame, l3 + 6);
  out.ip.ttl = frame[l3 + 8];
  out.ip.protocol = frame[l3 + 9];
  out.ip.checksum = ReadU16(frame, l3 + 10);
  out.ip.src_addr = ReadU32(frame, l3 + 12);
  out.ip.dst_addr = ReadU32(frame, l3 + 16);

  const size_t l4 = l3 + ihl;
  out.l4_offset = l4;
  if (out.ip.protocol == static_cast<uint8_t>(IpProto::kTcp)) {
    if (frame.size() < l4 + kTcpMinHeaderLen) {
      return InvalidArgument("frame truncated before TCP header");
    }
    TcpHeader tcp;
    tcp.src_port = ReadU16(frame, l4);
    tcp.dst_port = ReadU16(frame, l4 + 2);
    tcp.seq = ReadU32(frame, l4 + 4);
    tcp.ack = ReadU32(frame, l4 + 8);
    tcp.data_offset_reserved = frame[l4 + 12];
    tcp.flags = frame[l4 + 13];
    tcp.window = ReadU16(frame, l4 + 14);
    tcp.checksum = ReadU16(frame, l4 + 16);
    tcp.urgent = ReadU16(frame, l4 + 18);
    const size_t tcp_len = tcp.HeaderLen();
    if (tcp_len < kTcpMinHeaderLen || frame.size() < l4 + tcp_len) {
      return InvalidArgument("bad TCP data offset");
    }
    out.payload_offset = l4 + tcp_len;
    out.tcp = tcp;
  } else if (out.ip.protocol == static_cast<uint8_t>(IpProto::kUdp)) {
    if (frame.size() < l4 + kUdpHeaderLen) {
      return InvalidArgument("frame truncated before UDP header");
    }
    UdpHeader udp;
    udp.src_port = ReadU16(frame, l4);
    udp.dst_port = ReadU16(frame, l4 + 2);
    udp.length = ReadU16(frame, l4 + 4);
    udp.checksum = ReadU16(frame, l4 + 6);
    out.payload_offset = l4 + kUdpHeaderLen;
    out.udp = udp;
    if (udp.dst_port == kVxlanUdpPort &&
        frame.size() >= out.payload_offset + kVxlanHeaderLen) {
      VxlanHeader vx;
      vx.flags = frame[out.payload_offset];
      // VNI occupies bytes 4-6 of the VXLAN header.
      vx.vni = ReadU32(frame, out.payload_offset + 4) >> 8;
      out.vxlan = vx;
    }
  } else {
    out.payload_offset = l4;
  }
  out.payload_len = frame.size() - out.payload_offset;
  return out;
}

Result<ParsedPacket> ParseStrict(std::span<const uint8_t> frame) {
  Result<ParsedPacket> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed;
  }
  // Summing the whole header including the stored checksum field must give
  // the ones-complement zero (0x0000 after the final inversion).
  const size_t ihl = parsed.value().ip.HeaderLen();
  const uint16_t sum =
      InternetChecksum(frame.subspan(parsed.value().l3_offset, ihl));
  if (sum != 0) {
    return InvalidArgument("bad IPv4 header checksum");
  }
  return parsed;
}

uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

void UpdateIpv4Checksum(std::span<uint8_t> frame, size_t l3_offset) {
  SNIC_CHECK(frame.size() >= l3_offset + kIpv4MinHeaderLen);
  const size_t ihl = static_cast<size_t>(frame[l3_offset] & 0xf) * 4;
  frame[l3_offset + 10] = 0;
  frame[l3_offset + 11] = 0;
  const uint16_t sum = InternetChecksum(frame.subspan(l3_offset, ihl));
  frame[l3_offset + 10] = static_cast<uint8_t>(sum >> 8);
  frame[l3_offset + 11] = static_cast<uint8_t>(sum);
}

PacketBuilder::PacketBuilder() {
  src_mac_ = {0x02, 0, 0, 0, 0, 0x01};
  dst_mac_ = {0x02, 0, 0, 0, 0, 0x02};
  tuple_.src_ip = Ipv4FromString("10.0.0.1");
  tuple_.dst_ip = Ipv4FromString("10.0.0.2");
  tuple_.src_port = 10000;
  tuple_.dst_port = 80;
  tuple_.protocol = static_cast<uint8_t>(IpProto::kTcp);
}

PacketBuilder& PacketBuilder::SetMacs(const MacAddress& src,
                                      const MacAddress& dst) {
  src_mac_ = src;
  dst_mac_ = dst;
  return *this;
}

PacketBuilder& PacketBuilder::SetTuple(const FiveTuple& tuple) {
  tuple_ = tuple;
  return *this;
}

PacketBuilder& PacketBuilder::SetTcpFlags(uint8_t flags) {
  tcp_flags_ = flags;
  return *this;
}

PacketBuilder& PacketBuilder::SetTtl(uint8_t ttl) {
  ttl_ = ttl;
  return *this;
}

PacketBuilder& PacketBuilder::SetPayload(std::span<const uint8_t> payload) {
  payload_.assign(payload.begin(), payload.end());
  return *this;
}

PacketBuilder& PacketBuilder::SetFrameLen(size_t frame_len) {
  frame_len_ = frame_len;
  return *this;
}

std::vector<uint8_t> PacketBuilder::BuildBytes() const {
  const bool is_tcp = tuple_.protocol == static_cast<uint8_t>(IpProto::kTcp);
  const size_t l4_len = is_tcp ? kTcpMinHeaderLen : kUdpHeaderLen;
  const size_t header_len = kEthernetHeaderLen + kIpv4MinHeaderLen + l4_len;

  std::vector<uint8_t> payload = payload_;
  if (frame_len_ != 0) {
    SNIC_CHECK(frame_len_ >= header_len);
    payload.resize(frame_len_ - header_len, 0);
  }

  std::vector<uint8_t> b(header_len + payload.size(), 0);
  std::memcpy(b.data(), dst_mac_.data(), 6);
  std::memcpy(b.data() + 6, src_mac_.data(), 6);
  WriteU16(b, 12, static_cast<uint16_t>(EtherType::kIpv4));

  const size_t l3 = kEthernetHeaderLen;
  b[l3] = 0x45;  // version 4, IHL 5
  WriteU16(b, l3 + 2, static_cast<uint16_t>(b.size() - l3));
  b[l3 + 8] = ttl_;
  b[l3 + 9] = tuple_.protocol;
  WriteU32(b, l3 + 12, tuple_.src_ip);
  WriteU32(b, l3 + 16, tuple_.dst_ip);

  const size_t l4 = l3 + kIpv4MinHeaderLen;
  WriteU16(b, l4, tuple_.src_port);
  WriteU16(b, l4 + 2, tuple_.dst_port);
  if (is_tcp) {
    b[l4 + 12] = 0x50;  // data offset 5 words
    b[l4 + 13] = tcp_flags_;
    WriteU16(b, l4 + 14, 0xffff);  // window
  } else {
    WriteU16(b, l4 + 4, static_cast<uint16_t>(kUdpHeaderLen + payload.size()));
  }
  if (!payload.empty()) {
    std::memcpy(b.data() + header_len, payload.data(), payload.size());
  }
  UpdateIpv4Checksum(b, l3);
  return b;
}

Packet PacketBuilder::Build() const { return Packet(BuildBytes()); }

Packet PacketBuilder::BuildVxlan(uint32_t vni, const FiveTuple& outer) const {
  const std::vector<uint8_t> inner = BuildBytes();
  const size_t outer_header =
      kEthernetHeaderLen + kIpv4MinHeaderLen + kUdpHeaderLen + kVxlanHeaderLen;
  std::vector<uint8_t> b(outer_header + inner.size(), 0);

  std::memcpy(b.data(), dst_mac_.data(), 6);
  std::memcpy(b.data() + 6, src_mac_.data(), 6);
  WriteU16(b, 12, static_cast<uint16_t>(EtherType::kIpv4));

  const size_t l3 = kEthernetHeaderLen;
  b[l3] = 0x45;
  WriteU16(b, l3 + 2, static_cast<uint16_t>(b.size() - l3));
  b[l3 + 8] = 64;
  b[l3 + 9] = static_cast<uint8_t>(IpProto::kUdp);
  WriteU32(b, l3 + 12, outer.src_ip);
  WriteU32(b, l3 + 16, outer.dst_ip);

  const size_t l4 = l3 + kIpv4MinHeaderLen;
  WriteU16(b, l4, outer.src_port);
  WriteU16(b, l4 + 2, kVxlanUdpPort);
  WriteU16(b, l4 + 4,
           static_cast<uint16_t>(b.size() - l4));

  const size_t vx = l4 + kUdpHeaderLen;
  b[vx] = 0x08;  // VNI valid
  b[vx + 4] = static_cast<uint8_t>(vni >> 16);
  b[vx + 5] = static_cast<uint8_t>(vni >> 8);
  b[vx + 6] = static_cast<uint8_t>(vni);

  std::memcpy(b.data() + outer_header, inner.data(), inner.size());
  UpdateIpv4Checksum(b, l3);
  return Packet(std::move(b));
}

}  // namespace snic::net
