// The connection 5-tuple: the unit of flow identity throughout the system.
// Switching rules (§3.1), NAT translations, firewall caches, and the Monitor
// NF all key on this structure.

#ifndef SNIC_NET_FIVE_TUPLE_H_
#define SNIC_NET_FIVE_TUPLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace snic::net {

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  // Direction-reversed tuple (for return traffic through a NAT).
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  std::string ToString() const;
};

// 64-bit mix of the tuple fields (splittable into bucket indices). Stable
// across runs — the trace generator and NF caches both rely on determinism.
struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    };
    mix((static_cast<uint64_t>(t.src_ip) << 32) | t.dst_ip);
    mix((static_cast<uint64_t>(t.src_port) << 32) |
        (static_cast<uint64_t>(t.dst_port) << 8) | t.protocol);
    return static_cast<size_t>(h);
  }
};

}  // namespace snic::net

#endif  // SNIC_NET_FIVE_TUPLE_H_
