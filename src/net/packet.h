// Packet buffer: the flat byte representation of a frame plus receive
// metadata. The packet input module copies these into a function's private
// RAM; NFs read and mutate the bytes in place.

#ifndef SNIC_NET_PACKET_H_
#define SNIC_NET_PACKET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace snic::net {

inline constexpr size_t kMaxStandardFrame = 1514;  // 1.5 KB Ethernet frame
inline constexpr size_t kMaxJumboFrame = 9014;     // 9 KB jumbo frame

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::span<uint8_t> mutable_bytes() { return bytes_; }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  // Arrival timestamp in nanoseconds since trace start (set by the trace
  // generator / packet input module).
  uint64_t arrival_ns() const { return arrival_ns_; }
  void set_arrival_ns(uint64_t ns) { arrival_ns_ = ns; }

  // Flow rank within the generating trace (used by experiment bookkeeping;
  // NFs never read this — they parse the wire bytes).
  uint64_t flow_rank() const { return flow_rank_; }
  void set_flow_rank(uint64_t r) { flow_rank_ = r; }

  // Causal span id minted at VPP ingress (0 = untraced); rides the frame
  // across queues, chain hops and the echo path so the binary trace can
  // reconstruct one packet's life across layers (docs/OBSERVABILITY.md
  // "Binary tracing & spans"). NFs never read this.
  uint64_t span_id() const { return span_id_; }
  void set_span_id(uint64_t id) { span_id_ = id; }

  void Resize(size_t n) { bytes_.resize(n); }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t arrival_ns_ = 0;
  uint64_t flow_rank_ = 0;
  uint64_t span_id_ = 0;
};

}  // namespace snic::net

#endif  // SNIC_NET_PACKET_H_
