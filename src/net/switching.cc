#include "src/net/switching.h"

#include <algorithm>

namespace snic::net {

bool SwitchRule::Matches(const ParsedPacket& pkt) const {
  const FiveTuple tuple = pkt.Tuple();
  if (src_ip.has_value() && !src_ip->Matches(tuple.src_ip)) {
    return false;
  }
  if (dst_ip.has_value() && !dst_ip->Matches(tuple.dst_ip)) {
    return false;
  }
  if (src_port.has_value() && *src_port != tuple.src_port) {
    return false;
  }
  if (dst_port.has_value() && *dst_port != tuple.dst_port) {
    return false;
  }
  if (protocol.has_value() && *protocol != tuple.protocol) {
    return false;
  }
  if (dst_mac.has_value() && *dst_mac != pkt.eth.dst) {
    return false;
  }
  if (vni.has_value()) {
    if (!pkt.vxlan.has_value() || !pkt.vxlan->VniValid() ||
        pkt.vxlan->vni != *vni) {
      return false;
    }
  }
  return true;
}

std::string SwitchRule::ToString() const {
  std::string out;
  auto field = [&out](const std::string& name, const std::string& value) {
    if (!out.empty()) {
      out += " ";
    }
    out += name + "=" + value;
  };
  if (src_ip.has_value()) {
    field("src", Ipv4ToString(src_ip->addr) + "/" +
                     std::to_string(src_ip->prefix_len));
  }
  if (dst_ip.has_value()) {
    field("dst", Ipv4ToString(dst_ip->addr) + "/" +
                     std::to_string(dst_ip->prefix_len));
  }
  if (src_port.has_value()) {
    field("sport", std::to_string(*src_port));
  }
  if (dst_port.has_value()) {
    field("dport", std::to_string(*dst_port));
  }
  if (protocol.has_value()) {
    field("proto", std::to_string(*protocol));
  }
  if (dst_mac.has_value()) {
    field("dmac", MacToString(*dst_mac));
  }
  if (vni.has_value()) {
    field("vni", std::to_string(*vni));
  }
  if (out.empty()) {
    out = "<any>";
  }
  return out;
}

void SwitchRuleTable::Add(SwitchRule rule, uint32_t destination) {
  entries_.push_back(Entry{std::move(rule), destination});
}

std::optional<uint32_t> SwitchRuleTable::Lookup(const ParsedPacket& pkt) const {
  for (const Entry& e : entries_) {
    if (e.rule.Matches(pkt)) {
      return e.destination;
    }
  }
  return std::nullopt;
}

void SwitchRuleTable::RemoveDestination(uint32_t destination) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [destination](const Entry& e) {
                                  return e.destination == destination;
                                }),
                 entries_.end());
}

size_t SwitchRuleTable::MemoryBytes() const {
  return entries_.size() * sizeof(Entry);
}

}  // namespace snic::net
