// Wire-format protocol headers: Ethernet, IPv4, TCP, UDP, VXLAN.
//
// Packets inside the simulated NIC are flat byte buffers exactly as they
// would appear on the wire; every NF and accelerator parses these structures
// through the helpers in parser.h. Multi-byte fields are big-endian on the
// wire, and the accessors below convert to host order.

#ifndef SNIC_NET_HEADERS_H_
#define SNIC_NET_HEADERS_H_

#include <array>
#include <cstdint>
#include <string>

namespace snic::net {

using MacAddress = std::array<uint8_t, 6>;

// "aa:bb:cc:dd:ee:ff"
std::string MacToString(const MacAddress& mac);

// "1.2.3.4" from a host-order IPv4 address.
std::string Ipv4ToString(uint32_t addr);

// Parses "1.2.3.4"; aborts on malformed input (literals only).
uint32_t Ipv4FromString(const char* dotted);

enum class EtherType : uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
};

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

inline constexpr size_t kEthernetHeaderLen = 14;
inline constexpr size_t kIpv4MinHeaderLen = 20;
inline constexpr size_t kTcpMinHeaderLen = 20;
inline constexpr size_t kUdpHeaderLen = 8;
inline constexpr size_t kVxlanHeaderLen = 8;
inline constexpr uint16_t kVxlanUdpPort = 4789;

// Parsed (host-order) header views. These are plain value structs produced
// by the parser, not overlays on the wire bytes.
struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  uint16_t ether_type;
};

struct Ipv4Header {
  uint8_t version_ihl;     // version (4 bits) + header length in words
  uint8_t dscp_ecn;
  uint16_t total_length;   // bytes, including this header
  uint16_t identification;
  uint16_t flags_fragment;
  uint8_t ttl;
  uint8_t protocol;
  uint16_t checksum;
  uint32_t src_addr;
  uint32_t dst_addr;

  size_t HeaderLen() const { return static_cast<size_t>(version_ihl & 0xf) * 4; }
};

struct TcpHeader {
  uint16_t src_port;
  uint16_t dst_port;
  uint32_t seq;
  uint32_t ack;
  uint8_t data_offset_reserved;  // upper 4 bits: header length in words
  uint8_t flags;                 // FIN/SYN/RST/PSH/ACK/URG
  uint16_t window;
  uint16_t checksum;
  uint16_t urgent;

  size_t HeaderLen() const {
    return static_cast<size_t>(data_offset_reserved >> 4) * 4;
  }
  bool Syn() const { return flags & 0x02; }
  bool Ack() const { return flags & 0x10; }
  bool Fin() const { return flags & 0x01; }
  bool Rst() const { return flags & 0x04; }
};

struct UdpHeader {
  uint16_t src_port;
  uint16_t dst_port;
  uint16_t length;
  uint16_t checksum;
};

// VXLAN (RFC 7348): flags (bit 3 = valid VNI), 24-bit VNI.
struct VxlanHeader {
  uint8_t flags;
  uint32_t vni;  // 24 significant bits

  bool VniValid() const { return flags & 0x08; }
};

// TCP flag bits.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

}  // namespace snic::net

#endif  // SNIC_NET_HEADERS_H_
