// Wire-format parsing and serialization.
//
// `ParsedPacket` gives NFs a decoded view (offsets + host-order headers) of
// an Ethernet/IPv4/{TCP,UDP}[/VXLAN] frame; `PacketBuilder` produces valid
// frames for the trace generator, including correct IPv4 and L4 checksums.

#ifndef SNIC_NET_PARSER_H_
#define SNIC_NET_PARSER_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/common/status.h"
#include "src/net/five_tuple.h"
#include "src/net/headers.h"
#include "src/net/packet.h"

namespace snic::net {

// Decoded view of one frame. Offsets index into the original byte buffer so
// NFs can rewrite fields in place (NAT) after consulting the parsed values.
struct ParsedPacket {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<VxlanHeader> vxlan;  // set when UDP dst port is 4789

  size_t l3_offset = 0;       // start of IPv4 header
  size_t l4_offset = 0;       // start of TCP/UDP header
  size_t payload_offset = 0;  // first byte after the L4 header
  size_t payload_len = 0;

  // The connection 5-tuple (outer header; see InnerFiveTuple for VXLAN).
  FiveTuple Tuple() const;
};

// Parses an Ethernet/IPv4 frame. Returns an error for truncated frames,
// non-IPv4 ethertypes, or bad IHL values. Does NOT verify the IPv4 header
// checksum: hot-path NFs (and the attack demos that deliberately craft
// odd frames) accept whatever structure decodes.
Result<ParsedPacket> Parse(std::span<const uint8_t> frame);

// Parse() plus IPv4 header-checksum verification: a frame whose stored
// checksum does not match the RFC 1071 sum over its header is rejected.
// Use at trust boundaries (ingress validation, fuzz harnesses).
Result<ParsedPacket> ParseStrict(std::span<const uint8_t> frame);

// RFC 1071 ones-complement checksum over `data` starting from `initial`.
uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t initial = 0);

// Recomputes and stores the IPv4 header checksum in place.
void UpdateIpv4Checksum(std::span<uint8_t> frame, size_t l3_offset);

// Builds valid frames. All set_* calls are optional; defaults produce a
// well-formed TCP packet with zero payload.
class PacketBuilder {
 public:
  PacketBuilder();

  PacketBuilder& SetMacs(const MacAddress& src, const MacAddress& dst);
  PacketBuilder& SetTuple(const FiveTuple& tuple);
  PacketBuilder& SetTcpFlags(uint8_t flags);
  PacketBuilder& SetTtl(uint8_t ttl);
  PacketBuilder& SetPayload(std::span<const uint8_t> payload);
  // Pads (with zero bytes) or truncates the payload so the final frame is
  // exactly `frame_len` bytes. Aborts if frame_len is below the header size.
  PacketBuilder& SetFrameLen(size_t frame_len);

  // Encapsulates the frame-so-far as the inner frame of a VXLAN packet with
  // the given VNI, using `outer` as the outer 5-tuple (protocol forced to
  // UDP, dst port 4789).
  Packet BuildVxlan(uint32_t vni, const FiveTuple& outer) const;

  Packet Build() const;

 private:
  std::vector<uint8_t> BuildBytes() const;

  MacAddress src_mac_;
  MacAddress dst_mac_;
  FiveTuple tuple_;
  uint8_t tcp_flags_ = kTcpAck;
  uint8_t ttl_ = 64;
  std::vector<uint8_t> payload_;
  size_t frame_len_ = 0;  // 0 = natural size
};

}  // namespace snic::net

#endif  // SNIC_NET_PARSER_H_
