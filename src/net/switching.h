// Switching rules for the packet input module (§3.1, §4.4).
//
// The packet input module forwards each incoming frame to a network function
// based on management-configured predicates over the frame's 5-tuple, the
// destination MAC (SR-IOV style), and — per S-NIC's VXLAN integration — the
// Virtual Network Identifier of VXLAN-encapsulated traffic.

#ifndef SNIC_NET_SWITCHING_H_
#define SNIC_NET_SWITCHING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/five_tuple.h"
#include "src/net/headers.h"
#include "src/net/parser.h"

namespace snic::net {

// A single match predicate. Unset (nullopt) fields are wildcards. IP fields
// match against a prefix (address + prefix length, CIDR semantics).
struct SwitchRule {
  struct IpPrefix {
    uint32_t addr = 0;
    uint8_t prefix_len = 32;

    bool Matches(uint32_t ip) const {
      if (prefix_len == 0) {
        return true;
      }
      const uint32_t mask = prefix_len >= 32
                                ? 0xffffffffu
                                : ~((1u << (32 - prefix_len)) - 1);
      return (ip & mask) == (addr & mask);
    }
  };

  std::optional<IpPrefix> src_ip;
  std::optional<IpPrefix> dst_ip;
  std::optional<uint16_t> src_port;
  std::optional<uint16_t> dst_port;
  std::optional<uint8_t> protocol;
  std::optional<MacAddress> dst_mac;
  std::optional<uint32_t> vni;  // matches the VXLAN VNI when present

  // True when every set field matches the parsed frame.
  bool Matches(const ParsedPacket& pkt) const;

  std::string ToString() const;
};

// An ordered rule table mapping predicates to a destination id (an NF id in
// the NIC, an action id in the firewall). First match wins.
class SwitchRuleTable {
 public:
  void Add(SwitchRule rule, uint32_t destination);
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  // Returns the destination of the first matching rule, or nullopt.
  std::optional<uint32_t> Lookup(const ParsedPacket& pkt) const;

  // Removes every rule mapped to `destination` (NF teardown).
  void RemoveDestination(uint32_t destination);

  // In-memory footprint in bytes (denylisted alongside NF state, §4.4).
  size_t MemoryBytes() const;

 private:
  struct Entry {
    SwitchRule rule;
    uint32_t destination;
  };
  std::vector<Entry> entries_;
};

}  // namespace snic::net

#endif  // SNIC_NET_SWITCHING_H_
