#include "src/scenario/generator.h"

#include <string>

#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "src/runtime/sweep.h"

namespace snic::scenario {

namespace {

// The standard chaos constellation: a faultable victim (zip + DMA, bus
// domain 0), the protected bystander (bus domain 1), and a plain forwarding
// tenant keeping the switch busy.
ScenarioSpec ChaosBase(const std::string& name, uint64_t steps) {
  ScenarioSpec spec;
  spec.name = name;
  spec.steps = steps;
  spec.bus_domains = 2;
  spec.supervisor.quarantine_after = 6;  // families that quarantine lower it
  TenantSpec victim;
  victim.name = "victim-a";
  victim.port = 1111;
  victim.role = TenantRole::kWorkload;
  victim.zip_clusters = 1;
  victim.bus_domain = 0;
  victim.dma = true;
  victim.frames_per_step = 1;
  TenantSpec bystander;
  bystander.name = "bystander-b";
  bystander.port = 2222;
  bystander.role = TenantRole::kBystander;
  bystander.bus_domain = 1;
  bystander.frames_per_step = 2;
  TenantSpec forwarder;
  forwarder.name = "tenant-c";
  forwarder.port = 3333;
  forwarder.role = TenantRole::kWorkload;
  forwarder.frames_per_step = 1;
  spec.tenants = {victim, bystander, forwarder};
  spec.verdicts.bystander_identical = true;
  return spec;
}

FaultRuleSpec Rule(std::string_view site, const std::string& nf,
                   uint64_t skip, uint64_t count, uint64_t period) {
  FaultRuleSpec rule;
  rule.site = std::string(site);
  rule.nf = nf;
  rule.skip = skip;
  rule.count = count;
  rule.period = period;
  return rule;
}

// The overload constellation: a policied target with a breaker-gated
// accelerator, and the protected bystander.
ScenarioSpec OverloadBase(const std::string& name, uint64_t steps,
                          uint64_t load_pct) {
  ScenarioSpec spec;
  spec.name = name;
  spec.steps = steps;
  spec.supervisor.verify_attestation = false;  // no restarts in this family
  TenantSpec target;
  target.name = "overloaded-o";
  target.port = 1000;
  target.role = TenantRole::kWorkload;
  target.zip_clusters = 1;
  target.has_policy = true;
  target.policy.rx_queue_capacity_frames = 24;
  target.policy.tx_queue_capacity_frames = 32;
  target.policy.priority_early_drop = true;
  target.policy.admission_burst_frames = 24;
  target.policy.admission_frames_per_refill = 6;
  target.policy.admission_refill_cycles = 50;
  target.policy.deadline_cycles = 150;
  TenantSpec bystander;
  bystander.name = "bystander-b";
  bystander.port = 2000;
  bystander.role = TenantRole::kBystander;
  bystander.frames_per_step = 2;
  spec.tenants = {target, bystander};
  spec.has_overload = true;
  spec.overload.target = "overloaded-o";
  spec.overload.load_pct = load_pct;
  spec.overload.baseline_pct = 100;
  spec.overload.service_per_step = 4;
  spec.verdicts.bystander_identical = true;
  spec.verdicts.queue_bound = true;
  return spec;
}

// The hostile constellation: a protected VF-backed victim and an attacker
// behind its own VF.
ScenarioSpec HostileBase(const std::string& name, uint64_t steps) {
  ScenarioSpec spec;
  spec.name = name;
  spec.steps = steps;
  spec.supervisor.quarantine_after = 3;
  // Slow-burn attacks (malformed descriptors, quota churn) take tens of
  // steps per abuse verdict; the stable window must outlast a full cycle
  // or the consecutive-failure streak resets and containment never latches.
  spec.supervisor.stable_steps = 80;
  spec.supervisor.verify_attestation = false;  // restarts are VF rebinds
  TenantSpec victim;
  victim.name = "victim-v";
  victim.port = 6100;
  victim.role = TenantRole::kBystander;
  victim.frames_per_step = 3;
  victim.has_vf = true;
  victim.vf.ring_slots = 16;
  victim.vf.cq_slots = 16;
  victim.vf.posted_bytes_limit = 64 * 1024;
  TenantSpec attacker;
  attacker.name = "attacker-x";
  attacker.port = 6200;
  attacker.role = TenantRole::kAttacker;
  attacker.frames_per_step = 2;
  attacker.has_vf = true;
  attacker.vf.ring_slots = 16;
  attacker.vf.cq_slots = 8;
  attacker.vf.posted_bytes_limit = 48 * 1024;
  attacker.vf.abuse_threshold = 16;
  spec.tenants = {victim, attacker};
  spec.has_attack = true;
  spec.attack.target = "attacker-x";
  spec.verdicts.bystander_identical = true;
  return spec;
}

// Family A: one fault site at a time, parameters drawn per variant.
void FamilyA(uint64_t seed, std::vector<ScenarioSpec>* out) {
  Rng rng(runtime::DeriveTaskSeed(seed, 101));
  struct SiteShape {
    std::string_view site;
    // How the single fault manifests, which picks the verdicts.
    enum { kInvisible, kCrash, kHang, kLaunch, kBus } kind;
  };
  const SiteShape kShapes[] = {
      {fault::sites::kVppRxDrop, SiteShape::kInvisible},
      {fault::sites::kVppRxCorrupt, SiteShape::kInvisible},
      {fault::sites::kVppRxAdmissionReject, SiteShape::kInvisible},
      {fault::sites::kAccelThreadAccess, SiteShape::kCrash},
      {fault::sites::kDmaHostToNic, SiteShape::kCrash},
      {fault::sites::kDmaNicToHost, SiteShape::kCrash},
      {fault::sites::kNfHang, SiteShape::kHang},
      {fault::sites::kNfLaunch, SiteShape::kLaunch},
      {fault::sites::kBusTimeout, SiteShape::kBus},
  };
  for (const SiteShape& shape : kShapes) {
    for (int variant = 0; variant < 7; ++variant) {
      ScenarioSpec spec = ChaosBase(
          "a/" + std::string(shape.site) + "/" + std::to_string(variant), 320);
      const uint64_t skip = 10 + rng.NextBounded(60);
      switch (shape.kind) {
        case SiteShape::kInvisible: {
          // Sporadic pipeline damage on the victim; no crash machinery.
          spec.faults.push_back(Rule(shape.site, "victim-a", skip,
                                     1 + rng.NextBounded(2),
                                     60 + rng.NextBounded(90)));
          break;
        }
        case SiteShape::kCrash: {
          // One or two transient crashes; the victim must come back.
          spec.faults.push_back(
              Rule(shape.site, "victim-a", skip, 1 + rng.NextBounded(2),
                   variant % 2 == 0 ? 0 : 120 + rng.NextBounded(60)));
          spec.verdicts.must_recover = {"victim-a"};
          spec.verdicts.recovery_deadline_steps = 150;
          break;
        }
        case SiteShape::kHang: {
          // A hang long enough to trip the 15-step watchdog.
          spec.faults.push_back(
              Rule(shape.site, "victim-a", skip, 25 + rng.NextBounded(20), 0));
          spec.verdicts.must_recover = {"victim-a"};
          spec.verdicts.recovery_deadline_steps = 150;
          break;
        }
        case SiteShape::kLaunch: {
          // A transient crash whose first restart attempts fail.
          spec.faults.push_back(
              Rule(fault::sites::kDmaNicToHost, "victim-a", skip, 1, 0));
          spec.faults.push_back(Rule(fault::sites::kNfLaunch, "",
                                     /*skip=*/0, 1 + rng.NextBounded(2), 0));
          spec.verdicts.must_recover = {"victim-a"};
          spec.verdicts.recovery_deadline_steps = 200;
          break;
        }
        case SiteShape::kBus: {
          // Stalls confined to the victim's bus domain (raw key 0).
          FaultRuleSpec rule;
          rule.site = std::string(shape.site);
          rule.has_raw_id = true;
          rule.raw_id = 0;
          rule.skip = skip;
          rule.count = 1;
          rule.period = 30 + rng.NextBounded(50);
          rule.stall_cycles = 200 + rng.NextBounded(600);
          spec.faults.push_back(rule);
          break;
        }
      }
      out->push_back(std::move(spec));
    }
  }
}

// Family B: correlated multi-site bursts across two victims; half the
// variants cap the Supervisor at one relaunch per tick so the burst drains
// through the deterministic pending queue.
void FamilyB(uint64_t seed, std::vector<ScenarioSpec>* out) {
  Rng rng(runtime::DeriveTaskSeed(seed, 102));
  for (int variant = 0; variant < 30; ++variant) {
    ScenarioSpec spec =
        ChaosBase("b/burst/" + std::to_string(variant), 400);
    // A second faultable victim so the burst downs more than one child.
    TenantSpec victim2;
    victim2.name = "victim-d";
    victim2.port = 4444;
    victim2.role = TenantRole::kWorkload;
    victim2.dma = true;
    victim2.frames_per_step = 1;
    spec.tenants.push_back(victim2);
    if (variant % 2 == 0) {
      spec.supervisor.max_concurrent_restarts = 1;
    }
    // The burst: both victims crash in the same window, with extra
    // pipeline damage and a bus stall landing alongside.
    const uint64_t burst = 30 + rng.NextBounded(80);
    spec.faults.push_back(Rule(fault::sites::kDmaHostToNic, "victim-a", burst,
                               1 + rng.NextBounded(2), 0));
    spec.faults.push_back(Rule(fault::sites::kDmaNicToHost, "victim-d", burst,
                               1 + rng.NextBounded(2), 0));
    spec.faults.push_back(Rule(fault::sites::kVppRxCorrupt, "victim-a",
                               burst + rng.NextBounded(8), 1,
                               90 + rng.NextBounded(60)));
    if (variant % 3 == 0) {
      spec.faults.push_back(
          Rule(fault::sites::kAccelThreadAccess, "victim-a",
               burst + 2 + rng.NextBounded(10), 1, 0));
    }
    FaultRuleSpec bus_rule;
    bus_rule.site = std::string(fault::sites::kBusTimeout);
    bus_rule.has_raw_id = true;
    bus_rule.raw_id = 0;
    bus_rule.skip = burst;
    bus_rule.count = 1;
    bus_rule.period = 40 + rng.NextBounded(40);
    bus_rule.stall_cycles = 300;
    spec.faults.push_back(bus_rule);
    spec.verdicts.must_recover = {"victim-a", "victim-d"};
    spec.verdicts.recovery_deadline_steps = 200;
    out->push_back(std::move(spec));
  }
}

// Family C: crash-during-recovery. A forever crash loop quarantines the
// victim; a supervisor.reattest rule poisons exactly the Nth relaunch
// attempt on the way down. Containment must latch; the bystander must not
// notice any of it.
void FamilyC(uint64_t seed, std::vector<ScenarioSpec>* out) {
  Rng rng(runtime::DeriveTaskSeed(seed, 103));
  for (int variant = 0; variant < 24; ++variant) {
    ScenarioSpec spec =
        ChaosBase("c/crash-during-recovery/" + std::to_string(variant), 420);
    spec.supervisor.quarantine_after = 3 + (variant % 2);
    FaultRuleSpec crash = Rule(fault::sites::kDmaHostToNic, "victim-a",
                               20 + rng.NextBounded(60),
                               fault::FaultRule::kForever, 0);
    crash.count = fault::FaultRule::kForever;
    spec.faults.push_back(crash);
    FaultRuleSpec reattest;
    reattest.site = std::string(fault::sites::kSupervisorReattest);
    reattest.nf = "victim-a";
    reattest.count = 1;
    reattest.on_attempt = 1 + (variant % 3);  // poison the Nth relaunch
    spec.faults.push_back(reattest);
    spec.verdicts.containment = {"victim-a"};
    spec.verdicts.recovery_deadline_steps = 250;
    out->push_back(std::move(spec));
  }
}

// Family D: offered-load sweeps against the policied target.
void FamilyD(uint64_t seed, std::vector<ScenarioSpec>* out) {
  Rng rng(runtime::DeriveTaskSeed(seed, 104));
  const uint64_t kLoads[] = {25, 50, 100, 150, 200, 300, 400, 800};
  for (const uint64_t load : kLoads) {
    for (int variant = 0; variant < 4; ++variant) {
      ScenarioSpec spec = OverloadBase(
          "d/load-" + std::to_string(load) + "/" + std::to_string(variant),
          240, load);
      // Policy variants: queue depth and admission rate move together so
      // the bound stays assertable.
      TenantSpec& target = spec.tenants[0];
      target.policy.rx_queue_capacity_frames = 16 + 8 * (variant % 3);
      target.policy.admission_burst_frames =
          target.policy.rx_queue_capacity_frames;
      target.policy.priority_early_drop = variant % 2 == 0;
      if (variant == 3) {
        target.policy.deadline_cycles = 100 + rng.NextBounded(100);
      }
      if (load >= 100) {
        // Overload must shed, not collapse: goodput holds a floor of the
        // baseline twin's nominal-load goodput.
        spec.verdicts.goodput_floor_pct = 70;
      }
      out->push_back(std::move(spec));
    }
  }
}

// Family E: the hostile-tenant attack shapes at several intensities.
void FamilyE(uint64_t seed, std::vector<ScenarioSpec>* out) {
  (void)seed;  // the family is a fixed grid; nothing random to draw
  struct Shape {
    const char* name;
    uint64_t flood_rings;
    bool squat;
    uint64_t flood_period, squat_period, corrupt_period, stale_period,
        churn_period;
    const char* detect;  // abuse kind asserted at high intensity
  };
  const Shape kShapes[] = {
      {"flood", 16, false, 9, 0, 0, 0, 0, "flood"},
      {"squat", 0, true, 0, 3, 0, 0, 0, "squat"},
      {"malformed", 0, false, 0, 0, 5, 9, 0, "desc"},
      {"churn", 0, false, 0, 0, 0, 0, 5, "churn"},
  };
  for (const Shape& shape : kShapes) {
    for (int intensity = 0; intensity < 9; ++intensity) {
      ScenarioSpec spec = HostileBase("e/" + std::string(shape.name) + "/" +
                                          std::to_string(intensity),
                                      360);
      // Intensity scales the driver volume and tightens the periods.
      const uint64_t scale = 1 + intensity;
      spec.attack.flood_rings = shape.flood_rings * scale / 2;
      spec.attack.squat = shape.squat && intensity >= 2;
      const auto add = [&spec](std::string_view site, uint64_t period) {
        if (period == 0) {
          return;
        }
        FaultRuleSpec rule;
        rule.site = std::string(site);
        rule.nf = "attacker-x";
        rule.skip = 2;
        rule.count = 1;
        rule.period = period;
        spec.faults.push_back(rule);
      };
      const auto tighten = [scale](uint64_t period) {
        if (period == 0) {
          return uint64_t{0};
        }
        const uint64_t tightened = period * 4 / (3 + scale);
        return tightened < 2 ? uint64_t{2} : tightened;
      };
      add(fault::sites::kVnicDoorbellFlood, tighten(shape.flood_period));
      add(fault::sites::kVnicCqSquat, tighten(shape.squat_period));
      add(fault::sites::kVnicDescCorrupt, tighten(shape.corrupt_period));
      add(fault::sites::kVnicDescStale, tighten(shape.stale_period));
      add(fault::sites::kVnicQuotaChurn, tighten(shape.churn_period));
      if (intensity >= 6) {
        spec.verdicts.detect_abuse = {shape.detect};
        spec.verdicts.containment = {"attacker-x"};
      }
      out->push_back(std::move(spec));
    }
  }
}

// Family F: compound scenarios — the acceptance-criteria shape. A crash
// loop with a poisoned re-attestation (fault-during-recovery) while the
// overload plane is saturated, and attacks under overload: containment and
// queue bounds must hold with the bystander byte-identical throughout.
void FamilyF(uint64_t seed, std::vector<ScenarioSpec>* out) {
  Rng rng(runtime::DeriveTaskSeed(seed, 106));
  for (int variant = 0; variant < 8; ++variant) {
    ScenarioSpec spec = OverloadBase(
        "f/fault-during-recovery-overload/" + std::to_string(variant), 420,
        /*load_pct=*/300);
    spec.supervisor.verify_attestation = true;
    spec.supervisor.quarantine_after = 3;
    // A third tenant carries the crash loop so the overload target's
    // goodput story stays clean.
    TenantSpec victim;
    victim.name = "victim-a";
    victim.port = 1111;
    victim.role = TenantRole::kWorkload;
    victim.dma = true;
    victim.frames_per_step = 1;
    spec.tenants.push_back(victim);
    FaultRuleSpec crash =
        Rule(fault::sites::kDmaHostToNic, "victim-a",
             20 + rng.NextBounded(40), fault::FaultRule::kForever, 0);
    spec.faults.push_back(crash);
    FaultRuleSpec reattest;
    reattest.site = std::string(fault::sites::kSupervisorReattest);
    reattest.nf = "victim-a";
    reattest.count = 1;
    reattest.on_attempt = 1 + (variant % 3);
    spec.faults.push_back(reattest);
    spec.verdicts.containment = {"victim-a"};
    out->push_back(std::move(spec));
  }
  for (int variant = 0; variant < 8; ++variant) {
    ScenarioSpec spec = OverloadBase(
        "f/attack-overload/" + std::to_string(variant), 420, /*load_pct=*/200);
    spec.supervisor.quarantine_after = 3;
    TenantSpec attacker;
    attacker.name = "attacker-x";
    attacker.port = 6200;
    attacker.role = TenantRole::kAttacker;
    attacker.frames_per_step = 2;
    attacker.has_vf = true;
    attacker.vf.ring_slots = 16;
    attacker.vf.cq_slots = 8;
    attacker.vf.posted_bytes_limit = 48 * 1024;
    attacker.vf.abuse_threshold = 16;
    spec.tenants.push_back(attacker);
    spec.has_attack = true;
    spec.attack.target = "attacker-x";
    spec.attack.flood_rings = 32 + 8 * variant;
    spec.attack.squat = variant % 2 == 1;
    FaultRuleSpec flood;
    flood.site = std::string(fault::sites::kVnicDoorbellFlood);
    flood.nf = "attacker-x";
    flood.skip = 2;
    flood.count = 1;
    flood.period = 5;
    spec.faults.push_back(flood);
    spec.verdicts.detect_abuse = {"flood"};
    spec.verdicts.containment = {"attacker-x"};
    out->push_back(std::move(spec));
  }
}

}  // namespace

std::vector<ScenarioSpec> GenerateScenarios(uint64_t seed) {
  std::vector<ScenarioSpec> out;
  out.reserve(200);
  FamilyA(seed, &out);
  FamilyB(seed, &out);
  FamilyC(seed, &out);
  FamilyD(seed, &out);
  FamilyE(seed, &out);
  FamilyF(seed, &out);
  return out;
}

}  // namespace snic::scenario
