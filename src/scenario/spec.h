// Declarative chaos-scenario spec (docs/ROBUSTNESS.md, scenario matrix).
//
// A scenario composes, as data, everything the three bespoke soaks
// hard-code: a constellation of tenant NFs (roles, ports, accelerator and
// DMA placement, bus domains, per-VF vNIC attachment), workload parameters,
// a fault schedule over the registered fault sites (including correlated
// multi-site bursts and crash-during-recovery rules that fire inside the
// Supervisor's restart/re-attestation path via `on_attempt`), an overload
// policy, a vNIC attack mix, and the verdict predicates that decide
// pass/fail. The runner (src/scenario/runner.h) lowers a spec onto the
// existing harness pieces; the generator (src/scenario/generator.h) mints
// seeded families of specs; bench/scenario_matrix sweeps them.
//
// Parsing is DECODE-OR-REJECT, like the vNIC descriptor path: the JSON must
// be structurally exact — unknown keys, wrong types, fractional or
// out-of-range numbers, unregistered fault sites, dangling tenant
// references all reject with a precise error. A spec either decodes into a
// fully-validated ScenarioSpec or it does not run at all; there is no
// lenient mode. tests/fuzz_roundtrip_test.cc holds every-prefix truncation
// and single-byte mutants to "clean error, never crash, never
// mis-decode-silently".

#ifndef SNIC_SCENARIO_SPEC_H_
#define SNIC_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace snic::scenario {

// Supervisor knobs, in steps (the runner multiplies by cycles_per_step).
struct SupervisorSpec {
  uint64_t watchdog_timeout_steps = 15;
  uint64_t backoff_base_steps = 2;
  uint64_t backoff_max_steps = 32;
  uint32_t backoff_jitter_pct = 25;
  uint32_t quarantine_after = 4;
  uint64_t stable_steps = 20;
  // Satellite of PR 10: restart-storm cap (0 = unlimited).
  uint32_t max_concurrent_restarts = 0;
  bool verify_attestation = true;
};

enum class TenantRole : uint8_t {
  // Drives traffic through its pipeline, stages DMA and touches its
  // accelerator when configured; transient failures become Supervisor
  // crash reports (the chaos-victim shape).
  kWorkload = 0,
  // The protected tenant: polls, digests and echoes; its full observable
  // record is the byte-identity invariant.
  kBystander = 1,
  // Hostile tenant behind a VF, driven by the scenario's attack mix.
  kAttacker = 2,
};

std::string_view TenantRoleName(TenantRole role);

// Optional per-tenant vNIC virtual function (src/core/vnic).
struct VfSpec {
  uint32_t ring_slots = 16;
  uint32_t cq_slots = 16;
  uint64_t posted_bytes_limit = 64 * 1024;
  uint32_t abuse_threshold = 16;
};

// Bounded-queue/admission policy for a tenant's pipeline
// (core::OverloadPolicy fields; 0 keeps the core default).
struct OverloadPolicySpec {
  uint32_t rx_queue_capacity_frames = 0;
  uint32_t tx_queue_capacity_frames = 0;
  bool priority_early_drop = false;
  uint64_t admission_burst_frames = 0;
  uint64_t admission_frames_per_refill = 0;
  uint64_t admission_refill_cycles = 0;
  uint64_t deadline_cycles = 0;
};

struct TenantSpec {
  std::string name;
  uint16_t port = 0;
  TenantRole role = TenantRole::kWorkload;
  uint32_t zip_clusters = 0;
  // Temporal bus-partition domain (-1 = not on the bus).
  int32_t bus_domain = -1;
  uint64_t frames_per_step = 1;
  bool dma = false;  // stage host<->NIC DMA each service step
  bool has_vf = false;
  VfSpec vf;
  bool has_policy = false;
  OverloadPolicySpec policy;
};

// One scheduled fault (fault::FaultRule, with the NF filter expressed by
// tenant name). `nf` may be a tenant name or "any"; `raw_id` addresses
// non-NF keys (bus domains) directly and is mutually exclusive with `nf`.
struct FaultRuleSpec {
  std::string site;
  std::string nf;  // tenant name, or empty = any
  bool has_raw_id = false;
  uint64_t raw_id = 0;
  uint64_t skip = 0;
  uint64_t count = 1;  // FaultRule::kForever when `forever` was given
  uint64_t period = 0;
  double probability = 1.0;
  uint64_t stall_cycles = 0;
  uint64_t on_attempt = 0;  // crash-during-recovery predicate
};

// Offered-load sweep for one workload tenant: `load_pct` percent of
// `service_per_step` frames per step aimed at `target` in the subject run;
// the baseline twin offers `baseline_pct`.
struct OverloadSpec {
  std::string target;
  uint64_t load_pct = 100;
  uint64_t baseline_pct = 100;
  uint64_t service_per_step = 4;
};

// Driver-side hostile volume for attacker-role tenants; the vnic.* fault
// sites in `faults` supply the schedule-driven moves.
struct AttackSpec {
  std::string target;
  uint64_t flood_rings = 0;  // extra doorbell writes per step
  bool squat = false;        // never harvest completions
};

// Verdict predicates. Absent (default) predicates are not checked; every
// present predicate must hold for the scenario to pass.
struct VerdictSpec {
  // Every bystander-role tenant's record must be byte-identical between
  // the subject run and the stripped baseline twin.
  bool bystander_identical = false;
  // These tenants must end quarantined (Supervisor, and device edge when
  // behind a VF): containment latched.
  std::vector<std::string> containment;
  // These tenants must end Running again after at least one restart.
  std::vector<std::string> must_recover;
  // Recovery-deadline SLO: every crash must resolve (Running again or
  // quarantined) within this many steps. 0 = unchecked.
  uint64_t recovery_deadline_steps = 0;
  // Overload-target goodput in the subject run must hold this percentage
  // of the baseline twin's goodput. 0 = unchecked.
  uint64_t goodput_floor_pct = 0;
  // The overload target's RX queue peak must respect its configured cap.
  bool queue_bound = false;
  // Abuse kinds the attacker must get flagged for ("flood", "squat",
  // "desc", "churn"). Empty = unchecked.
  std::vector<std::string> detect_abuse;
};

struct ScenarioSpec {
  std::string name;
  uint64_t steps = 400;
  uint64_t cycles_per_step = 100;
  uint32_t bus_domains = 0;  // 0 = no bus modeled
  SupervisorSpec supervisor;
  std::vector<TenantSpec> tenants;
  std::vector<FaultRuleSpec> faults;
  bool has_overload = false;
  OverloadSpec overload;
  bool has_attack = false;
  AttackSpec attack;
  VerdictSpec verdicts;
};

// Every fault-site string a spec may reference (the wired-in registry,
// src/fault/fault.h namespace sites). Decode rejects any other site.
const std::vector<std::string_view>& KnownFaultSites();

// Decode-or-reject. On success the spec is fully validated: unique tenant
// names/ports, resolvable references, registered fault sites, in-range
// numbers. On failure the status message pinpoints the offending key.
Result<ScenarioSpec> ParseScenarioSpec(std::string_view json_text);

// Canonical JSON for a spec; SerializeScenarioSpec(s) always re-parses to
// an equal spec (the round-trip the fuzzers pin).
std::string SerializeScenarioSpec(const ScenarioSpec& spec);

// The baseline twin the differential verdicts compare against: fault
// schedule dropped, attack volume zeroed, overload at baseline_pct. The
// constellation itself (tenants, placement, policies) is untouched.
ScenarioSpec BaselineTwin(const ScenarioSpec& spec);

}  // namespace snic::scenario

#endif  // SNIC_SCENARIO_SPEC_H_
