#include "src/scenario/runner.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/accel/accelerator.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/overload.h"
#include "src/core/vnic/descriptor.h"
#include "src/core/vnic/pf_vf.h"
#include "src/crypto/keys.h"
#include "src/fault/fault.h"
#include "src/mgmt/dma.h"
#include "src/mgmt/nic_os.h"
#include "src/net/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"
#include "src/runtime/sweep.h"
#include "src/scenario/digest.h"
#include "src/sim/bus.h"

namespace snic::scenario {

namespace {

constexpr uint16_t kVfBufferBytes = 2048;
constexpr uint16_t kAttackerBufferBytes = 1024;

void AppendF(std::string& out, const char* fmt, ...) {
  char line[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof(line), fmt, args);
  va_end(args);
  out += line;
}

mgmt::FunctionImage MakeImage(const TenantSpec& tenant) {
  mgmt::FunctionImage image;
  image.name = tenant.name;
  image.code_and_data.assign(3000, 0xab);
  image.cores = 1;
  image.memory_bytes = 8ull << 20;
  image.accel_clusters[static_cast<size_t>(accel::AcceleratorType::kZip)] =
      tenant.zip_clusters;
  if (tenant.has_policy) {
    const OverloadPolicySpec& p = tenant.policy;
    image.overload.rx_queue_capacity_frames = p.rx_queue_capacity_frames;
    image.overload.tx_queue_capacity_frames = p.tx_queue_capacity_frames;
    image.overload.drop_policy = p.priority_early_drop
                                     ? core::DropPolicy::kPriorityEarlyDrop
                                     : core::DropPolicy::kTailDrop;
    image.overload.admission_burst_frames = p.admission_burst_frames;
    image.overload.admission_frames_per_refill = p.admission_frames_per_refill;
    image.overload.admission_refill_cycles = p.admission_refill_cycles;
    image.overload.deadline_cycles = p.deadline_cycles;
  }
  net::SwitchRule rule;
  rule.dst_port = tenant.port;
  image.switch_rules.push_back(rule);
  return image;
}

// Encodes a block of in-order RX descriptors continuing at `posted_total`
// (the hostile soak's refill idiom).
std::vector<uint8_t> RefillBlock(uint64_t posted_total, uint32_t count,
                                 uint32_t ring_slots, uint16_t buffer_len) {
  std::vector<core::vnic::RxDescriptor> batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    core::vnic::RxDescriptor descriptor;
    const uint64_t index = (posted_total + i) % ring_slots;
    descriptor.ring_index = static_cast<uint16_t>(index);
    descriptor.buffer_len = buffer_len;
    descriptor.buffer_addr = core::vnic::kBufferAlign * (index + 1);
    batch.push_back(descriptor);
  }
  return core::vnic::EncodeDescriptors(batch);
}

net::Packet MakePacket(Rng& rng, uint16_t port) {
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4FromString("10.0.0.9");
  tuple.dst_ip = net::Ipv4FromString("203.0.113.7");
  tuple.src_port = static_cast<uint16_t>(10000 + rng.NextBounded(100));
  tuple.dst_port = port;
  tuple.protocol = 6;
  // Mixed frame sizes (the kMaxFrameBytes geometry) so priority-aware
  // early drop has real choices.
  std::vector<uint8_t> payload(32 + rng.NextBounded(4) * 64);
  for (size_t k = 0; k < payload.size(); ++k) {
    payload[k] = static_cast<uint8_t>(rng.NextU64());
  }
  return net::PacketBuilder().SetTuple(tuple).SetPayload(payload).Build();
}

// Per-tenant live state the step loop carries.
struct TenantState {
  uint64_t nf_id = 0;
  uint32_t vf = 0;
  Rng traffic{0};
  Fnv rx_digest;
  Fnv wire_digest;
  Fnv bus_digest;
  Fnv cpl_digest;
  uint64_t wire_packets = 0;
  uint64_t bus_grants = 0;
  uint64_t completions = 0;
  uint64_t posted_total = 0;
  uint64_t resets_seen = 0;
  uint64_t tx_rejected = 0;
  uint64_t wire_rejected = 0;
  obs::Counter* rx_counter = nullptr;
  obs::Counter* tx_counter = nullptr;
  // Recovery tracking.
  mgmt::NfHealth prev_health = mgmt::NfHealth::kRunning;
  uint64_t crash_step = 0;
  bool crash_open = false;
};

}  // namespace

RunResult RunConstellation(const ScenarioSpec& spec, uint64_t seed) {
  RunResult result;
  const size_t n = spec.tenants.size();
  result.tenants.resize(n);
  const uint64_t cps = spec.cycles_per_step;

  obs::MetricRegistry registry;
  obs::ScopedDefaultRegistry scoped_registry(&registry);
  obs::TraceRing ring;

  fault::FaultPlane plane(runtime::DeriveTaskSeed(seed, 1));
  plane.AttachObs(&registry);
  plane.AttachTraceRing(&ring);
  fault::ScopedFaultPlane scoped_plane(&plane);

  Rng vendor_rng(runtime::DeriveTaskSeed(seed, 2));
  crypto::VendorAuthority vendor(512, vendor_rng);
  core::SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = 256ull << 20;
  config.rsa_modulus_bits = 512;
  core::SnicDevice device(config, vendor);
  device.AttachTraceRing(&ring);
  mgmt::NicOs nic_os(&device);

  const bool any_vf = [&] {
    for (const TenantSpec& t : spec.tenants) {
      if (t.has_vf) {
        return true;
      }
    }
    return false;
  }();
  core::vnic::PfVfManager front_end;
  if (any_vf) {
    front_end.AttachObs(&registry);
    front_end.AttachTraceRing(&ring);
    device.AttachVnicFrontEnd(&front_end);
  }

  mgmt::SupervisorConfig sup_config;
  sup_config.seed = runtime::DeriveTaskSeed(seed, 3);
  sup_config.watchdog_timeout_cycles =
      spec.supervisor.watchdog_timeout_steps * cps;
  sup_config.backoff_base_cycles = spec.supervisor.backoff_base_steps * cps;
  sup_config.backoff_max_cycles = spec.supervisor.backoff_max_steps * cps;
  sup_config.backoff_jitter_pct = spec.supervisor.backoff_jitter_pct;
  sup_config.quarantine_after = spec.supervisor.quarantine_after;
  sup_config.stable_cycles = spec.supervisor.stable_steps * cps;
  sup_config.max_concurrent_restarts = spec.supervisor.max_concurrent_restarts;
  sup_config.verify_attestation = spec.supervisor.verify_attestation;
  mgmt::Supervisor supervisor(&nic_os, vendor.public_key(), sup_config);
  supervisor.AttachObs(&registry);
  supervisor.AttachTraceRing(&ring);

  std::vector<TenantState> state(n);
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < n; ++i) {
    const auto id = supervisor.Adopt(MakeImage(spec.tenants[i]));
    SNIC_CHECK(id.ok());
    state[i].nf_id = id.value();
    state[i].traffic = Rng(runtime::DeriveTaskSeed(seed, 16 + i));
    state[i].rx_counter =
        &registry.GetCounter("scenario.rx", {{"nf", spec.tenants[i].name}});
    state[i].tx_counter =
        &registry.GetCounter("scenario.tx", {{"nf", spec.tenants[i].name}});
    index_of[spec.tenants[i].name] = i;
  }

  // DMA banks: one channel per dma-enabled tenant, disjoint windows.
  mgmt::HostMemory host(64 * 1024);
  mgmt::DmaController dma(&device, &host);
  const auto bank_for = [](size_t index, uint64_t nf_id) {
    mgmt::DmaBankConfig bank;
    bank.nf_id = nf_id;
    bank.host_window_base = 4096 * index;
    bank.host_window_bytes = 4096;
    bank.nic_window_vbase = 0x10000 + 0x1000 * index;
    bank.nic_window_bytes = 4096;
    return bank;
  };
  for (size_t i = 0; i < n; ++i) {
    if (spec.tenants[i].dma) {
      SNIC_CHECK_OK(
          dma.ConfigureBank(static_cast<uint32_t>(i + 1),
                            bank_for(i, state[i].nf_id)));
    }
  }

  // VFs, created in declaration order (VF numbering is part of the replay).
  for (size_t i = 0; i < n; ++i) {
    if (!spec.tenants[i].has_vf) {
      continue;
    }
    const VfSpec& v = spec.tenants[i].vf;
    core::vnic::VfQuota quota;
    quota.ring_slots = v.ring_slots;
    quota.cq_slots = v.cq_slots;
    quota.posted_bytes_limit = v.posted_bytes_limit;
    quota.abuse_threshold = v.abuse_threshold;
    const auto vf =
        front_end.CreateVf(state[i].nf_id, device.Vpp(state[i].nf_id), quota);
    SNIC_CHECK(vf.ok());
    state[i].vf = vf.value();
  }

  // Abuse verdicts: attacker VFs feed containment (crash with kVnicAbuse);
  // a verdict on anyone else's VF is a detector false positive, counted.
  front_end.SetAbuseCallback([&](uint32_t vf, core::vnic::VfAbuse kind) {
    for (size_t i = 0; i < n; ++i) {
      if (!spec.tenants[i].has_vf || state[i].vf != vf) {
        continue;
      }
      if (spec.tenants[i].role != TenantRole::kAttacker) {
        ++result.false_abuse_flags;
        return;
      }
      ++result.abuse_reports[static_cast<int>(kind)];
      if (supervisor.HealthOf(spec.tenants[i].name) ==
          mgmt::NfHealth::kRunning) {
        supervisor.ReportCrash(spec.tenants[i].name,
                               mgmt::CrashCause::kVnicAbuse);
      }
      return;
    }
  });

  supervisor.SetRestartCallback([&](const std::string& name, uint64_t old_id,
                                    uint64_t new_id) {
    const auto it = index_of.find(name);
    SNIC_CHECK(it != index_of.end());
    const size_t i = it->second;
    plane.RetargetRules(old_id, new_id);
    state[i].nf_id = new_id;
    ++result.tenants[i].restarts;
    if (spec.tenants[i].dma) {
      SNIC_CHECK_OK(dma.ConfigureBank(static_cast<uint32_t>(i + 1),
                                      bank_for(i, new_id)));
    }
    if (spec.tenants[i].has_vf) {
      SNIC_CHECK_OK(
          front_end.RebindVf(state[i].vf, new_id, device.Vpp(new_id)));
    }
  });

  // The spec's fault schedule, installed after setup (skip/count windows
  // start from here, matching the soaks' install-after-adopt discipline).
  for (const FaultRuleSpec& r : spec.faults) {
    fault::FaultRule rule;
    rule.site = r.site;
    if (r.has_raw_id) {
      rule.nf_id = r.raw_id;
    } else if (r.nf.empty()) {
      rule.nf_id = fault::kAnyNf;
    } else {
      rule.nf_id = state[index_of.at(r.nf)].nf_id;
    }
    rule.skip = r.skip;
    rule.count = r.count;
    rule.period = r.period;
    rule.probability = r.probability;
    rule.stall_cycles = r.stall_cycles;
    rule.on_attempt = r.on_attempt;
    plane.AddRule(rule);
  }

  std::unique_ptr<sim::TemporalPartitionArbiter> bus;
  if (spec.bus_domains > 0) {
    sim::TemporalPartitionArbiter::Config bus_config;
    bus_config.transfer_cycles = 4;
    bus_config.num_domains = spec.bus_domains;
    bus_config.epoch_cycles = 64;
    bus_config.dead_time_cycles = 8;
    bus = std::make_unique<sim::TemporalPartitionArbiter>(bus_config);
  }

  const auto zip = accel::AcceleratorType::kZip;
  const auto cluster_of = [&](uint64_t nf_id) -> int {
    for (uint32_t i = 0; i < device.accel_pool().NumClusters(zip); ++i) {
      if (device.accel_pool().Owner(zip, i) ==
          std::optional<uint64_t>(nf_id)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // The overload target's breaker-gated accelerator dispatch; recreated
  // (state and all) when the target relaunches, like a fresh instance.
  const size_t target_index =
      spec.has_overload ? index_of.at(spec.overload.target) : n;
  std::unique_ptr<core::AccelDispatchGate> gate;
  uint64_t gate_generation = 0;
  const auto ensure_gate = [&](size_t i) {
    if (!spec.has_overload || i != target_index ||
        spec.tenants[i].zip_clusters == 0) {
      return;
    }
    if (gate != nullptr && gate_generation == result.tenants[i].restarts) {
      return;
    }
    core::CircuitBreakerConfig breaker_config;
    breaker_config.failures_to_open = 3;
    breaker_config.open_cycles = 10 * cps;
    breaker_config.half_open_successes = 2;
    gate = std::make_unique<core::AccelDispatchGate>(
        &device.accel_pool(), state[i].nf_id, breaker_config);
    gate_generation = result.tenants[i].restarts;
  };

  uint64_t offered_acc = 0;
  uint64_t accel_frames = 0, software_frames = 0;

  for (uint64_t step = 0; step < spec.steps; ++step) {
    const uint64_t now = (step + 1) * cps;
    plane.AdvanceClockTo(now);
    device.AdvanceClockTo(now);

    // --- vNIC maintenance -------------------------------------------------
    for (size_t i = 0; i < n; ++i) {
      if (!spec.tenants[i].has_vf) {
        continue;
      }
      TenantState& ts = state[i];
      const TenantSpec& t = spec.tenants[i];
      const bool attacker = t.role == TenantRole::kAttacker;
      if (attacker) {
        const bool running =
            supervisor.HealthOf(t.name) == mgmt::NfHealth::kRunning;
        if (!running || front_end.IsQuarantined(ts.vf)) {
          continue;
        }
        const core::vnic::VfStats& xs = front_end.StatsOf(ts.vf);
        if (xs.resets != ts.resets_seen) {
          ts.resets_seen = xs.resets;
          ts.posted_total = 0;  // VF reset rewound the expected ring index
        }
        const uint32_t occupancy = front_end.RingOccupancy(ts.vf);
        if (occupancy < t.vf.ring_slots) {
          const uint32_t refill = t.vf.ring_slots - occupancy;
          if (front_end
                  .PostDescriptors(ts.vf,
                                   RefillBlock(ts.posted_total, refill,
                                               t.vf.ring_slots,
                                               kAttackerBufferBytes))
                  .ok()) {
            ts.posted_total += refill;
          }
        }
        const uint64_t flood =
            spec.has_attack && spec.attack.target == t.name
                ? spec.attack.flood_rings
                : 0;
        for (uint64_t k = 0; k < 1 + flood; ++k) {
          (void)front_end.RingDoorbell(ts.vf);
        }
        const bool squat =
            spec.has_attack && spec.attack.target == t.name && spec.attack.squat;
        if (!squat) {
          while (front_end.Harvest(ts.vf).ok()) {
          }
        }
      } else {
        // Well-behaved VF tenant: keep the ring full, one doorbell per
        // step — comfortably inside the policer budget.
        const uint32_t occupancy = front_end.RingOccupancy(ts.vf);
        if (occupancy < t.vf.ring_slots) {
          const uint32_t refill = t.vf.ring_slots - occupancy;
          SNIC_CHECK_OK(front_end.PostDescriptors(
              ts.vf, RefillBlock(ts.posted_total, refill, t.vf.ring_slots,
                                 kVfBufferBytes)));
          ts.posted_total += refill;
        }
        SNIC_CHECK(front_end.RingDoorbell(ts.vf));
      }
    }

    // --- Wire traffic -----------------------------------------------------
    for (size_t i = 0; i < n; ++i) {
      TenantState& ts = state[i];
      const TenantSpec& t = spec.tenants[i];
      if (spec.has_overload && i == target_index) {
        // Offered load at load_pct% of the service budget, scheduled by an
        // integer accumulator so fractional factors stay deterministic.
        offered_acc += spec.overload.load_pct * spec.overload.service_per_step;
        while (offered_acc >= 100) {
          offered_acc -= 100;
          ++result.offered;
          if (!device.DeliverFromWire(MakePacket(ts.traffic, t.port)).ok()) {
            ++ts.wire_rejected;
          }
        }
        continue;
      }
      for (uint64_t k = 0; k < t.frames_per_step; ++k) {
        if (!device.DeliverFromWire(MakePacket(ts.traffic, t.port)).ok()) {
          ++ts.wire_rejected;
        }
      }
    }

    // --- Bus grants -------------------------------------------------------
    if (bus != nullptr) {
      for (uint32_t d = 0; d < spec.bus_domains; ++d) {
        const uint64_t grant = bus->Grant(now, d);
        for (size_t i = 0; i < n; ++i) {
          if (spec.tenants[i].bus_domain == static_cast<int32_t>(d)) {
            state[i].bus_digest.Mix64(grant);
            ++state[i].bus_grants;
          }
        }
      }
    }

    // --- Per-tenant service ----------------------------------------------
    for (size_t i = 0; i < n; ++i) {
      TenantState& ts = state[i];
      const TenantSpec& t = spec.tenants[i];
      const bool running =
          supervisor.HealthOf(t.name) == mgmt::NfHealth::kRunning;

      if (t.role == TenantRole::kBystander) {
        // Poll, digest, echo: everything it observes joins its record.
        for (;;) {
          auto received = device.NfReceive(ts.nf_id);
          if (!received.ok()) {
            break;
          }
          net::Packet packet = std::move(received).value();
          ts.rx_digest.Mix(packet.bytes().data(), packet.size());
          ts.rx_counter->Inc();
          if (device.NfSend(ts.nf_id, std::move(packet)).ok()) {
            ts.tx_counter->Inc();
          }
        }
        if (t.has_vf) {
          for (;;) {
            const auto completion = front_end.Harvest(ts.vf);
            if (!completion.ok()) {
              break;
            }
            const auto& c = completion.value();
            ts.cpl_digest.Mix64(c.ring_index);
            ts.cpl_digest.Mix64(c.bytes);
            ts.cpl_digest.Mix64(c.cycle);
            ts.cpl_digest.Mix64(c.wait_cycles);
            ++ts.completions;
          }
        }
        supervisor.Heartbeat(t.name);
        continue;
      }

      if (t.role == TenantRole::kAttacker) {
        // Drain its own pipeline so squatting (not a full VPP) is what
        // fills the completion queue.
        if (running) {
          for (;;) {
            auto received = device.NfReceive(ts.nf_id);
            if (!received.ok()) {
              break;
            }
            (void)device.NfSend(ts.nf_id, std::move(received).value());
          }
          supervisor.Heartbeat(t.name);
        }
        continue;
      }

      // Workload tenants.
      if (!running) {
        continue;
      }
      const bool hung = SNIC_FAULT_FIRES(fault::sites::kNfHang, ts.nf_id);
      if (hung) {
        continue;  // no service, no heartbeat: the watchdog's job
      }
      bool crashed = false;
      if (spec.has_overload && i == target_index) {
        // Budgeted service through the breaker-gated accelerator: an open
        // breaker answers immediately and the frame takes the software
        // path — degraded, never dropped.
        ensure_gate(i);
        const int cluster =
            t.zip_clusters > 0 ? cluster_of(ts.nf_id) : -1;
        for (uint64_t k = 0; k < spec.overload.service_per_step; ++k) {
          auto received = device.NfReceive(ts.nf_id);
          if (!received.ok()) {
            break;
          }
          if (gate != nullptr && cluster >= 0) {
            const auto access = gate->Dispatch(
                zip, static_cast<uint32_t>(cluster), 0x1000, false, now);
            if (access.ok()) {
              ++accel_frames;
            } else {
              ++software_frames;
            }
          }
          if (!device.NfSend(ts.nf_id, std::move(received).value()).ok()) {
            ++ts.tx_rejected;
          }
        }
      } else {
        for (;;) {
          auto received = device.NfReceive(ts.nf_id);
          if (!received.ok()) {
            break;
          }
          if (!device.NfSend(ts.nf_id, std::move(received).value()).ok()) {
            ++ts.tx_rejected;
          }
        }
      }
      if (t.dma) {
        const uint32_t channel = static_cast<uint32_t>(i + 1);
        Status h2n = dma.HostToNic(channel, 4096 * i,
                                   0x10000 + 0x1000 * i, 256);
        Status n2h = !h2n.ok() ? OkStatus()
                               : dma.NicToHost(channel, 0x10000 + 0x1000 * i,
                                               4096 * i + 1024, 256);
        if (h2n.code() == ErrorCode::kUnavailable ||
            n2h.code() == ErrorCode::kUnavailable) {
          supervisor.ReportCrash(t.name, mgmt::CrashCause::kDmaFault);
          crashed = true;
        }
      }
      if (!crashed && t.zip_clusters > 0 && !supervisor.IsDegraded(t.name) &&
          !(spec.has_overload && i == target_index)) {
        const int cluster = cluster_of(ts.nf_id);
        if (cluster >= 0) {
          auto access = device.accel_pool().ThreadAccess(
              zip, static_cast<uint32_t>(cluster), 0x1000, false);
          if (!access.ok() &&
              access.status().code() == ErrorCode::kUnavailable) {
            supervisor.ReportCrash(t.name, mgmt::CrashCause::kAccelFault);
            crashed = true;
          }
        }
      }
      if (crashed) {
        ++result.tenants[i].crashes_seen;
      } else {
        supervisor.Heartbeat(t.name);
      }
    }

    supervisor.Tick(now);

    // Mirror Supervisor quarantine verdicts to the device edge: from here
    // on the tenant's frames drop at its VF, not in the switch.
    for (size_t i = 0; i < n; ++i) {
      if (spec.tenants[i].has_vf &&
          supervisor.HealthOf(spec.tenants[i].name) ==
              mgmt::NfHealth::kQuarantined &&
          !front_end.IsQuarantined(state[i].vf)) {
        SNIC_CHECK_OK(front_end.QuarantineVf(state[i].vf));
      }
    }

    // Recovery-deadline tracking: a crash opens a window that closes when
    // the tenant is Running again or quarantined.
    for (size_t i = 0; i < n; ++i) {
      TenantState& ts = state[i];
      const mgmt::NfHealth health = supervisor.HealthOf(spec.tenants[i].name);
      if (!ts.crash_open && health == mgmt::NfHealth::kRestarting) {
        ts.crash_open = true;
        ts.crash_step = step;
      } else if (ts.crash_open && health != mgmt::NfHealth::kRestarting) {
        const uint64_t gap = step - ts.crash_step;
        if (gap > result.tenants[i].worst_recovery_steps) {
          result.tenants[i].worst_recovery_steps = gap;
        }
        ts.crash_open = false;
      }
      ts.prev_health = health;
    }

    // --- Drain the wire; attribute frames by destination port ------------
    for (;;) {
      auto out = device.TransmitToWire();
      if (!out.ok()) {
        break;
      }
      const auto parsed = net::Parse(out.value().bytes());
      if (!parsed.ok()) {
        continue;
      }
      const uint16_t port = parsed.value().Tuple().dst_port;
      for (size_t i = 0; i < n; ++i) {
        if (spec.tenants[i].port == port) {
          state[i].wire_digest.Mix(out.value().bytes().data(),
                                   out.value().size());
          ++state[i].wire_packets;
          break;
        }
      }
    }
  }

  // ---- Per-tenant reports and outcomes -------------------------------------
  for (size_t i = 0; i < n; ++i) {
    TenantState& ts = state[i];
    const TenantSpec& t = spec.tenants[i];
    TenantOutcome& outcome = result.tenants[i];
    std::string& report = outcome.report;

    const core::VirtualPacketPipeline* vpp = device.Vpp(ts.nf_id);
    AppendF(report, "%s.role: %s\n", t.name.c_str(),
            std::string(TenantRoleName(t.role)).c_str());
    AppendF(report, "%s.rx: %" PRIu64 " digest: %016" PRIx64 "\n",
            t.name.c_str(), ts.rx_counter->value(), ts.rx_digest.h);
    AppendF(report, "%s.wire: %" PRIu64 " digest: %016" PRIx64 "\n",
            t.name.c_str(), ts.wire_packets, ts.wire_digest.h);
    if (vpp != nullptr) {
      const core::VppStats& s = vpp->stats();
      AppendF(report,
              "%s.vpp: rx=%" PRIu64 " drop_full=%" PRIu64
              " drop_fault=%" PRIu64 " corrupt_fault=%" PRIu64
              " drop_admission=%" PRIu64 " drop_early=%" PRIu64
              " shed_rx=%" PRIu64 " shed_tx=%" PRIu64 " tx=%" PRIu64
              " rx_bytes=%" PRIu64 " tx_bytes=%" PRIu64 "\n",
              t.name.c_str(), s.rx_packets, s.rx_dropped_full,
              s.rx_dropped_fault, s.rx_corrupt_fault, s.rx_dropped_admission,
              s.rx_dropped_early, s.rx_shed_deadline, s.tx_shed_deadline,
              s.tx_packets, s.rx_bytes, s.tx_bytes);
    }
    if (t.bus_domain >= 0) {
      AppendF(report, "%s.bus: %" PRIu64 " digest: %016" PRIx64 "\n",
              t.name.c_str(), ts.bus_grants, ts.bus_digest.h);
    }
    if (t.has_vf) {
      const core::vnic::VfStats& vfs = front_end.StatsOf(ts.vf);
      AppendF(report, "%s.completions: %" PRIu64 " digest: %016" PRIx64 "\n",
              t.name.c_str(), ts.completions, ts.cpl_digest.h);
      AppendF(report,
              "%s.vf: posted=%" PRIu64 " delivered=%" PRIu64
              " harvested=%" PRIu64 " rings=%" PRIu64
              " ring_rejected=%" PRIu64 " drops=%" PRIu64 "/%" PRIu64
              "/%" PRIu64 "/%" PRIu64 " abuse=%" PRIu64 " max_wait=%" PRIu64
              "\n",
              t.name.c_str(), vfs.posts_accepted, vfs.delivered,
              vfs.harvested, vfs.doorbell_rings, vfs.doorbell_rejected,
              vfs.dropped_no_descriptor, vfs.dropped_cq_full, vfs.dropped_vpp,
              vfs.dropped_quarantined, vfs.abuse_flags,
              vfs.max_delivery_wait_cycles);
    }
    AppendF(report, "%s.metrics: tx=%" PRIu64 "\n", t.name.c_str(),
            ts.tx_counter->value());
    const LaneDigest lane = DigestRingLane(ring, static_cast<uint32_t>(ts.nf_id));
    AppendF(report, "%s.ring: %" PRIu64 " digest: %016" PRIx64 "\n",
            t.name.c_str(), lane.count, lane.digest);

    outcome.final_health = supervisor.HealthOf(t.name);
    outcome.degraded = supervisor.IsDegraded(t.name);
    outcome.edge_quarantined = t.has_vf && front_end.IsQuarantined(ts.vf);
    outcome.wire_packets = ts.wire_packets;
    if (ts.crash_open) {
      ++outcome.unresolved_crashes;
      const uint64_t gap = spec.steps - ts.crash_step;
      if (gap > outcome.worst_recovery_steps) {
        outcome.worst_recovery_steps = gap;
      }
    }
  }

  if (spec.has_overload && target_index < n) {
    result.target_goodput = result.tenants[target_index].wire_packets;
    const core::VirtualPacketPipeline* vpp =
        device.Vpp(state[target_index].nf_id);
    if (vpp != nullptr) {
      result.queue_peak_frames = vpp->stats().rx_peak_frames;
      result.queue_peak_bytes = vpp->stats().rx_peak_bytes;
    }
  }
  (void)accel_frames;
  (void)software_frames;
  result.supervisor = supervisor.stats();
  result.restart_queue_peak = supervisor.restart_queue_peak();
  result.faults_injected = plane.injected_total();
  return result;
}

ScenarioVerdict EvaluateScenario(const ScenarioSpec& spec, uint64_t seed) {
  const VerdictSpec& v = spec.verdicts;
  ScenarioVerdict verdict;
  verdict.pass = true;
  std::string& detail = verdict.detail;

  const RunResult subject = RunConstellation(spec, seed);
  const bool needs_baseline = v.bystander_identical || v.goodput_floor_pct > 0;
  RunResult baseline;
  if (needs_baseline) {
    baseline = RunConstellation(BaselineTwin(spec), seed);
  }

  const auto check = [&](const char* name, bool ok,
                         const std::string& why = "") {
    if (!detail.empty()) {
      detail += " ";
    }
    detail += name;
    if (ok) {
      detail += "=ok";
    } else {
      verdict.pass = false;
      detail += "=FAIL";
      if (!why.empty()) {
        detail += "(" + why + ")";
      }
    }
  };
  const auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < spec.tenants.size(); ++i) {
      if (spec.tenants[i].name == name) {
        return i;
      }
    }
    return spec.tenants.size();
  };

  if (v.bystander_identical) {
    bool identical = true;
    std::string who;
    for (size_t i = 0; i < spec.tenants.size(); ++i) {
      if (spec.tenants[i].role != TenantRole::kBystander) {
        continue;
      }
      if (subject.tenants[i].report != baseline.tenants[i].report) {
        identical = false;
        who = spec.tenants[i].name;
      }
    }
    check("bystander_identical", identical, who);
  }
  for (const std::string& name : v.containment) {
    const size_t i = index_of(name);
    const TenantOutcome& o = subject.tenants[i];
    const bool contained =
        o.final_health == mgmt::NfHealth::kQuarantined &&
        (!spec.tenants[i].has_vf || o.edge_quarantined);
    check(("containment:" + name).c_str(), contained,
          std::string(mgmt::NfHealthName(o.final_health)));
  }
  for (const std::string& name : v.must_recover) {
    const size_t i = index_of(name);
    const TenantOutcome& o = subject.tenants[i];
    const bool recovered =
        o.final_health == mgmt::NfHealth::kRunning && o.restarts >= 1;
    check(("must_recover:" + name).c_str(), recovered,
          "health=" + std::string(mgmt::NfHealthName(o.final_health)) +
              ",restarts=" + std::to_string(o.restarts));
  }
  if (v.recovery_deadline_steps > 0) {
    bool within = true;
    std::string why;
    for (size_t i = 0; i < spec.tenants.size(); ++i) {
      const TenantOutcome& o = subject.tenants[i];
      if (o.worst_recovery_steps > v.recovery_deadline_steps) {
        within = false;
        why = spec.tenants[i].name + "=" +
              std::to_string(o.worst_recovery_steps);
      }
    }
    check("recovery_deadline", within, why);
  }
  if (v.goodput_floor_pct > 0) {
    const bool held = subject.target_goodput * 100 >=
                      baseline.target_goodput * v.goodput_floor_pct;
    check("goodput_floor", held,
          std::to_string(subject.target_goodput) + "/" +
              std::to_string(baseline.target_goodput));
  }
  if (v.queue_bound) {
    const size_t i = index_of(spec.overload.target);
    const uint64_t cap = spec.tenants[i].policy.rx_queue_capacity_frames;
    const bool bounded = subject.queue_peak_frames <= cap &&
                         subject.queue_peak_bytes <= cap * kMaxFrameBytes;
    check("queue_bound", bounded,
          "peak=" + std::to_string(subject.queue_peak_frames) + "/" +
              std::to_string(cap));
  }
  for (const std::string& kind : v.detect_abuse) {
    const int ordinal = kind == "flood"   ? 0
                        : kind == "squat" ? 1
                        : kind == "desc"  ? 2
                                          : 3;
    check(("detect_abuse:" + kind).c_str(),
          subject.abuse_reports[ordinal] > 0);
  }
  if (detail.empty()) {
    detail = "no-predicates";
  }
  return verdict;
}

}  // namespace snic::scenario
