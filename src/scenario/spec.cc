#include "src/scenario/spec.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "src/fault/fault.h"
#include "src/obs/json.h"

namespace snic::scenario {

namespace {

using obs::json::Value;

Status Bad(const std::string& where, const std::string& what) {
  return InvalidArgument("scenario spec: " + where + ": " + what);
}

// Strict integer extraction: a JSON number that is non-negative, integral
// and within `max`. Anything else rejects.
Result<uint64_t> U64(const Value& v, const std::string& where, uint64_t max) {
  if (!v.is_number()) {
    return Bad(where, "expected an integer");
  }
  const double d = v.AsNumber();
  if (d < 0.0 || d != std::floor(d)) {
    return Bad(where, "expected a non-negative integer");
  }
  if (d > static_cast<double>(max)) {
    return Bad(where, "value out of range");
  }
  return static_cast<uint64_t>(d);
}

Result<bool> AsBool(const Value& v, const std::string& where) {
  if (!v.is_bool()) {
    return Bad(where, "expected true or false");
  }
  return v.AsBool();
}

Result<std::string> AsString(const Value& v, const std::string& where) {
  if (!v.is_string()) {
    return Bad(where, "expected a string");
  }
  return v.AsString();
}

// Per-object strict decoding: every member key must be consumed by the
// caller's dispatch. `seen` collects the handled keys; any leftover key in
// the object is an unknown-key rejection.
Status RejectUnknownKeys(const Value& obj, const std::set<std::string>& known,
                         const std::string& where) {
  for (const auto& [key, value] : obj.AsObject()) {
    (void)value;
    if (known.count(key) == 0) {
      return Bad(where, "unknown key \"" + key + "\"");
    }
  }
  return OkStatus();
}

Status ParseSupervisor(const Value& v, SupervisorSpec* out) {
  const std::string where = "supervisor";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v,
          {"watchdog_timeout_steps", "backoff_base_steps", "backoff_max_steps",
           "backoff_jitter_pct", "quarantine_after", "stable_steps",
           "max_concurrent_restarts", "verify_attestation"},
          where);
      !s.ok()) {
    return s;
  }
  for (const auto& [key, val] : v.AsObject()) {
    const std::string at = where + "." + key;
    if (key == "verify_attestation") {
      auto b = AsBool(val, at);
      if (!b.ok()) return b.status();
      out->verify_attestation = b.value();
      continue;
    }
    auto n = U64(val, at, key == "backoff_jitter_pct" ? 100 : 1000000);
    if (!n.ok()) return n.status();
    if (key == "watchdog_timeout_steps") out->watchdog_timeout_steps = n.value();
    else if (key == "backoff_base_steps") out->backoff_base_steps = n.value();
    else if (key == "backoff_max_steps") out->backoff_max_steps = n.value();
    else if (key == "backoff_jitter_pct")
      out->backoff_jitter_pct = static_cast<uint32_t>(n.value());
    else if (key == "quarantine_after")
      out->quarantine_after = static_cast<uint32_t>(n.value());
    else if (key == "stable_steps") out->stable_steps = n.value();
    else if (key == "max_concurrent_restarts")
      out->max_concurrent_restarts = static_cast<uint32_t>(n.value());
  }
  return OkStatus();
}

Status ParseVf(const Value& v, const std::string& where, VfSpec* out) {
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v, {"ring_slots", "cq_slots", "posted_bytes_limit", "abuse_threshold"},
          where);
      !s.ok()) {
    return s;
  }
  for (const auto& [key, val] : v.AsObject()) {
    auto n = U64(val, where + "." + key, 1u << 30);
    if (!n.ok()) return n.status();
    if (key == "ring_slots") out->ring_slots = static_cast<uint32_t>(n.value());
    else if (key == "cq_slots") out->cq_slots = static_cast<uint32_t>(n.value());
    else if (key == "posted_bytes_limit") out->posted_bytes_limit = n.value();
    else if (key == "abuse_threshold")
      out->abuse_threshold = static_cast<uint32_t>(n.value());
  }
  if (out->ring_slots == 0 || out->cq_slots == 0) {
    return Bad(where, "ring_slots and cq_slots must be positive");
  }
  return OkStatus();
}

Status ParsePolicy(const Value& v, const std::string& where,
                   OverloadPolicySpec* out) {
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v,
          {"rx_queue_capacity_frames", "tx_queue_capacity_frames",
           "priority_early_drop", "admission_burst_frames",
           "admission_frames_per_refill", "admission_refill_cycles",
           "deadline_cycles"},
          where);
      !s.ok()) {
    return s;
  }
  for (const auto& [key, val] : v.AsObject()) {
    const std::string at = where + "." + key;
    if (key == "priority_early_drop") {
      auto b = AsBool(val, at);
      if (!b.ok()) return b.status();
      out->priority_early_drop = b.value();
      continue;
    }
    auto n = U64(val, at, 1u << 30);
    if (!n.ok()) return n.status();
    if (key == "rx_queue_capacity_frames")
      out->rx_queue_capacity_frames = static_cast<uint32_t>(n.value());
    else if (key == "tx_queue_capacity_frames")
      out->tx_queue_capacity_frames = static_cast<uint32_t>(n.value());
    else if (key == "admission_burst_frames")
      out->admission_burst_frames = n.value();
    else if (key == "admission_frames_per_refill")
      out->admission_frames_per_refill = n.value();
    else if (key == "admission_refill_cycles")
      out->admission_refill_cycles = n.value();
    else if (key == "deadline_cycles") out->deadline_cycles = n.value();
  }
  return OkStatus();
}

Status ParseTenant(const Value& v, size_t index, uint32_t bus_domains,
                   TenantSpec* out) {
  const std::string where = "tenants[" + std::to_string(index) + "]";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v,
          {"name", "port", "role", "zip_clusters", "bus_domain",
           "frames_per_step", "dma", "vf", "policy"},
          where);
      !s.ok()) {
    return s;
  }
  const Value* name = v.Find("name");
  const Value* port = v.Find("port");
  if (name == nullptr || port == nullptr) {
    return Bad(where, "name and port are required");
  }
  auto name_s = AsString(*name, where + ".name");
  if (!name_s.ok()) return name_s.status();
  out->name = name_s.value();
  if (out->name.empty()) {
    return Bad(where, "name must be non-empty");
  }
  auto port_n = U64(*port, where + ".port", 65535);
  if (!port_n.ok()) return port_n.status();
  if (port_n.value() == 0) {
    return Bad(where, "port must be in [1, 65535]");
  }
  out->port = static_cast<uint16_t>(port_n.value());
  if (const Value* role = v.Find("role"); role != nullptr) {
    auto role_s = AsString(*role, where + ".role");
    if (!role_s.ok()) return role_s.status();
    if (role_s.value() == "workload") out->role = TenantRole::kWorkload;
    else if (role_s.value() == "bystander") out->role = TenantRole::kBystander;
    else if (role_s.value() == "attacker") out->role = TenantRole::kAttacker;
    else return Bad(where + ".role", "unknown role \"" + role_s.value() + "\"");
  }
  if (const Value* zip = v.Find("zip_clusters"); zip != nullptr) {
    auto n = U64(*zip, where + ".zip_clusters", 8);
    if (!n.ok()) return n.status();
    out->zip_clusters = static_cast<uint32_t>(n.value());
  }
  if (const Value* dom = v.Find("bus_domain"); dom != nullptr) {
    auto n = U64(*dom, where + ".bus_domain", 255);
    if (!n.ok()) return n.status();
    if (n.value() >= bus_domains) {
      return Bad(where + ".bus_domain",
                 "domain exceeds declared bus_domains (" +
                     std::to_string(bus_domains) + ")");
    }
    out->bus_domain = static_cast<int32_t>(n.value());
  }
  if (const Value* fps = v.Find("frames_per_step"); fps != nullptr) {
    auto n = U64(*fps, where + ".frames_per_step", 1024);
    if (!n.ok()) return n.status();
    out->frames_per_step = n.value();
  }
  if (const Value* dma = v.Find("dma"); dma != nullptr) {
    auto b = AsBool(*dma, where + ".dma");
    if (!b.ok()) return b.status();
    out->dma = b.value();
  }
  if (const Value* vf = v.Find("vf"); vf != nullptr) {
    out->has_vf = true;
    if (Status s = ParseVf(*vf, where + ".vf", &out->vf); !s.ok()) {
      return s;
    }
  }
  if (const Value* policy = v.Find("policy"); policy != nullptr) {
    out->has_policy = true;
    if (Status s = ParsePolicy(*policy, where + ".policy", &out->policy);
        !s.ok()) {
      return s;
    }
  }
  if (out->role == TenantRole::kAttacker && !out->has_vf) {
    return Bad(where, "attacker-role tenants require a vf");
  }
  return OkStatus();
}

Status ParseFaultRule(const Value& v, size_t index,
                      const std::set<std::string>& tenant_names,
                      FaultRuleSpec* out) {
  const std::string where = "faults[" + std::to_string(index) + "]";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(v,
                                   {"site", "nf", "raw_id", "skip", "count",
                                    "period", "probability", "stall_cycles",
                                    "on_attempt"},
                                   where);
      !s.ok()) {
    return s;
  }
  const Value* site = v.Find("site");
  if (site == nullptr) {
    return Bad(where, "site is required");
  }
  auto site_s = AsString(*site, where + ".site");
  if (!site_s.ok()) return site_s.status();
  out->site = site_s.value();
  bool known = false;
  for (std::string_view s : KnownFaultSites()) {
    known |= s == out->site;
  }
  if (!known) {
    return Bad(where + ".site",
               "\"" + out->site + "\" is not a registered fault site");
  }
  const Value* nf = v.Find("nf");
  const Value* raw = v.Find("raw_id");
  if (nf != nullptr && raw != nullptr) {
    return Bad(where, "nf and raw_id are mutually exclusive");
  }
  if (nf != nullptr) {
    auto nf_s = AsString(*nf, where + ".nf");
    if (!nf_s.ok()) return nf_s.status();
    if (nf_s.value() != "any") {
      if (tenant_names.count(nf_s.value()) == 0) {
        return Bad(where + ".nf",
                   "\"" + nf_s.value() + "\" is not a declared tenant");
      }
      out->nf = nf_s.value();
    }
  }
  if (raw != nullptr) {
    auto n = U64(*raw, where + ".raw_id", ~uint64_t{0} >> 1);
    if (!n.ok()) return n.status();
    out->has_raw_id = true;
    out->raw_id = n.value();
  }
  if (const Value* skip = v.Find("skip"); skip != nullptr) {
    auto n = U64(*skip, where + ".skip", 1u << 30);
    if (!n.ok()) return n.status();
    out->skip = n.value();
  }
  if (const Value* count = v.Find("count"); count != nullptr) {
    if (count->is_string()) {
      if (count->AsString() != "forever") {
        return Bad(where + ".count", "expected an integer or \"forever\"");
      }
      out->count = fault::FaultRule::kForever;
    } else {
      auto n = U64(*count, where + ".count", 1u << 30);
      if (!n.ok()) return n.status();
      if (n.value() == 0) {
        return Bad(where + ".count", "count must be positive");
      }
      out->count = n.value();
    }
  }
  if (const Value* period = v.Find("period"); period != nullptr) {
    auto n = U64(*period, where + ".period", 1u << 30);
    if (!n.ok()) return n.status();
    out->period = n.value();
  }
  if (const Value* prob = v.Find("probability"); prob != nullptr) {
    if (!prob->is_number()) {
      return Bad(where + ".probability", "expected a number");
    }
    const double p = prob->AsNumber();
    if (p < 0.0 || p > 1.0) {
      return Bad(where + ".probability", "must be in [0, 1]");
    }
    out->probability = p;
  }
  if (const Value* stall = v.Find("stall_cycles"); stall != nullptr) {
    auto n = U64(*stall, where + ".stall_cycles", 1u << 30);
    if (!n.ok()) return n.status();
    out->stall_cycles = n.value();
  }
  if (const Value* attempt = v.Find("on_attempt"); attempt != nullptr) {
    auto n = U64(*attempt, where + ".on_attempt", 1u << 20);
    if (!n.ok()) return n.status();
    out->on_attempt = n.value();
  }
  return OkStatus();
}

Status ParseOverload(const Value& v, const std::set<std::string>& tenant_names,
                     OverloadSpec* out) {
  const std::string where = "overload";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v, {"target", "load_pct", "baseline_pct", "service_per_step"}, where);
      !s.ok()) {
    return s;
  }
  const Value* target = v.Find("target");
  if (target == nullptr) {
    return Bad(where, "target is required");
  }
  auto target_s = AsString(*target, where + ".target");
  if (!target_s.ok()) return target_s.status();
  if (tenant_names.count(target_s.value()) == 0) {
    return Bad(where + ".target",
               "\"" + target_s.value() + "\" is not a declared tenant");
  }
  out->target = target_s.value();
  for (const char* key : {"load_pct", "baseline_pct", "service_per_step"}) {
    if (const Value* val = v.Find(key); val != nullptr) {
      auto n = U64(*val, where + "." + key, 100000);
      if (!n.ok()) return n.status();
      if (std::string_view(key) == "load_pct") out->load_pct = n.value();
      else if (std::string_view(key) == "baseline_pct")
        out->baseline_pct = n.value();
      else out->service_per_step = n.value();
    }
  }
  if (out->service_per_step == 0) {
    return Bad(where + ".service_per_step", "must be positive");
  }
  return OkStatus();
}

Status ParseAttack(const Value& v, const std::vector<TenantSpec>& tenants,
                   AttackSpec* out) {
  const std::string where = "attack";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s =
          RejectUnknownKeys(v, {"target", "flood_rings", "squat"}, where);
      !s.ok()) {
    return s;
  }
  const Value* target = v.Find("target");
  if (target == nullptr) {
    return Bad(where, "target is required");
  }
  auto target_s = AsString(*target, where + ".target");
  if (!target_s.ok()) return target_s.status();
  bool is_attacker = false;
  for (const TenantSpec& t : tenants) {
    if (t.name == target_s.value()) {
      is_attacker = t.role == TenantRole::kAttacker;
    }
  }
  if (!is_attacker) {
    return Bad(where + ".target",
               "\"" + target_s.value() + "\" is not an attacker-role tenant");
  }
  out->target = target_s.value();
  if (const Value* flood = v.Find("flood_rings"); flood != nullptr) {
    auto n = U64(*flood, where + ".flood_rings", 4096);
    if (!n.ok()) return n.status();
    out->flood_rings = n.value();
  }
  if (const Value* squat = v.Find("squat"); squat != nullptr) {
    auto b = AsBool(*squat, where + ".squat");
    if (!b.ok()) return b.status();
    out->squat = b.value();
  }
  return OkStatus();
}

Status ParseVerdicts(const Value& v, const std::set<std::string>& tenant_names,
                     VerdictSpec* out) {
  const std::string where = "verdicts";
  if (!v.is_object()) {
    return Bad(where, "expected an object");
  }
  if (Status s = RejectUnknownKeys(
          v,
          {"bystander_identical", "containment", "must_recover",
           "recovery_deadline_steps", "goodput_floor_pct", "queue_bound",
           "detect_abuse"},
          where);
      !s.ok()) {
    return s;
  }
  const auto parse_names = [&](const Value& arr, const std::string& at,
                               std::vector<std::string>* names) -> Status {
    if (!arr.is_array()) {
      return Bad(at, "expected an array of tenant names");
    }
    for (const Value& item : arr.AsArray()) {
      auto s = AsString(item, at);
      if (!s.ok()) return s.status();
      if (tenant_names.count(s.value()) == 0) {
        return Bad(at, "\"" + s.value() + "\" is not a declared tenant");
      }
      names->push_back(s.value());
    }
    return OkStatus();
  };
  if (const Value* b = v.Find("bystander_identical"); b != nullptr) {
    auto val = AsBool(*b, where + ".bystander_identical");
    if (!val.ok()) return val.status();
    out->bystander_identical = val.value();
  }
  if (const Value* c = v.Find("containment"); c != nullptr) {
    if (Status s = parse_names(*c, where + ".containment", &out->containment);
        !s.ok()) {
      return s;
    }
  }
  if (const Value* r = v.Find("must_recover"); r != nullptr) {
    if (Status s = parse_names(*r, where + ".must_recover", &out->must_recover);
        !s.ok()) {
      return s;
    }
  }
  if (const Value* d = v.Find("recovery_deadline_steps"); d != nullptr) {
    auto n = U64(*d, where + ".recovery_deadline_steps", 1u << 30);
    if (!n.ok()) return n.status();
    out->recovery_deadline_steps = n.value();
  }
  if (const Value* g = v.Find("goodput_floor_pct"); g != nullptr) {
    auto n = U64(*g, where + ".goodput_floor_pct", 1000);
    if (!n.ok()) return n.status();
    out->goodput_floor_pct = n.value();
  }
  if (const Value* q = v.Find("queue_bound"); q != nullptr) {
    auto val = AsBool(*q, where + ".queue_bound");
    if (!val.ok()) return val.status();
    out->queue_bound = val.value();
  }
  if (const Value* a = v.Find("detect_abuse"); a != nullptr) {
    if (!a->is_array()) {
      return Bad(where + ".detect_abuse", "expected an array");
    }
    for (const Value& item : a->AsArray()) {
      auto s = AsString(item, where + ".detect_abuse");
      if (!s.ok()) return s.status();
      if (s.value() != "flood" && s.value() != "squat" && s.value() != "desc" &&
          s.value() != "churn") {
        return Bad(where + ".detect_abuse",
                   "unknown abuse kind \"" + s.value() + "\"");
      }
      out->detect_abuse.push_back(s.value());
    }
  }
  return OkStatus();
}

void AppendQuoted(std::string& out, std::string_view s) {
  out += obs::json::Quote(s);
}

}  // namespace

std::string_view TenantRoleName(TenantRole role) {
  switch (role) {
    case TenantRole::kWorkload:
      return "workload";
    case TenantRole::kBystander:
      return "bystander";
    case TenantRole::kAttacker:
      return "attacker";
  }
  return "unknown";
}

const std::vector<std::string_view>& KnownFaultSites() {
  static const std::vector<std::string_view> kSites = {
      fault::sites::kAccelThreadAccess,
      fault::sites::kDmaHostToNic,
      fault::sites::kDmaNicToHost,
      fault::sites::kVppRxDrop,
      fault::sites::kVppRxCorrupt,
      fault::sites::kVppRxAdmissionReject,
      fault::sites::kChainCreditGrant,
      fault::sites::kBreakerProbe,
      fault::sites::kNfLaunch,
      fault::sites::kSupervisorReattest,
      fault::sites::kNfHang,
      fault::sites::kBusTimeout,
      fault::sites::kVnicDoorbellFlood,
      fault::sites::kVnicCqSquat,
      fault::sites::kVnicDescCorrupt,
      fault::sites::kVnicDescStale,
      fault::sites::kVnicQuotaChurn,
  };
  return kSites;
}

Result<ScenarioSpec> ParseScenarioSpec(std::string_view json_text) {
  auto parsed = Value::Parse(json_text);
  if (!parsed.ok()) {
    return InvalidArgument("scenario spec: " + parsed.status().message());
  }
  const Value& root = parsed.value();
  if (!root.is_object()) {
    return InvalidArgument("scenario spec: top level must be an object");
  }
  if (Status s = RejectUnknownKeys(
          root,
          {"name", "steps", "cycles_per_step", "bus_domains", "supervisor",
           "tenants", "faults", "overload", "attack", "verdicts"},
          "top level");
      !s.ok()) {
    return s;
  }

  ScenarioSpec spec;
  const Value* name = root.Find("name");
  if (name == nullptr) {
    return InvalidArgument("scenario spec: name is required");
  }
  auto name_s = AsString(*name, "name");
  if (!name_s.ok()) return name_s.status();
  spec.name = name_s.value();
  if (spec.name.empty()) {
    return InvalidArgument("scenario spec: name must be non-empty");
  }

  if (const Value* steps = root.Find("steps"); steps != nullptr) {
    auto n = U64(*steps, "steps", 10000000);
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return InvalidArgument("scenario spec: steps must be positive");
    }
    spec.steps = n.value();
  }
  if (const Value* cps = root.Find("cycles_per_step"); cps != nullptr) {
    auto n = U64(*cps, "cycles_per_step", 1000000);
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return InvalidArgument("scenario spec: cycles_per_step must be positive");
    }
    spec.cycles_per_step = n.value();
  }
  if (const Value* domains = root.Find("bus_domains"); domains != nullptr) {
    auto n = U64(*domains, "bus_domains", 64);
    if (!n.ok()) return n.status();
    spec.bus_domains = static_cast<uint32_t>(n.value());
  }
  if (const Value* sup = root.Find("supervisor"); sup != nullptr) {
    if (Status s = ParseSupervisor(*sup, &spec.supervisor); !s.ok()) {
      return s;
    }
  }

  const Value* tenants = root.Find("tenants");
  if (tenants == nullptr || !tenants->is_array() ||
      tenants->AsArray().empty()) {
    return InvalidArgument(
        "scenario spec: tenants must be a non-empty array");
  }
  std::set<std::string> names;
  std::set<uint16_t> ports;
  for (size_t i = 0; i < tenants->AsArray().size(); ++i) {
    TenantSpec tenant;
    if (Status s = ParseTenant(tenants->AsArray()[i], i, spec.bus_domains,
                               &tenant);
        !s.ok()) {
      return s;
    }
    if (!names.insert(tenant.name).second) {
      return InvalidArgument("scenario spec: duplicate tenant name \"" +
                             tenant.name + "\"");
    }
    if (!ports.insert(tenant.port).second) {
      return InvalidArgument("scenario spec: duplicate tenant port " +
                             std::to_string(tenant.port));
    }
    spec.tenants.push_back(std::move(tenant));
  }

  if (const Value* faults = root.Find("faults"); faults != nullptr) {
    if (!faults->is_array()) {
      return InvalidArgument("scenario spec: faults must be an array");
    }
    for (size_t i = 0; i < faults->AsArray().size(); ++i) {
      FaultRuleSpec rule;
      if (Status s = ParseFaultRule(faults->AsArray()[i], i, names, &rule);
          !s.ok()) {
        return s;
      }
      spec.faults.push_back(std::move(rule));
    }
  }
  if (const Value* overload = root.Find("overload"); overload != nullptr) {
    spec.has_overload = true;
    if (Status s = ParseOverload(*overload, names, &spec.overload); !s.ok()) {
      return s;
    }
  }
  if (const Value* attack = root.Find("attack"); attack != nullptr) {
    spec.has_attack = true;
    if (Status s = ParseAttack(*attack, spec.tenants, &spec.attack); !s.ok()) {
      return s;
    }
  }
  if (const Value* verdicts = root.Find("verdicts"); verdicts != nullptr) {
    if (Status s = ParseVerdicts(*verdicts, names, &spec.verdicts); !s.ok()) {
      return s;
    }
  }

  // Cross-cutting semantic checks that need the whole spec.
  if (spec.verdicts.bystander_identical) {
    bool has_bystander = false;
    for (const TenantSpec& t : spec.tenants) {
      has_bystander |= t.role == TenantRole::kBystander;
    }
    if (!has_bystander) {
      return InvalidArgument(
          "scenario spec: verdicts.bystander_identical requires a "
          "bystander-role tenant");
    }
  }
  if (spec.verdicts.queue_bound) {
    if (!spec.has_overload) {
      return InvalidArgument(
          "scenario spec: verdicts.queue_bound requires an overload section");
    }
    for (const TenantSpec& t : spec.tenants) {
      if (t.name == spec.overload.target &&
          (!t.has_policy || t.policy.rx_queue_capacity_frames == 0)) {
        return InvalidArgument(
            "scenario spec: verdicts.queue_bound requires the overload "
            "target to declare policy.rx_queue_capacity_frames");
      }
    }
  }
  if (spec.verdicts.goodput_floor_pct > 0 && !spec.has_overload) {
    return InvalidArgument(
        "scenario spec: verdicts.goodput_floor_pct requires an overload "
        "section");
  }
  if (!spec.verdicts.detect_abuse.empty() && !spec.has_attack) {
    return InvalidArgument(
        "scenario spec: verdicts.detect_abuse requires an attack section");
  }
  for (const FaultRuleSpec& rule : spec.faults) {
    if (rule.on_attempt > 0 && rule.site != fault::sites::kSupervisorReattest) {
      return InvalidArgument(
          "scenario spec: on_attempt is only meaningful at the "
          "supervisor.reattest site");
    }
  }
  return spec;
}

std::string SerializeScenarioSpec(const ScenarioSpec& spec) {
  std::string out = "{";
  out += "\"name\":";
  AppendQuoted(out, spec.name);
  out += ",\"steps\":" + std::to_string(spec.steps);
  out += ",\"cycles_per_step\":" + std::to_string(spec.cycles_per_step);
  out += ",\"bus_domains\":" + std::to_string(spec.bus_domains);

  const SupervisorSpec& sup = spec.supervisor;
  out += ",\"supervisor\":{";
  out += "\"watchdog_timeout_steps\":" +
         std::to_string(sup.watchdog_timeout_steps);
  out += ",\"backoff_base_steps\":" + std::to_string(sup.backoff_base_steps);
  out += ",\"backoff_max_steps\":" + std::to_string(sup.backoff_max_steps);
  out += ",\"backoff_jitter_pct\":" + std::to_string(sup.backoff_jitter_pct);
  out += ",\"quarantine_after\":" + std::to_string(sup.quarantine_after);
  out += ",\"stable_steps\":" + std::to_string(sup.stable_steps);
  out += ",\"max_concurrent_restarts\":" +
         std::to_string(sup.max_concurrent_restarts);
  out += ",\"verify_attestation\":";
  out += sup.verify_attestation ? "true" : "false";
  out += "}";

  out += ",\"tenants\":[";
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const TenantSpec& t = spec.tenants[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":";
    AppendQuoted(out, t.name);
    out += ",\"port\":" + std::to_string(t.port);
    out += ",\"role\":";
    AppendQuoted(out, TenantRoleName(t.role));
    out += ",\"zip_clusters\":" + std::to_string(t.zip_clusters);
    if (t.bus_domain >= 0) {
      out += ",\"bus_domain\":" + std::to_string(t.bus_domain);
    }
    out += ",\"frames_per_step\":" + std::to_string(t.frames_per_step);
    if (t.dma) {
      out += ",\"dma\":true";
    }
    if (t.has_vf) {
      out += ",\"vf\":{\"ring_slots\":" + std::to_string(t.vf.ring_slots);
      out += ",\"cq_slots\":" + std::to_string(t.vf.cq_slots);
      out += ",\"posted_bytes_limit\":" +
             std::to_string(t.vf.posted_bytes_limit);
      out +=
          ",\"abuse_threshold\":" + std::to_string(t.vf.abuse_threshold) + "}";
    }
    if (t.has_policy) {
      const OverloadPolicySpec& p = t.policy;
      out += ",\"policy\":{\"rx_queue_capacity_frames\":" +
             std::to_string(p.rx_queue_capacity_frames);
      out += ",\"tx_queue_capacity_frames\":" +
             std::to_string(p.tx_queue_capacity_frames);
      out += ",\"priority_early_drop\":";
      out += p.priority_early_drop ? "true" : "false";
      out += ",\"admission_burst_frames\":" +
             std::to_string(p.admission_burst_frames);
      out += ",\"admission_frames_per_refill\":" +
             std::to_string(p.admission_frames_per_refill);
      out += ",\"admission_refill_cycles\":" +
             std::to_string(p.admission_refill_cycles);
      out += ",\"deadline_cycles\":" + std::to_string(p.deadline_cycles) + "}";
    }
    out += "}";
  }
  out += "]";

  if (!spec.faults.empty()) {
    out += ",\"faults\":[";
    for (size_t i = 0; i < spec.faults.size(); ++i) {
      const FaultRuleSpec& r = spec.faults[i];
      out += i == 0 ? "{" : ",{";
      out += "\"site\":";
      AppendQuoted(out, r.site);
      if (!r.nf.empty()) {
        out += ",\"nf\":";
        AppendQuoted(out, r.nf);
      }
      if (r.has_raw_id) {
        out += ",\"raw_id\":" + std::to_string(r.raw_id);
      }
      out += ",\"skip\":" + std::to_string(r.skip);
      if (r.count == fault::FaultRule::kForever) {
        out += ",\"count\":\"forever\"";
      } else {
        out += ",\"count\":" + std::to_string(r.count);
      }
      out += ",\"period\":" + std::to_string(r.period);
      if (r.probability < 1.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ",\"probability\":%.6f",
                      r.probability);
        out += buf;
      }
      if (r.stall_cycles > 0) {
        out += ",\"stall_cycles\":" + std::to_string(r.stall_cycles);
      }
      if (r.on_attempt > 0) {
        out += ",\"on_attempt\":" + std::to_string(r.on_attempt);
      }
      out += "}";
    }
    out += "]";
  }

  if (spec.has_overload) {
    const OverloadSpec& o = spec.overload;
    out += ",\"overload\":{\"target\":";
    AppendQuoted(out, o.target);
    out += ",\"load_pct\":" + std::to_string(o.load_pct);
    out += ",\"baseline_pct\":" + std::to_string(o.baseline_pct);
    out += ",\"service_per_step\":" + std::to_string(o.service_per_step) + "}";
  }
  if (spec.has_attack) {
    const AttackSpec& a = spec.attack;
    out += ",\"attack\":{\"target\":";
    AppendQuoted(out, a.target);
    out += ",\"flood_rings\":" + std::to_string(a.flood_rings);
    out += ",\"squat\":";
    out += a.squat ? "true" : "false";
    out += "}";
  }

  const VerdictSpec& verdict = spec.verdicts;
  out += ",\"verdicts\":{";
  out += "\"bystander_identical\":";
  out += verdict.bystander_identical ? "true" : "false";
  const auto names_array = [&out](const char* key,
                                  const std::vector<std::string>& names) {
    out += ",\"";
    out += key;
    out += "\":[";
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ",";
      AppendQuoted(out, names[i]);
    }
    out += "]";
  };
  if (!verdict.containment.empty()) {
    names_array("containment", verdict.containment);
  }
  if (!verdict.must_recover.empty()) {
    names_array("must_recover", verdict.must_recover);
  }
  if (verdict.recovery_deadline_steps > 0) {
    out += ",\"recovery_deadline_steps\":" +
           std::to_string(verdict.recovery_deadline_steps);
  }
  if (verdict.goodput_floor_pct > 0) {
    out +=
        ",\"goodput_floor_pct\":" + std::to_string(verdict.goodput_floor_pct);
  }
  out += ",\"queue_bound\":";
  out += verdict.queue_bound ? "true" : "false";
  if (!verdict.detect_abuse.empty()) {
    names_array("detect_abuse", verdict.detect_abuse);
  }
  out += "}}";
  return out;
}

ScenarioSpec BaselineTwin(const ScenarioSpec& spec) {
  ScenarioSpec twin = spec;
  twin.faults.clear();
  if (twin.has_attack) {
    twin.attack.flood_rings = 0;
    twin.attack.squat = false;
  }
  if (twin.has_overload) {
    twin.overload.load_pct = twin.overload.baseline_pct;
  }
  return twin;
}

}  // namespace snic::scenario
