// Scenario runner: lowers a declarative ScenarioSpec onto the existing
// harness pieces — SnicDevice, Supervisor, FaultPlane, the vNIC front-end,
// the overload plane and the temporal-partition bus — and evaluates the
// spec's verdict predicates.
//
// RunConstellation is the generic step loop the three bespoke soaks
// specialize by hand: per-tenant roles pick behavior (workload = chaos
// victim with DMA/accel crash reporting; bystander = poll/digest/echo with
// the full observable record; attacker = hostile VF moves), the overload
// section drives an offered-load accumulator at the target, and the fault
// schedule is installed verbatim. Everything is seeded through
// runtime::DeriveTaskSeed lanes exactly like the soaks, so a (spec, seed)
// pair replays bit-for-bit at any --jobs count.
//
// EvaluateScenario runs the subject spec, runs the stripped BaselineTwin
// when a differential predicate needs it, and reduces both to a one-line
// pass/fail verdict. Every spec gets a verdict; there is no silent skip.

#ifndef SNIC_SCENARIO_RUNNER_H_
#define SNIC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mgmt/supervisor.h"
#include "src/scenario/spec.h"

namespace snic::scenario {

// Per-tenant outcome of one constellation run. `report` is the tenant's
// full observable record (the byte-identity artifact); the rest feed the
// containment/recovery predicates.
struct TenantOutcome {
  std::string report;
  mgmt::NfHealth final_health = mgmt::NfHealth::kRunning;
  bool degraded = false;
  bool edge_quarantined = false;   // vNIC front-end verdict (VF tenants)
  uint64_t restarts = 0;           // successful relaunches of this tenant
  uint64_t crashes_seen = 0;       // driver-observed crash reports
  // Recovery-deadline SLO inputs: the worst crash -> (Running|Quarantined)
  // gap in steps, and crashes still unresolved when the run ended (their
  // gap is measured against the final step).
  uint64_t worst_recovery_steps = 0;
  uint64_t unresolved_crashes = 0;
  uint64_t wire_packets = 0;       // frames this tenant put on the wire
};

struct RunResult {
  std::vector<TenantOutcome> tenants;  // spec declaration order
  mgmt::SupervisorStats supervisor;
  uint64_t restart_queue_peak = 0;
  uint64_t faults_injected = 0;
  // Overload-target accounting (zero when the spec has no overload section).
  uint64_t offered = 0;
  uint64_t target_goodput = 0;        // the target's wire egress
  uint64_t queue_peak_frames = 0;
  uint64_t queue_peak_bytes = 0;
  // Abuse verdicts routed by the front-end: per-kind counts on attacker
  // VFs, plus false flags on anyone else's VF.
  uint64_t abuse_reports[4] = {0, 0, 0, 0};
  uint64_t false_abuse_flags = 0;
};

// Runs `spec` to completion from `seed`. Deterministic: same (spec, seed)
// always produces the same RunResult, on any thread.
RunResult RunConstellation(const ScenarioSpec& spec, uint64_t seed);

// One scenario's verdict. `detail` lists every evaluated predicate as
// name=ok or name=FAIL(reason), space-separated — a spec with no predicates
// evaluates to detail "no-predicates" and passes vacuously (the generator
// never mints such specs; curated ones always assert something).
struct ScenarioVerdict {
  bool pass = false;
  std::string detail;
};

// Runs the subject spec (and the BaselineTwin when bystander_identical or
// goodput_floor_pct needs a differential), then checks every predicate in
// spec.verdicts.
ScenarioVerdict EvaluateScenario(const ScenarioSpec& spec, uint64_t seed);

// The frame geometry the runner's traffic generator uses: 54-byte headers
// plus payload 32 + NextBounded(4)*64. Byte-form queue bounds derive from
// this (the overload soak's kMaxFrameBytes).
inline constexpr uint64_t kMaxFrameBytes = 54 + 32 + 3 * 64;

}  // namespace snic::scenario

#endif  // SNIC_SCENARIO_RUNNER_H_
