// Record digesting shared by the scenario runner and the differential
// soaks (bench/soak_common.h re-exports these into snic::bench).
//
// The byte-identity verdicts all reduce a tenant's observable record —
// packet bytes, bus grant times, stat words, trace-lane spans — to FNV-1a
// digests and compare those. Keeping the digest primitives here (the lowest
// scenario-layer header, no deps beyond obs) gives the bespoke soaks and
// the declarative runner the same notion of "identical record".

#ifndef SNIC_SCENARIO_DIGEST_H_
#define SNIC_SCENARIO_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/obs/trace_ring.h"

namespace snic::scenario {

// FNV-1a 64-bit running digest over packet bytes, grant times, stat words —
// the byte-identity invariant is "these digests match".
struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void Mix(const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ p[i]) * 1099511628211ull;
    }
  }
  void Mix64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Mix(b, 8);
  }
};

// A tenant's lane of a trace, reduced to (event count, digest).
struct LaneDigest {
  uint64_t count = 0;
  uint64_t digest = 0;
};

// Digest of the binary span records on `pid`'s lane. Names are resolved to
// strings so the digest is independent of interning order.
inline LaneDigest DigestRingLane(const obs::TraceRing& ring, uint32_t pid) {
  Fnv fnv;
  LaneDigest lane;
  for (size_t i = 0; i < ring.size(); ++i) {
    const obs::TraceRecord& r = ring.record(i);
    if (r.pid != pid) {
      continue;
    }
    const std::string_view name = ring.NameOf(r.name);
    fnv.Mix(reinterpret_cast<const uint8_t*>(name.data()), name.size());
    fnv.Mix64(r.ts);
    fnv.Mix64(r.span);
    fnv.Mix64(r.arg);
    fnv.Mix64(r.tid);
    ++lane.count;
  }
  lane.digest = fnv.h;
  return lane;
}

}  // namespace snic::scenario

#endif  // SNIC_SCENARIO_DIGEST_H_
