// Seeded scenario families for bench/scenario_matrix.
//
// GenerateScenarios mints ~190 ScenarioSpecs deterministically from one
// seed, in six families:
//
//   A  single-site sweeps        one registered fault site at a time,
//                                varied skip/count/period, against the
//                                standard victim/bystander constellation
//   B  correlated bursts         multi-site, multi-tenant fault bursts in
//                                one window, half with the Supervisor's
//                                restart cap at 1 (queue drains per tick)
//   C  crash-during-recovery     a forever crash loop plus a
//                                supervisor.reattest rule keyed to the Nth
//                                relaunch attempt — containment latches
//   D  overload sweeps           offered-load factors against a policied
//                                target; queue bounds and goodput floors
//   E  vNIC attack sweeps        the hostile-tenant attack shapes at
//                                several intensities behind VFs
//   F  compound                  fault-during-recovery + overload, and
//                                attack + overload, in one scenario
//
// Every generated spec round-trips through SerializeScenarioSpec /
// ParseScenarioSpec (pinned by tests/scenario_test.cc), and every spec
// carries at least one verdict predicate. The same (seed) always yields
// the same vector, independent of thread count — the generator draws from
// family-private Rng lanes, never global state.

#ifndef SNIC_SCENARIO_GENERATOR_H_
#define SNIC_SCENARIO_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/scenario/spec.h"

namespace snic::scenario {

std::vector<ScenarioSpec> GenerateScenarios(uint64_t seed);

}  // namespace snic::scenario

#endif  // SNIC_SCENARIO_GENERATOR_H_
