#include "src/common/status.h"

namespace snic {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kAlreadyOwned:
      return "ALREADY_OWNED";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace snic
