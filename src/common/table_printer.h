// Aligned plain-text table printer for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figure series;
// this printer renders rows with the same headings the paper uses so that
// output can be eyeballed against the publication directly.

#ifndef SNIC_COMMON_TABLE_PRINTER_H_
#define SNIC_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace snic {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; the row must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the table with a header rule and per-column alignment.
  std::string ToString() const;

  // Convenience: formats a double with `decimals` fraction digits.
  static std::string Fmt(double v, int decimals);
  // Formats a percentage ("8.37%").
  static std::string Pct(double ratio, int decimals);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snic

#endif  // SNIC_COMMON_TABLE_PRINTER_H_
