// Annotated mutex primitives for clang thread-safety analysis
// (docs/STATIC_ANALYSIS.md).
//
// std::mutex / std::lock_guard carry no capability attributes, so clang's
// `-Wthread-safety` cannot see their acquire/release pairs. These thin
// wrappers are the project's lockable types: same semantics and cost as the
// std primitives (everything inlines to the underlying calls), plus the
// contracts the analysis needs. All mutex-guarded state in the tree
// (runtime::ThreadPool, obs::MetricRegistry) locks through them.

#ifndef SNIC_COMMON_MUTEX_H_
#define SNIC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace snic {

// std::mutex with capability annotations. Lowercase lock/unlock keep it a
// standard BasicLockable, so CondVar (condition_variable_any) waits on it
// directly and std facilities remain usable where analysis is off.
class SNIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SNIC_ACQUIRE() { mu_.lock(); }
  void unlock() SNIC_RELEASE() { mu_.unlock(); }
  bool try_lock() SNIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock, the project's std::lock_guard.
class SNIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SNIC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() SNIC_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable over Mutex. Wait() releases and reacquires the mutex
// internally; the caller-side contract is simply "hold mu". The body is
// exempt from analysis because the release/reacquire happens inside
// std::condition_variable_any, which the analysis cannot see into.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Callers re-test their predicate in a while loop (spurious wakeups).
  void Wait(Mutex& mu) SNIC_REQUIRES(mu) SNIC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace snic

#endif  // SNIC_COMMON_MUTEX_H_
