// Size and time unit helpers. All byte quantities in the codebase are u64 in
// bytes; these helpers exist so that configuration sites read like the paper
// ("2 MB pages", "4 MB L2", "24.7 W").

#ifndef SNIC_COMMON_UNITS_H_
#define SNIC_COMMON_UNITS_H_

#include <cstdint>

namespace snic {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

// Bytes -> mebibytes as a double (for table printing; the paper reports MB
// with two decimals, meaning MiB in its profiling tables).
constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

constexpr uint64_t MiBToBytes(double mib) {
  return static_cast<uint64_t>(mib * static_cast<double>(kMiB));
}

// Ceiling division for page/entry counts.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Hours in three years (the paper's TCO horizon).
inline constexpr double kHoursPerYear = 8760.0;

}  // namespace snic

#endif  // SNIC_COMMON_UNITS_H_
