#include "src/common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "src/common/status.h"

namespace snic {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SNIC_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SNIC_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) {
        line += "  ";
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TablePrinter::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::Pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace snic
