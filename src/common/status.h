// Lightweight status / result vocabulary used across the S-NIC libraries.
//
// The simulator and trusted-instruction layer report recoverable failures as
// values (a `Status` or a `Result<T>`), never via exceptions: the code models
// hardware whose instructions "fail" by returning condition codes, so the API
// mirrors that. Programmer errors use assertions (`SNIC_CHECK`).

#ifndef SNIC_COMMON_STATUS_H_
#define SNIC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace snic {

// Error categories mirroring the failure modes of the S-NIC trusted
// instructions (Table 1 of the paper) plus generic library failures.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,    // malformed request (bad mask, bad pointer, bad size)
  kResourceExhausted,  // cores / pages / clusters / buffer space unavailable
  kAlreadyOwned,       // a requested physical resource belongs to a live NF
  kNotFound,           // unknown NF id, missing rule, absent mapping
  kPermissionDenied,   // denylist / TLB / bus-reservation violation
  kFailedPrecondition, // operation invalid in the current state
  kInternal,           // invariant violation inside the library
  kUnimplemented,      // feature intentionally out of scope
  kUnavailable,        // transient failure (injected fault, stalled unit)
};

// Human-readable name for an error code (stable, for logs and tests).
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status AlreadyOwned(std::string msg) {
  return Status(ErrorCode::kAlreadyOwned, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(ErrorCode::kUnimplemented, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}

// A value-or-error. `value()` asserts on the error path; callers are expected
// to test `ok()` first (the tests enforce this discipline).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {}   // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(data_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(data_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(data_));
  }

  // Status of the error path; OkStatus() when holding a value.
  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(data_);
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

// Fatal assertion for programmer errors / broken invariants.
#define SNIC_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SNIC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SNIC_CHECK_OK(expr)                                                  \
  do {                                                                       \
    const ::snic::Status snic_check_status_ = (expr);                        \
    if (!snic_check_status_.ok()) {                                          \
      std::fprintf(stderr, "SNIC_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, snic_check_status_.ToString().c_str());         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace snic

#endif  // SNIC_COMMON_STATUS_H_
