#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace snic {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

void SampleSet::Add(double v) {
  if (std::isnan(v)) {
    ++nan_dropped_;
    return;
  }
  samples_.push_back(v);
}

double SampleSet::Min() const {
  if (samples_.empty()) {
    return kNan;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::Max() const {
  if (samples_.empty()) {
    return kNan;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return kNan;
  }
  double acc = 0.0;
  for (double v : samples_) {
    acc += v;
  }
  return acc / static_cast<double>(samples_.size());
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return kNan;
  }
  SNIC_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::StdDev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SNIC_CHECK(hi > lo);
  SNIC_CHECK(buckets > 0);
}

void Histogram::Add(double v) {
  if (std::isnan(v)) {
    ++nan_count_;
    return;
  }
  const double span = hi_ - lo_;
  double pos = (v - lo_) / span * static_cast<double>(counts_.size());
  if (pos < 0.0) {
    pos = 0.0;
  }
  auto idx = static_cast<size_t>(pos);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

bool Histogram::MergeFrom(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  nan_count_ += other.nan_count_;
  return true;
}

double Histogram::BucketLow(size_t i) const {
  SNIC_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace snic
