// Zipf-distributed rank sampler.
//
// The paper's gem5 experiments draw packets from "a pool of 100,000 flows ...
// with a Zipf distribution with a skewness of 1.1" (§5.3). This sampler
// produces ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^s.

#ifndef SNIC_COMMON_ZIPF_H_
#define SNIC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace snic {

class ZipfSampler {
 public:
  // n: number of ranks; s: skewness exponent (> 0).
  // Precomputes the CDF once; sampling is then O(log n) by binary search.
  ZipfSampler(uint64_t n, double s);

  // Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Probability mass of a given rank (for tests / analytics).
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double s_;
  double norm_;               // generalized harmonic number H_{n,s}
  std::vector<double> cdf_;   // cdf_[k] = P(rank <= k)
};

}  // namespace snic

#endif  // SNIC_COMMON_ZIPF_H_
