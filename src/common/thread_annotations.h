// Clang thread-safety-analysis capability macros (docs/STATIC_ANALYSIS.md).
//
// The parallel sweep runtime's contract splits shared state into two
// classes: mutex-guarded registry-level maps (MetricRegistry, ThreadPool's
// queue) and single-owner values (metric series, TraceLog, FaultPlane,
// Supervisor). These macros make the first class machine-checked: every
// guarded field carries SNIC_GUARDED_BY(mu_), every lock-taking function an
// acquire/release contract, and CI builds the tree with clang's
// `-Wthread-safety -Werror`, so an unguarded access is a build failure
// rather than a TSan flake.
//
// Under compilers without the capability attributes (gcc) every macro
// expands to nothing; the annotations are contracts, not code.

#ifndef SNIC_COMMON_THREAD_ANNOTATIONS_H_
#define SNIC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SNIC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SNIC_THREAD_ANNOTATION
#define SNIC_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock/capability (e.g. snic::Mutex).
#define SNIC_CAPABILITY(name) SNIC_THREAD_ANNOTATION(capability(name))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (e.g. snic::MutexLock).
#define SNIC_SCOPED_CAPABILITY SNIC_THREAD_ANNOTATION(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define SNIC_GUARDED_BY(x) SNIC_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability.
#define SNIC_PT_GUARDED_BY(x) SNIC_THREAD_ANNOTATION(pt_guarded_by(x))

// Function that must be called while holding the given capability(ies).
#define SNIC_REQUIRES(...) \
  SNIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function that acquires / releases the given capability(ies).
#define SNIC_ACQUIRE(...) \
  SNIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SNIC_RELEASE(...) \
  SNIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function that acquires the capability when it returns `ret`.
#define SNIC_TRY_ACQUIRE(ret, ...) \
  SNIC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

// Function that must NOT be called while holding the given capability
// (guards against self-deadlock on non-reentrant mutexes).
#define SNIC_EXCLUDES(...) SNIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function returning a reference to the named capability.
#define SNIC_RETURN_CAPABILITY(x) SNIC_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function's body is exempt from analysis (its
// caller-side contract annotations still apply). Use only where the
// locking pattern is inexpressible, and say why at the site.
#define SNIC_NO_THREAD_SAFETY_ANALYSIS \
  SNIC_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SNIC_COMMON_THREAD_ANNOTATIONS_H_
