// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the repository (trace generation, workload
// sampling, key generation in tests) takes an explicit `Rng&` so experiments
// are reproducible bit-for-bit from a seed, as required for regenerating the
// paper's tables.
//
// There is deliberately no global, thread-local, or `static` generator state
// anywhere in this header (audited for the parallel sweep runtime): every
// stream lives in an Rng instance, so per-task generators seeded via
// runtime::DeriveTaskSeed(base_seed, task_index) are fully independent and
// schedule-invariant.

#ifndef SNIC_COMMON_RNG_H_
#define SNIC_COMMON_RNG_H_

#include <cstdint>

namespace snic {

// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
// Not cryptographically secure; crypto code uses its own DRBG.
class Rng {
 public:
  // Seeds the four 64-bit words of state via SplitMix64 so that any seed
  // (including 0) yields a well-mixed state.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(x);
    }
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias (matters for Zipf rank draws over large flow pools).
  uint64_t NextBounded(uint64_t bound) {
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // One SplitMix64 step: advances `x` and returns a well-mixed 64-bit value.
  // Public so seed-derivation schemes (runtime::DeriveTaskSeed) share the
  // same mixing function the constructor uses.
  static uint64_t SplitMix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace snic

#endif  // SNIC_COMMON_RNG_H_
