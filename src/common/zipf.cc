#include "src/common/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace snic {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  SNIC_CHECK(n > 0);
  SNIC_CHECK(s > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (auto& v : cdf_) {
    v /= norm_;
  }
  cdf_.back() = 1.0;  // guard against accumulated floating-point error
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint64_t rank) const {
  SNIC_CHECK(rank < n_);
  return 1.0 / std::pow(static_cast<double>(rank + 1), s_) / norm_;
}

}  // namespace snic
