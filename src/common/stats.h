// Small descriptive-statistics helpers used by the benchmark harnesses.
//
// The paper reports medians with 1st/99th percentile error bars (Fig. 5) and
// medians over 10 runs (§5.1); these helpers compute exactly those summaries.

#ifndef SNIC_COMMON_STATS_H_
#define SNIC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snic {

// Accumulates samples; computes order statistics on demand.
//
// Defined edge-case behavior (the metrics layer queries possibly-empty
// series): NaN inputs are dropped (and counted via nan_dropped()); Min / Max
// / Mean / Percentile on an empty set return quiet NaN rather than aborting.
class SampleSet {
 public:
  void Add(double v);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // NaN inputs rejected by Add since construction.
  uint64_t nan_dropped() const { return nan_dropped_; }

  double Min() const;   // NaN when empty
  double Max() const;   // NaN when empty
  double Mean() const;  // NaN when empty
  double Median() const { return Percentile(50.0); }

  // Linear-interpolated percentile, p in [0, 100]; NaN when empty.
  double Percentile(double p) const;

  // Sample standard deviation (n-1 denominator); 0 for n < 2.
  double StdDev() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  uint64_t nan_dropped_ = 0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
// edge buckets, NaN samples are dropped and counted separately. Used by
// trace statistics, the metrics layer, and the bus-interference ablation.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double v);
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  size_t NumBuckets() const { return counts_.size(); }
  uint64_t TotalCount() const { return total_; }
  uint64_t NanCount() const { return nan_count_; }
  double BucketLow(size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  // Bucket-wise addition of another histogram's counts (used when merging
  // per-worker metric shards). Returns false — leaving *this untouched —
  // when the geometries ([lo, hi) or bucket count) differ.
  bool MergeFrom(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t nan_count_ = 0;
};

}  // namespace snic

#endif  // SNIC_COMMON_STATS_H_
