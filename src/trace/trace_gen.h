// Synthetic trace generation.
//
// The paper evaluates on a 2016 CAIDA backbone trace (26.7M TCP flows,
// 1.34B packets) and a 2010 iCTF trace from which it uniformly samples
// 100,000 flows; the gem5 experiments then draw packets from that pool with
// "a Zipf distribution with a skewness of 1.1" (§5.3). Neither trace ships
// with this repository, so this module synthesizes equivalent streams: a
// deterministic flow pool, Zipf(s) popularity, empirical-shaped packet
// sizes, and Poisson arrivals. The substitution preserves everything the
// evaluation consumes — flow-popularity skew, flow count, packet sizes.

#ifndef SNIC_TRACE_TRACE_GEN_H_
#define SNIC_TRACE_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/net/five_tuple.h"
#include "src/net/packet.h"
#include "src/net/parser.h"

namespace snic::trace {

// A weighted packet-size bucket (frame length in bytes).
struct SizeBucket {
  size_t frame_len;
  double weight;
};

struct TraceConfig {
  uint64_t num_flows = 100'000;
  double zipf_skew = 1.1;
  uint64_t seed = 1;
  std::vector<SizeBucket> size_buckets;
  // Mean packet inter-arrival (exponential); 0 disables timestamps.
  double mean_interarrival_ns = 1000.0;
  // Fraction of payload bytes drawn uniformly at random (the rest are a
  // repeating ASCII filler). Governs compressibility for the ZIP accelerator.
  double payload_entropy = 0.5;
  // Fraction of TCP vs UDP flows.
  double tcp_fraction = 1.0;

  // CAIDA-2016-like preset: backbone mix of small ACKs and MTU data packets.
  static TraceConfig CaidaLike(uint64_t seed = 1);
  // iCTF-2010-like preset: 100k flows, smaller packets, mixed TCP/UDP.
  static TraceConfig IctfLike(uint64_t seed = 1);
};

// Deterministic pool of flow 5-tuples. Rank k always maps to the same tuple
// for a given seed; distinct ranks map to distinct tuples.
class FlowTable {
 public:
  FlowTable(uint64_t num_flows, uint64_t seed);

  const net::FiveTuple& TupleForRank(uint64_t rank) const;
  uint64_t size() const { return static_cast<uint64_t>(flows_.size()); }

 private:
  std::vector<net::FiveTuple> flows_;
};

// Generates a packet stream per the config. Each Next() draws a flow by
// Zipf rank, a frame size by bucket weight, and stamps a Poisson arrival.
class PacketStream {
 public:
  explicit PacketStream(const TraceConfig& config);

  net::Packet Next();

  // Generates `n` packets up front (convenient for replay experiments).
  std::vector<net::Packet> Generate(size_t n);

  const FlowTable& flows() const { return flows_; }
  const TraceConfig& config() const { return config_; }

 private:
  TraceConfig config_;
  Rng rng_;
  ZipfSampler zipf_;
  FlowTable flows_;
  std::vector<double> size_cdf_;
  uint64_t clock_ns_ = 0;
};

// Summary statistics over a generated stream (used by tests and the trace
// inspection example).
struct TraceStats {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t distinct_flows = 0;
  double top_flow_fraction = 0.0;  // share of packets in the hottest flow

  static TraceStats Compute(const std::vector<net::Packet>& packets);
};

}  // namespace snic::trace

#endif  // SNIC_TRACE_TRACE_GEN_H_
