// Trace serialization: a compact binary format for generated packet traces,
// so experiment inputs can be produced once, stored, diffed, and replayed
// bit-identically across runs and machines (the reproducibility story for
// every trace-driven bench).
//
// Format (little-endian):
//   magic "SNTR" | u32 version | u64 packet count
//   per packet: u64 arrival_ns | u64 flow_rank | u32 frame_len | bytes

#ifndef SNIC_TRACE_TRACE_IO_H_
#define SNIC_TRACE_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/packet.h"

namespace snic::trace {

inline constexpr uint32_t kTraceFormatVersion = 1;

// In-memory serialization.
std::vector<uint8_t> SerializeTrace(const std::vector<net::Packet>& packets);
Result<std::vector<net::Packet>> DeserializeTrace(
    std::span<const uint8_t> bytes);

// File helpers.
Status WriteTraceFile(const std::string& path,
                      const std::vector<net::Packet>& packets);
Result<std::vector<net::Packet>> ReadTraceFile(const std::string& path);

}  // namespace snic::trace

#endif  // SNIC_TRACE_TRACE_IO_H_
