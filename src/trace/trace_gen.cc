#include "src/trace/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/status.h"
#include "src/net/headers.h"

namespace snic::trace {

TraceConfig TraceConfig::CaidaLike(uint64_t seed) {
  TraceConfig c;
  c.num_flows = 100'000;
  c.zipf_skew = 1.1;
  c.seed = seed;
  // Backbone bimodal mix: TCP ACK minimum frames, mid-size, and MTU data.
  c.size_buckets = {{64, 0.45}, {256, 0.10}, {576, 0.10}, {1514, 0.35}};
  c.mean_interarrival_ns = 700.0;
  c.payload_entropy = 0.6;
  c.tcp_fraction = 1.0;  // the paper counts TCP flows in this trace
  return c;
}

TraceConfig TraceConfig::IctfLike(uint64_t seed) {
  TraceConfig c;
  c.num_flows = 100'000;
  c.zipf_skew = 1.1;
  c.seed = seed;
  c.size_buckets = {{64, 0.35}, {128, 0.20}, {512, 0.25}, {1514, 0.20}};
  c.mean_interarrival_ns = 1000.0;
  c.payload_entropy = 0.35;  // CTF traffic: lots of ASCII protocol chatter
  c.tcp_fraction = 0.8;
  return c;
}

FlowTable::FlowTable(uint64_t num_flows, uint64_t seed) {
  SNIC_CHECK(num_flows > 0);
  Rng rng(seed ^ 0xf10575ab1eULL);
  flows_.reserve(num_flows);
  for (uint64_t i = 0; i < num_flows; ++i) {
    net::FiveTuple t;
    // Distinctness by construction: encode the rank into the source fields.
    t.src_ip = 0x0a000000u | static_cast<uint32_t>(i >> 14);      // 10.x.x.x
    t.src_port = static_cast<uint16_t>(1024 + (i & 0x3fff));
    // Destinations concentrate on a pool of popular servers (as in backbone
    // traffic); this keeps route/LPM working sets realistic.
    t.dst_ip = 0xc0a80000u | (rng.NextU32() & 0x0fff);            // 192.168/20
    t.dst_port = static_cast<uint16_t>(1 + rng.NextBounded(1023));
    t.protocol = static_cast<uint8_t>(net::IpProto::kTcp);
    flows_.push_back(t);
  }
}

const net::FiveTuple& FlowTable::TupleForRank(uint64_t rank) const {
  SNIC_CHECK(rank < flows_.size());
  return flows_[rank];
}

PacketStream::PacketStream(const TraceConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_flows, config.zipf_skew),
      flows_(config.num_flows, config.seed) {
  SNIC_CHECK(!config_.size_buckets.empty());
  double total = 0.0;
  for (const SizeBucket& b : config_.size_buckets) {
    SNIC_CHECK(b.weight > 0.0);
    total += b.weight;
  }
  double acc = 0.0;
  for (const SizeBucket& b : config_.size_buckets) {
    acc += b.weight / total;
    size_cdf_.push_back(acc);
  }
  size_cdf_.back() = 1.0;
}

net::Packet PacketStream::Next() {
  const uint64_t rank = zipf_.Sample(rng_);
  net::FiveTuple tuple = flows_.TupleForRank(rank);
  if (config_.tcp_fraction < 1.0 &&
      rng_.NextDouble() >= config_.tcp_fraction) {
    tuple.protocol = static_cast<uint8_t>(net::IpProto::kUdp);
  }

  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(size_cdf_.begin(), size_cdf_.end(), u);
  const size_t frame_len =
      config_.size_buckets[static_cast<size_t>(it - size_cdf_.begin())]
          .frame_len;

  net::PacketBuilder builder;
  builder.SetTuple(tuple).SetFrameLen(frame_len);

  net::Packet pkt = builder.Build();
  // Fill the payload region per the configured entropy.
  auto bytes = pkt.mutable_bytes();
  const size_t header =
      net::kEthernetHeaderLen + net::kIpv4MinHeaderLen +
      (tuple.protocol == static_cast<uint8_t>(net::IpProto::kTcp)
           ? net::kTcpMinHeaderLen
           : net::kUdpHeaderLen);
  static constexpr char kFiller[] = "GET /index.html HTTP/1.1 Host: snic ";
  for (size_t i = header; i < bytes.size(); ++i) {
    if (rng_.NextDouble() < config_.payload_entropy) {
      bytes[i] = static_cast<uint8_t>(rng_.NextU32());
    } else {
      bytes[i] = static_cast<uint8_t>(kFiller[(i - header) % (sizeof(kFiller) - 1)]);
    }
  }

  if (config_.mean_interarrival_ns > 0.0) {
    // Exponential inter-arrival via inverse transform.
    const double gap =
        -config_.mean_interarrival_ns * std::log(1.0 - rng_.NextDouble());
    clock_ns_ += static_cast<uint64_t>(gap) + 1;
  }
  pkt.set_arrival_ns(clock_ns_);
  pkt.set_flow_rank(rank);
  return pkt;
}

std::vector<net::Packet> PacketStream::Generate(size_t n) {
  std::vector<net::Packet> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Next());
  }
  return out;
}

TraceStats TraceStats::Compute(const std::vector<net::Packet>& packets) {
  TraceStats stats;
  std::unordered_map<uint64_t, uint64_t> per_flow;
  for (const net::Packet& p : packets) {
    ++stats.packets;
    stats.bytes += p.size();
    ++per_flow[p.flow_rank()];
  }
  stats.distinct_flows = per_flow.size();
  uint64_t top = 0;
  for (const auto& [rank, count] : per_flow) {
    top = std::max(top, count);
  }
  if (stats.packets > 0) {
    stats.top_flow_fraction =
        static_cast<double>(top) / static_cast<double>(stats.packets);
  }
  return stats;
}

}  // namespace snic::trace
