#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>

namespace snic::trace {
namespace {

constexpr char kMagic[4] = {'S', 'N', 'T', 'R'};

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(std::span<const uint8_t> in, size_t& pos, uint32_t* v) {
  if (pos + 4 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | in[pos + static_cast<size_t>(i)];
  }
  pos += 4;
  return true;
}

bool GetU64(std::span<const uint8_t> in, size_t& pos, uint64_t* v) {
  if (pos + 8 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | in[pos + static_cast<size_t>(i)];
  }
  pos += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeTrace(const std::vector<net::Packet>& packets) {
  std::vector<uint8_t> out;
  out.reserve(16);
  for (char c : kMagic) {
    out.push_back(static_cast<uint8_t>(c));
  }
  PutU32(out, kTraceFormatVersion);
  PutU64(out, packets.size());
  for (const net::Packet& p : packets) {
    PutU64(out, p.arrival_ns());
    PutU64(out, p.flow_rank());
    PutU32(out, static_cast<uint32_t>(p.size()));
    out.insert(out.end(), p.bytes().begin(), p.bytes().end());
  }
  return out;
}

Result<std::vector<net::Packet>> DeserializeTrace(
    std::span<const uint8_t> bytes) {
  size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return InvalidArgument("bad trace magic");
  }
  pos = 4;
  uint32_t version = 0;
  if (!GetU32(bytes, pos, &version) || version != kTraceFormatVersion) {
    return InvalidArgument("unsupported trace version");
  }
  uint64_t count = 0;
  if (!GetU64(bytes, pos, &count)) {
    return InvalidArgument("truncated trace header");
  }
  std::vector<net::Packet> packets;
  packets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t arrival = 0, rank = 0;
    uint32_t len = 0;
    if (!GetU64(bytes, pos, &arrival) || !GetU64(bytes, pos, &rank) ||
        !GetU32(bytes, pos, &len)) {
      return InvalidArgument("truncated packet header");
    }
    if (pos + len > bytes.size()) {
      return InvalidArgument("truncated packet body");
    }
    net::Packet packet(std::vector<uint8_t>(
        bytes.begin() + static_cast<ptrdiff_t>(pos),
        bytes.begin() + static_cast<ptrdiff_t>(pos + len)));
    packet.set_arrival_ns(arrival);
    packet.set_flow_rank(rank);
    packets.push_back(std::move(packet));
    pos += len;
  }
  return packets;
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<net::Packet>& packets) {
  const std::vector<uint8_t> bytes = SerializeTrace(packets);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgument("cannot open trace file for writing: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

Result<std::vector<net::Packet>> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return InvalidArgument("cannot open trace file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Internal("short read from " + path);
  }
  return DeserializeTrace(std::span<const uint8_t>(bytes.data(), bytes.size()));
}

}  // namespace snic::trace
