// Arbitrary-precision unsigned integers, from scratch.
//
// This is the arithmetic substrate for the attestation protocol: classic
// Diffie-Hellman (modular exponentiation over a safe prime) and RSA
// signatures (Appendix A). The implementation favors clarity and testability
// over peak performance; attestation happens once per function launch, and
// the paper's co-processor latency model (Fig. 6) governs reported timings.

#ifndef SNIC_CRYPTO_BIGNUM_H_
#define SNIC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"

namespace snic::crypto {

// Unsigned big integer stored little-endian in 32-bit limbs.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(uint64_t value);

  // Parses a hex string (no 0x prefix needed; case-insensitive). Aborts on
  // malformed input — hex literals in this codebase are compile-time data.
  static BigUint FromHex(std::string_view hex);

  // Big-endian byte-string conversions (network/wire format).
  static BigUint FromBytes(std::span<const uint8_t> be_bytes);
  std::vector<uint8_t> ToBytes() const;
  // Fixed-width big-endian rendering, left-padded with zeros; aborts if the
  // value does not fit.
  std::vector<uint8_t> ToBytesPadded(size_t width) const;

  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  // Number of significant bits (0 for zero).
  size_t BitLength() const;
  bool GetBit(size_t i) const;

  // Comparisons.
  static int Compare(const BigUint& a, const BigUint& b);
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return Compare(a, b) >= 0;
  }

  // Arithmetic. Sub aborts if b > a (unsigned domain).
  static BigUint Add(const BigUint& a, const BigUint& b);
  static BigUint Sub(const BigUint& a, const BigUint& b);
  static BigUint Mul(const BigUint& a, const BigUint& b);
  // Quotient and remainder; aborts on division by zero.
  static void DivMod(const BigUint& a, const BigUint& b, BigUint* quotient,
                     BigUint* remainder);
  static BigUint Mod(const BigUint& a, const BigUint& m);

  // (a * b) mod m and (base ^ exp) mod m via square-and-multiply.
  static BigUint MulMod(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m);

  // Modular inverse via extended Euclid; returns false if gcd(a, m) != 1.
  static bool InvMod(const BigUint& a, const BigUint& m, BigUint* inverse);

  // Shifts.
  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  // Uniform random value with exactly `bits` significant bits (MSB set).
  static BigUint RandomWithBits(size_t bits, Rng& rng);
  // Uniform random value in [lo, hi].
  static BigUint RandomInRange(const BigUint& lo, const BigUint& hi, Rng& rng);

  // Miller-Rabin primality test with `rounds` random bases.
  static bool IsProbablePrime(const BigUint& n, int rounds, Rng& rng);
  // Generates a random probable prime with exactly `bits` bits.
  static BigUint GeneratePrime(size_t bits, Rng& rng);

  uint64_t ToU64() const;  // aborts if the value exceeds 64 bits

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Trim();

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_BIGNUM_H_
