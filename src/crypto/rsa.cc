#include "src/crypto/rsa.h"

#include <algorithm>

#include "src/common/status.h"

namespace snic::crypto {
namespace {

// DER DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09,
                                         0x60, 0x86, 0x48, 0x01, 0x65, 0x03,
                                         0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                         0x20};

// Builds the EMSA-PKCS1-v1_5 encoded message block of width `em_len`.
std::vector<uint8_t> EncodeEmsa(const Sha256Digest& digest, size_t em_len) {
  const size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  SNIC_CHECK(em_len >= t_len + 11);
  std::vector<uint8_t> em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.begin() + static_cast<ptrdiff_t>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() +
                static_cast<ptrdiff_t>(em_len - digest.size()));
  return em;
}

}  // namespace

RsaKeyPair GenerateRsaKeyPair(size_t modulus_bits, Rng& rng) {
  SNIC_CHECK(modulus_bits >= 256);
  const BigUint e(65537);
  for (;;) {
    const BigUint p = BigUint::GeneratePrime(modulus_bits / 2, rng);
    const BigUint q = BigUint::GeneratePrime(modulus_bits / 2, rng);
    if (p == q) {
      continue;
    }
    const BigUint n = BigUint::Mul(p, q);
    const BigUint phi = BigUint::Mul(BigUint::Sub(p, BigUint(1)),
                                     BigUint::Sub(q, BigUint(1)));
    BigUint d;
    if (!BigUint::InvMod(e, phi, &d)) {
      continue;  // e not coprime with phi; re-draw primes
    }
    RsaKeyPair pair;
    pair.public_key = RsaPublicKey{n, e};
    pair.private_key = RsaPrivateKey{n, d};
    return pair;
  }
}

std::vector<uint8_t> RsaSignDigest(const RsaPrivateKey& key,
                                   const Sha256Digest& digest) {
  const size_t k = (key.n.BitLength() + 7) / 8;
  const std::vector<uint8_t> em = EncodeEmsa(digest, k);
  const BigUint m = BigUint::FromBytes(em);
  const BigUint s = BigUint::PowMod(m, key.d, key.n);
  return s.ToBytesPadded(k);
}

std::vector<uint8_t> RsaSign(const RsaPrivateKey& key,
                             std::span<const uint8_t> message) {
  return RsaSignDigest(key, Sha256::Hash(message));
}

bool RsaVerifyDigest(const RsaPublicKey& key, const Sha256Digest& digest,
                     std::span<const uint8_t> signature) {
  const size_t k = key.ModulusBytes();
  if (signature.size() != k) {
    return false;
  }
  const BigUint s = BigUint::FromBytes(signature);
  if (s >= key.n) {
    return false;
  }
  const BigUint m = BigUint::PowMod(s, key.e, key.n);
  const std::vector<uint8_t> em = m.ToBytesPadded(k);
  const std::vector<uint8_t> expected = EncodeEmsa(digest, k);
  return em == expected;
}

bool RsaVerify(const RsaPublicKey& key, std::span<const uint8_t> message,
               std::span<const uint8_t> signature) {
  return RsaVerifyDigest(key, Sha256::Hash(message), signature);
}

}  // namespace snic::crypto
