#include "src/crypto/bignum.h"

#include <algorithm>
#include <cctype>

#include "src/common/status.h"

namespace snic::crypto {

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    const auto hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUint BigUint::FromHex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") {
    hex.remove_prefix(2);
  }
  BigUint out;
  for (char c : hex) {
    if (c == '_' || std::isspace(static_cast<unsigned char>(c))) {
      continue;
    }
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      SNIC_CHECK(false && "malformed hex literal");
      return out;
    }
    // out = out * 16 + digit
    uint64_t carry = digit;
    for (auto& limb : out.limbs_) {
      const uint64_t v = (static_cast<uint64_t>(limb) << 4) | carry;
      limb = static_cast<uint32_t>(v);
      carry = v >> 32;
    }
    if (carry != 0) {
      out.limbs_.push_back(static_cast<uint32_t>(carry));
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::FromBytes(std::span<const uint8_t> be_bytes) {
  BigUint out;
  const size_t n = be_bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint8_t byte = be_bytes[n - 1 - i];  // little-endian position i
    out.limbs_[i / 4] |= static_cast<uint32_t>(byte) << (8 * (i % 4));
  }
  out.Trim();
  return out;
}

std::vector<uint8_t> BigUint::ToBytes() const {
  if (IsZero()) {
    return {0};
  }
  std::vector<uint8_t> out;
  const size_t bytes = (BitLength() + 7) / 8;
  out.resize(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    const uint32_t limb = limbs_[i / 4];
    out[bytes - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::vector<uint8_t> BigUint::ToBytesPadded(size_t width) const {
  std::vector<uint8_t> raw = ToBytes();
  if (raw.size() == 1 && raw[0] == 0) {
    raw.clear();
  }
  SNIC_CHECK(raw.size() <= width);
  std::vector<uint8_t> out(width - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

std::string BigUint::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  const uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  return bits + (32 - static_cast<size_t>(__builtin_clz(top)));
}

bool BigUint::GetBit(size_t i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUint::Compare(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& a, const BigUint& b) {
  BigUint out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(carry));
  }
  return out;
}

BigUint BigUint::Sub(const BigUint& a, const BigUint& b) {
  SNIC_CHECK(Compare(a, b) >= 0);
  BigUint out;
  out.limbs_.resize(a.limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigUint BigUint::Mul(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      const uint64_t cur = static_cast<uint64_t>(out.limbs_[i + j]) +
                           static_cast<uint64_t>(a.limbs_[i]) * b.limbs_[j] +
                           carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const uint64_t cur = static_cast<uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

void BigUint::DivMod(const BigUint& a, const BigUint& b, BigUint* quotient,
                     BigUint* remainder) {
  SNIC_CHECK(!b.IsZero());
  if (Compare(a, b) < 0) {
    if (quotient != nullptr) {
      *quotient = BigUint();
    }
    if (remainder != nullptr) {
      *remainder = a;
    }
    return;
  }

  // Single-limb divisor: schoolbook short division.
  if (b.limbs_.size() == 1) {
    const uint64_t divisor = b.limbs_[0];
    BigUint q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    q.Trim();
    if (quotient != nullptr) {
      *quotient = std::move(q);
    }
    if (remainder != nullptr) {
      *remainder = BigUint(rem);
    }
    return;
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) on 32-bit limbs.
  const size_t n = b.limbs_.size();
  const size_t m = a.limbs_.size();
  const int shift = __builtin_clz(b.limbs_.back());

  // Normalized copies: v has its top bit set; u gains one extra high limb.
  std::vector<uint32_t> v(n);
  for (size_t i = n; i-- > 0;) {
    uint64_t x = static_cast<uint64_t>(b.limbs_[i]) << shift;
    if (shift != 0 && i > 0) {
      x |= b.limbs_[i - 1] >> (32 - shift);
    }
    v[i] = static_cast<uint32_t>(x);
  }
  std::vector<uint32_t> u(m + 1, 0);
  for (size_t i = m; i-- > 0;) {
    uint64_t x = static_cast<uint64_t>(a.limbs_[i]) << shift;
    if (shift != 0 && i > 0) {
      x |= a.limbs_[i - 1] >> (32 - shift);
    }
    u[i] = static_cast<uint32_t>(x);
  }
  if (shift != 0) {
    u[m] = a.limbs_.back() >> (32 - shift);
  }

  constexpr uint64_t kBase = 1ULL << 32;
  BigUint q;
  q.limbs_.assign(m - n + 1, 0);
  for (size_t j = m - n + 1; j-- > 0;) {
    const uint64_t top = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = top / v[n - 1];
    uint64_t rhat = top % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) {
        break;
      }
    }
    // u[j .. j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      const int64_t sub = static_cast<int64_t>(u[i + j]) -
                          static_cast<int64_t>(product & 0xffffffffULL) -
                          borrow;
      u[i + j] = static_cast<uint32_t>(sub);
      borrow = (sub < 0) ? 1 : 0;
    }
    const int64_t sub = static_cast<int64_t>(u[j + n]) -
                        static_cast<int64_t>(carry) - borrow;
    u[j + n] = static_cast<uint32_t>(sub);

    if (sub < 0) {
      // qhat was one too large: add v back.
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t s = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(s);
        add_carry = s >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }
  q.Trim();

  if (remainder != nullptr) {
    // Denormalize u[0 .. n-1].
    BigUint r;
    r.limbs_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      uint64_t x = u[i] >> shift;
      if (shift != 0 && i + 1 < n + 1) {
        x |= static_cast<uint64_t>(u[i + 1]) << (32 - shift);
      }
      r.limbs_[i] = static_cast<uint32_t>(x);
    }
    r.Trim();
    *remainder = std::move(r);
  }
  if (quotient != nullptr) {
    *quotient = std::move(q);
  }
}

BigUint BigUint::Mod(const BigUint& a, const BigUint& m) {
  BigUint r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigUint BigUint::MulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return Mod(Mul(a, b), m);
}

BigUint BigUint::PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m) {
  SNIC_CHECK(!m.IsZero());
  BigUint result(1);
  BigUint acc = Mod(base, m);
  const size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      result = MulMod(result, acc, m);
    }
    acc = MulMod(acc, acc, m);
  }
  return result;
}

bool BigUint::InvMod(const BigUint& a, const BigUint& m, BigUint* inverse) {
  // Extended Euclid over non-negative values, tracking signs explicitly.
  BigUint r0 = m;
  BigUint r1 = Mod(a, m);
  BigUint t0;            // coefficient for m
  BigUint t1(1);         // coefficient for a
  bool t0_neg = false;
  bool t1_neg = false;
  while (!r1.IsZero()) {
    BigUint q;
    BigUint r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 (with sign tracking)
    const BigUint qt1 = Mul(q, t1);
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (Compare(t0, qt1) >= 0) {
        t2 = Sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt1);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == BigUint(1))) {
    return false;  // not coprime
  }
  BigUint inv = t0_neg ? Sub(m, Mod(t0, m)) : Mod(t0, m);
  if (Compare(inv, m) >= 0) {
    inv = Sub(inv, m);
  }
  *inverse = std::move(inv);
  return true;
}

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint out = *this;
    return out;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigUint BigUint::RandomWithBits(size_t bits, Rng& rng) {
  SNIC_CHECK(bits > 0);
  BigUint out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) {
    limb = rng.NextU32();
  }
  // Clear excess bits, set the MSB so the bit length is exact.
  const size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
  uint32_t& top = out.limbs_.back();
  if (top_bits < 32) {
    top &= (1u << top_bits) - 1;
  }
  top |= 1u << (top_bits - 1);
  out.Trim();
  return out;
}

BigUint BigUint::RandomInRange(const BigUint& lo, const BigUint& hi,
                               Rng& rng) {
  SNIC_CHECK(Compare(lo, hi) <= 0);
  const BigUint span = Add(Sub(hi, lo), BigUint(1));
  const size_t bits = span.BitLength();
  for (;;) {
    BigUint candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) {
      limb = rng.NextU32();
    }
    const size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
    if (top_bits < 32) {
      candidate.limbs_.back() &= (1u << top_bits) - 1;
    }
    candidate.Trim();
    if (Compare(candidate, span) < 0) {
      return Add(lo, candidate);
    }
  }
}

bool BigUint::IsProbablePrime(const BigUint& n, int rounds, Rng& rng) {
  if (n.IsZero() || n == BigUint(1)) {
    return false;
  }
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    const BigUint bp(p);
    if (n == bp) {
      return true;
    }
    if (Mod(n, bp).IsZero()) {
      return false;
    }
  }
  // n - 1 = d * 2^r with d odd.
  const BigUint n_minus_1 = Sub(n, BigUint(1));
  BigUint d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }
  const BigUint two(2);
  const BigUint n_minus_2 = Sub(n, two);
  for (int round = 0; round < rounds; ++round) {
    const BigUint a = RandomInRange(two, n_minus_2, rng);
    BigUint x = PowMod(a, d, n);
    if (x == BigUint(1) || x == n_minus_1) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

BigUint BigUint::GeneratePrime(size_t bits, Rng& rng) {
  SNIC_CHECK(bits >= 8);
  for (;;) {
    BigUint candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = Add(candidate, BigUint(1));
    }
    if (IsProbablePrime(candidate, 20, rng)) {
      return candidate;
    }
  }
}

uint64_t BigUint::ToU64() const {
  SNIC_CHECK(limbs_.size() <= 2);
  uint64_t out = 0;
  if (limbs_.size() >= 1) {
    out = limbs_[0];
  }
  if (limbs_.size() == 2) {
    out |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return out;
}

}  // namespace snic::crypto
