// RSA signatures (PKCS#1 v1.5-style over SHA-256), from scratch.
//
// S-NIC's hardware root of trust holds two RSA key pairs (Appendix A):
//   * the endorsement key pair (EK), burned in at manufacturing time, whose
//     public half is certified by the NIC vendor; and
//   * the attestation key pair (AK), regenerated at boot, whose public half
//     is signed with the EK.
// `nf_attest` signs (hash-of-initial-state || DH parameters || nonce) with
// the AK private key.

#ifndef SNIC_CRYPTO_RSA_H_
#define SNIC_CRYPTO_RSA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/bignum.h"
#include "src/crypto/sha256.h"

namespace snic::crypto {

struct RsaPublicKey {
  BigUint n;  // modulus
  BigUint e;  // public exponent
  // Modulus size in bytes (signature width).
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

struct RsaPrivateKey {
  BigUint n;
  BigUint d;  // private exponent
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

// Generates an RSA key pair with a modulus of `modulus_bits` bits
// (two random primes of modulus_bits/2; e = 65537). Deterministic given the
// RNG state, which the tests rely on.
RsaKeyPair GenerateRsaKeyPair(size_t modulus_bits, Rng& rng);

// Signs SHA-256(message) with the EMSA-PKCS1-v1_5 padding layout
// (0x00 0x01 FF.. 0x00 || DigestInfo(SHA-256) || digest).
std::vector<uint8_t> RsaSign(const RsaPrivateKey& key,
                             std::span<const uint8_t> message);

// Verifies a signature produced by RsaSign.
bool RsaVerify(const RsaPublicKey& key, std::span<const uint8_t> message,
               std::span<const uint8_t> signature);

// Signs a precomputed digest (the trusted hardware signs the cumulative
// measurement directly rather than rehashing the function image).
std::vector<uint8_t> RsaSignDigest(const RsaPrivateKey& key,
                                   const Sha256Digest& digest);
bool RsaVerifyDigest(const RsaPublicKey& key, const Sha256Digest& digest,
                     std::span<const uint8_t> signature);

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_RSA_H_
