// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the trusted-instruction layer: `nf_launch` folds every installed
// page and configuration record into a cumulative SHA-256 measurement of a
// function's initial state (§4.6), and `nf_attest` signs that digest
// (Appendix A). A streaming interface is provided so the measurement can be
// updated page-by-page exactly as the microcoded instruction would.

#ifndef SNIC_CRYPTO_SHA256_H_
#define SNIC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace snic::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  // Resets to the initial hash state.
  void Reset();

  // Absorbs `data`; may be called any number of times.
  void Update(std::span<const uint8_t> data);
  void Update(const void* data, size_t len);

  // Finalizes and returns the digest. The object must be Reset() before
  // reuse; Finalize() is idempotent-unsafe by design (mirrors hardware).
  Sha256Digest Finalize();

  // One-shot convenience.
  static Sha256Digest Hash(std::span<const uint8_t> data);
  static Sha256Digest Hash(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// Lowercase hex rendering of a digest (for logs, tests, and attestation
// transcripts).
std::string DigestToHex(const Sha256Digest& digest);

// HMAC-SHA256 (RFC 2104); used to derive symmetric channel keys from the
// Diffie-Hellman shared secret at the end of the attestation exchange.
Sha256Digest HmacSha256(std::span<const uint8_t> key,
                        std::span<const uint8_t> message);

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_SHA256_H_
