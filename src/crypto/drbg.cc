#include "src/crypto/drbg.h"

#include <cstring>

namespace snic::crypto {
namespace {

std::span<const uint8_t> AsSpan(const Sha256Digest& d) {
  return {d.data(), d.size()};
}

}  // namespace

HmacDrbg::HmacDrbg(std::span<const uint8_t> entropy,
                   std::span<const uint8_t> personalization) {
  key_.fill(0x00);
  value_.fill(0x01);
  std::vector<uint8_t> seed(entropy.begin(), entropy.end());
  seed.insert(seed.end(), personalization.begin(), personalization.end());
  Update(std::span<const uint8_t>(seed.data(), seed.size()));
}

void HmacDrbg::Update(std::span<const uint8_t> provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  std::vector<uint8_t> msg(value_.begin(), value_.end());
  msg.push_back(0x00);
  msg.insert(msg.end(), provided.begin(), provided.end());
  key_ = HmacSha256(AsSpan(key_), std::span<const uint8_t>(msg.data(),
                                                           msg.size()));
  value_ = HmacSha256(AsSpan(key_), AsSpan(value_));
  if (!provided.empty()) {
    msg.assign(value_.begin(), value_.end());
    msg.push_back(0x01);
    msg.insert(msg.end(), provided.begin(), provided.end());
    key_ = HmacSha256(AsSpan(key_), std::span<const uint8_t>(msg.data(),
                                                             msg.size()));
    value_ = HmacSha256(AsSpan(key_), AsSpan(value_));
  }
}

void HmacDrbg::Generate(std::span<uint8_t> out) {
  ++generate_calls_;
  size_t done = 0;
  while (done < out.size()) {
    value_ = HmacSha256(AsSpan(key_), AsSpan(value_));
    const size_t chunk = std::min(out.size() - done, value_.size());
    std::memcpy(out.data() + done, value_.data(), chunk);
    done += chunk;
  }
  Update({});
}

std::vector<uint8_t> HmacDrbg::Generate(size_t n) {
  std::vector<uint8_t> out(n);
  Generate(std::span<uint8_t>(out.data(), out.size()));
  return out;
}

void HmacDrbg::Reseed(std::span<const uint8_t> entropy) {
  Update(entropy);
}

}  // namespace snic::crypto
