#include "src/crypto/diffie_hellman.h"

#include <cstring>
#include <string_view>

#include "src/common/status.h"

namespace snic::crypto {

DhGroup Modp1536Group() {
  // RFC 3526, group 5 (1536-bit MODP), generator 2.
  static const char* kPrimeHex =
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
      "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
      "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
      "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
      "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
      "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
      "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";
  return DhGroup{BigUint(2), BigUint::FromHex(kPrimeHex)};
}

DhGroup SmallTestGroup() {
  // 256-bit prime generated deterministically at first use (seeded RNG), so
  // unit tests get a genuine prime without paying 1536-bit exponentiation.
  static const DhGroup kGroup = [] {
    Rng rng(0x5eedf00dULL);
    return DhGroup{BigUint(2), BigUint::GeneratePrime(256, rng)};
  }();
  return kGroup;
}

DhParticipant::DhParticipant(const DhGroup& group, Rng& rng) : group_(group) {
  const BigUint two(2);
  const BigUint hi = BigUint::Sub(group_.p, two);
  secret_ = BigUint::RandomInRange(two, hi, rng);
  public_value_ = BigUint::PowMod(group_.g, secret_, group_.p);
}

BigUint DhParticipant::ComputeSharedSecret(const BigUint& peer_public) const {
  SNIC_CHECK(!peer_public.IsZero());
  SNIC_CHECK(peer_public < group_.p);
  return BigUint::PowMod(peer_public, secret_, group_.p);
}

Sha256Digest DhParticipant::DeriveChannelKey(const BigUint& peer_public) const {
  const BigUint shared = ComputeSharedSecret(peer_public);
  const std::vector<uint8_t> bytes = shared.ToBytes();
  static constexpr std::string_view kLabel = "snic-attest-v1";
  return HmacSha256(
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(kLabel.data()), kLabel.size()),
      std::span<const uint8_t>(bytes.data(), bytes.size()));
}

}  // namespace snic::crypto
