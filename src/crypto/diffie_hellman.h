// Classic finite-field Diffie-Hellman, as used by the S-NIC attestation
// protocol (Appendix A): the function F contributes g^x mod p, the verifier
// contributes g^y mod p, and both derive the channel key from g^xy mod p.

#ifndef SNIC_CRYPTO_DIFFIE_HELLMAN_H_
#define SNIC_CRYPTO_DIFFIE_HELLMAN_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/crypto/bignum.h"
#include "src/crypto/sha256.h"

namespace snic::crypto {

// Public group parameters (g, p). p must be prime, g a generator.
struct DhGroup {
  BigUint g;
  BigUint p;
};

// RFC 3526 MODP groups. The 1536-bit group is the default for attestation;
// the small test group keeps unit tests fast.
DhGroup Modp1536Group();
DhGroup SmallTestGroup();  // 256-bit safe prime; tests only

class DhParticipant {
 public:
  // Draws the secret exponent x uniformly from [2, p-2].
  DhParticipant(const DhGroup& group, Rng& rng);

  // g^x mod p — sent to the peer.
  const BigUint& public_value() const { return public_value_; }

  // Computes g^xy mod p from the peer's public value.
  BigUint ComputeSharedSecret(const BigUint& peer_public) const;

  // Channel key = HMAC-SHA256(key = "snic-attest-v1", shared-secret bytes).
  Sha256Digest DeriveChannelKey(const BigUint& peer_public) const;

 private:
  DhGroup group_;
  BigUint secret_;
  BigUint public_value_;
};

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_DIFFIE_HELLMAN_H_
