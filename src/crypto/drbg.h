// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA-256 instantiation).
//
// The attestation protocol needs nonces and ephemeral Diffie-Hellman
// exponents. The general-purpose xoshiro RNG is fine for workload synthesis
// but not for key material; this deterministic-for-a-seed DRBG gives the
// crypto paths a proper expansion function (and the tests reproducibility).

#ifndef SNIC_CRYPTO_DRBG_H_
#define SNIC_CRYPTO_DRBG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/crypto/sha256.h"

namespace snic::crypto {

class HmacDrbg {
 public:
  // Instantiates from entropy (plus optional personalization).
  explicit HmacDrbg(std::span<const uint8_t> entropy,
                    std::span<const uint8_t> personalization = {});

  // Fills `out` with pseudorandom bytes.
  void Generate(std::span<uint8_t> out);
  std::vector<uint8_t> Generate(size_t n);

  // Mixes additional entropy into the state (NIST reseed).
  void Reseed(std::span<const uint8_t> entropy);

  uint64_t generate_calls() const { return generate_calls_; }

 private:
  void Update(std::span<const uint8_t> provided);

  Sha256Digest key_;
  Sha256Digest value_;
  uint64_t generate_calls_ = 0;
};

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_DRBG_H_
