#include "src/crypto/keys.h"

namespace snic::crypto {
namespace {

void AppendBigUint(std::vector<uint8_t>& out, const BigUint& v) {
  const std::vector<uint8_t> bytes = v.ToBytes();
  const auto len = static_cast<uint32_t>(bytes.size());
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<uint8_t> SerializePublicKey(const RsaPublicKey& key) {
  std::vector<uint8_t> out;
  AppendBigUint(out, key.n);
  AppendBigUint(out, key.e);
  return out;
}

}  // namespace

std::vector<uint8_t> CertificatePayload(const std::string& subject,
                                        const RsaPublicKey& key) {
  std::vector<uint8_t> out = SerializePublicKey(key);
  out.insert(out.end(), subject.begin(), subject.end());
  return out;
}

VendorAuthority::VendorAuthority(size_t modulus_bits, Rng& rng)
    : keys_(GenerateRsaKeyPair(modulus_bits, rng)) {}

Certificate VendorAuthority::IssueCertificate(
    const std::string& subject, const RsaPublicKey& subject_key) const {
  Certificate cert;
  cert.subject = subject;
  cert.subject_key = subject_key;
  const std::vector<uint8_t> payload = CertificatePayload(subject, subject_key);
  cert.issuer_signature = RsaSign(keys_.private_key, payload);
  return cert;
}

bool VendorAuthority::VerifyCertificate(const RsaPublicKey& vendor_key,
                                        const Certificate& cert) {
  const std::vector<uint8_t> payload =
      CertificatePayload(cert.subject, cert.subject_key);
  return RsaVerify(vendor_key, payload, cert.issuer_signature);
}

NicRootOfTrust::NicRootOfTrust(const VendorAuthority& vendor,
                               size_t modulus_bits, Rng& rng)
    : ek_keys_(GenerateRsaKeyPair(modulus_bits, rng)),
      ek_certificate_(vendor.IssueCertificate("snic-ek", ek_keys_.public_key)),
      ak_keys_(GenerateRsaKeyPair(modulus_bits, rng)) {
  ak_endorsement_ =
      RsaSign(ek_keys_.private_key, SerializePublicKey(ak_keys_.public_key));
}

std::vector<uint8_t> NicRootOfTrust::SignWithAk(
    std::span<const uint8_t> payload) const {
  return RsaSign(ak_keys_.private_key, payload);
}

bool NicRootOfTrust::VerifyAkChain(const RsaPublicKey& vendor_key,
                                   const Certificate& ek_cert,
                                   const RsaPublicKey& ak_public,
                                   std::span<const uint8_t> ak_endorsement) {
  if (!VendorAuthority::VerifyCertificate(vendor_key, ek_cert)) {
    return false;
  }
  const std::vector<uint8_t> ak_payload = SerializePublicKey(ak_public);
  return RsaVerify(ek_cert.subject_key, ak_payload, ak_endorsement);
}

}  // namespace snic::crypto
