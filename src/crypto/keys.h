// Hardware root-of-trust key infrastructure (Appendix A).
//
// Models the manufacturing-time endorsement key (EK) with its vendor
// certificate, and the boot-time attestation key (AK) signed by the EK.
// Verifiers trust a vendor public key, walk the chain
//   vendor cert -> EK_pub -> AK_pub -> attestation signature,
// and thereby conclude the quote came from a genuine S-NIC.

#ifndef SNIC_CRYPTO_KEYS_H_
#define SNIC_CRYPTO_KEYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/rsa.h"

namespace snic::crypto {

// A minimal certificate: subject public key signed by an issuer key over a
// canonical serialization (modulus || exponent || subject name).
struct Certificate {
  std::string subject;
  RsaPublicKey subject_key;
  std::vector<uint8_t> issuer_signature;
};

// Canonical byte serialization of (subject, key) that certificate signatures
// cover.
std::vector<uint8_t> CertificatePayload(const std::string& subject,
                                        const RsaPublicKey& key);

// The NIC vendor's signing authority. Issues EK certificates at
// "manufacturing time".
class VendorAuthority {
 public:
  // modulus_bits: RSA size for the vendor root (tests use 512/768 for speed).
  VendorAuthority(size_t modulus_bits, Rng& rng);

  const RsaPublicKey& public_key() const { return keys_.public_key; }

  Certificate IssueCertificate(const std::string& subject,
                               const RsaPublicKey& subject_key) const;

  static bool VerifyCertificate(const RsaPublicKey& vendor_key,
                                const Certificate& cert);

 private:
  RsaKeyPair keys_;
};

// The per-NIC key material held in private hardware registers.
class NicRootOfTrust {
 public:
  // Burns in the EK, obtains its vendor certificate, then generates the
  // boot-time AK and signs AK_pub with EK_priv.
  NicRootOfTrust(const VendorAuthority& vendor, size_t modulus_bits, Rng& rng);

  // Public, shareable parts of the chain.
  const Certificate& ek_certificate() const { return ek_certificate_; }
  const RsaPublicKey& ak_public() const { return ak_keys_.public_key; }
  const std::vector<uint8_t>& ak_endorsement() const { return ak_endorsement_; }

  // Signs a quote payload with AK_priv. Only the trusted instruction layer
  // calls this (the private key never leaves the object).
  std::vector<uint8_t> SignWithAk(std::span<const uint8_t> payload) const;

  // Verifier-side chain validation: vendor key -> EK cert -> AK endorsement.
  static bool VerifyAkChain(const RsaPublicKey& vendor_key,
                            const Certificate& ek_cert,
                            const RsaPublicKey& ak_public,
                            std::span<const uint8_t> ak_endorsement);

 private:
  RsaKeyPair ek_keys_;
  Certificate ek_certificate_;
  RsaKeyPair ak_keys_;
  std::vector<uint8_t> ak_endorsement_;  // Sign_EK(AK_pub serialization)
};

}  // namespace snic::crypto

#endif  // SNIC_CRYPTO_KEYS_H_
