// Quickstart: the complete lifecycle of one tenant function on an S-NIC.
//
//   1. Boot an S-NIC with a vendor-certified root of trust.
//   2. The NIC OS stages and launches a firewall function (NF_create).
//   3. Traffic arrives from the wire, is steered by the function's switch
//      rules into its virtual packet pipeline, processed, and transmitted.
//   4. A remote verifier attests the function before trusting it.
//   5. The function is destroyed; its resources are scrubbed and returned.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/snic.h"

using namespace snic;

int main() {
  std::printf("== S-NIC quickstart ==\n\n");

  // 1. Boot. The vendor authority models the NIC manufacturer's PKI; the
  //    device generates its endorsement/attestation keys at "power-on".
  Rng boot_rng(2024);
  crypto::VendorAuthority vendor(/*modulus_bits=*/768, boot_rng);
  core::SnicConfig config;
  config.num_cores = 16;          // core 0 runs the NIC OS
  config.dram_bytes = 256ull << 20;
  config.rsa_modulus_bits = 768;
  core::SnicDevice device(config, vendor);
  mgmt::NicOs nic_os(&device);
  std::printf("Booted S-NIC: %u cores, %llu MB DRAM, EK certified by vendor\n",
              config.num_cores,
              static_cast<unsigned long long>(config.dram_bytes >> 20));

  // 2. The tenant uploads a firewall image; the NIC OS launches it.
  mgmt::FunctionImage image;
  image.name = "tenant-firewall";
  image.code_and_data.assign(64 * 1024, 0xf1);  // the function binary
  image.cores = 2;
  image.memory_bytes = 20ull << 20;
  net::SwitchRule rule;                         // steer TCP/80 to this NF
  rule.dst_port = 80;
  rule.protocol = static_cast<uint8_t>(net::IpProto::kTcp);
  image.switch_rules.push_back(rule);
  const auto nf_id = nic_os.NfCreate(image);
  if (!nf_id.ok()) {
    std::printf("launch failed: %s\n", nf_id.status().ToString().c_str());
    return 1;
  }
  std::printf("Launched '%s' as NF %llu on cores 0x%llx (%zu pages bound)\n",
              image.name.c_str(),
              static_cast<unsigned long long>(nf_id.value()),
              static_cast<unsigned long long>(
                  device.CoresOf(nf_id.value()).value()),
              device.memory().PagesOwnedBy(nf_id.value()).size());

  // Hardware isolation is already in force: the NIC OS that just created
  // the function can no longer read its memory.
  const auto pages = device.memory().PagesOwnedBy(nf_id.value());
  const auto denied = nic_os.PeekPhys(pages[0] * config.page_bytes);
  std::printf("NIC OS peek into NF memory -> %s\n",
              denied.status().ToString().c_str());

  // 3. Traffic. The firewall NF logic runs against packets polled from the
  //    function's virtual packet pipeline.
  nf::Firewall firewall(nf::FirewallConfig{.num_rules = 128});
  trace::TraceConfig tc = trace::TraceConfig::CaidaLike(7);
  trace::PacketStream stream(tc);
  int delivered = 0, forwarded = 0, dropped = 0;
  for (int i = 0; i < 5000; ++i) {
    net::Packet packet = stream.Next();
    // Rewrite the stream toward our captured port so the switch matches.
    auto parsed = net::Parse(packet.bytes());
    if (!parsed.ok()) {
      continue;
    }
    net::FiveTuple t = parsed.value().Tuple();
    t.dst_port = 80;
    packet = net::PacketBuilder().SetTuple(t).SetFrameLen(packet.size()).Build();
    if (!device.DeliverFromWire(std::move(packet)).ok()) {
      continue;  // RX reservation full
    }
    ++delivered;
    auto received = device.NfReceive(nf_id.value());
    if (!received.ok()) {
      continue;
    }
    net::Packet work = std::move(received).value();
    if (firewall.Process(work) == nf::Verdict::kForward) {
      if (!device.NfSend(nf_id.value(), std::move(work)).ok()) {
        ++dropped;  // TX reservation full: the frame is shed, not forwarded
        continue;
      }
      ++forwarded;
      (void)device.TransmitToWire();
    } else {
      ++dropped;
    }
  }
  std::printf("Processed %d packets through the VPP: %d forwarded, %d dropped"
              " (cache hit rate %.1f%%)\n",
              delivered, forwarded, dropped,
              100.0 * static_cast<double>(firewall.cache_hits()) /
                  static_cast<double>(firewall.cache_hits() +
                                      firewall.cache_misses()));

  // 4. Remote attestation: a verifier checks the function is genuine before
  //    keying a channel to it.
  Rng session_rng(99);
  const crypto::DhGroup group = crypto::SmallTestGroup();
  crypto::DhParticipant function_dh(group, session_rng);
  core::AttestationRequest request;
  request.group = group;
  request.nonce = {0xa, 0xb, 0xc, 0xd};
  request.g_x = function_dh.public_value();
  const auto quote = device.NfAttest(nf_id.value(), request);
  const auto verification =
      core::VerifyQuote(vendor.public_key(), quote.value(), request.nonce);
  std::printf("Attestation: chain=%s signature=%s nonce=%s -> %s\n",
              verification.chain_ok ? "ok" : "BAD",
              verification.signature_ok ? "ok" : "BAD",
              verification.nonce_ok ? "ok" : "BAD",
              verification.Ok() ? "TRUSTED" : "REJECTED");
  std::printf("Function measurement: %s\n",
              crypto::DigestToHex(quote.value().measurement).c_str());

  // 5. Teardown: pages scrubbed, cores and clusters freed.
  SNIC_CHECK_OK(device.NfTeardown(nf_id.value()));
  std::printf("Teardown complete: scrub took %.2f ms (modeled), %u cores free\n",
              device.last_teardown_latency().scrub_ms, device.FreeCores());
  return 0;
}
