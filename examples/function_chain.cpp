// Function chaining (§4.8 extension): a three-stage service chain —
// compressor -> IDS (virtual DPI accelerator) -> monitor — where every stage
// is a separately launched, mutually isolated S-NIC function and frames hop
// between stages over rate-clocked cross-VPP links (no shared memory).
//
// Build & run:  ./build/examples/function_chain

#include <cstdio>
#include <string>

#include "src/snic.h"

using namespace snic;

namespace {

uint64_t Launch(mgmt::NicOs& nic_os, const char* name, uint16_t port,
                uint32_t dpi_clusters = 0) {
  mgmt::FunctionImage image;
  image.name = name;
  image.code_and_data.assign(2048, 0x77);
  image.memory_bytes = 6ull << 20;
  image.accel_clusters[0] = dpi_clusters;
  net::SwitchRule rule;
  rule.dst_port = port;
  image.switch_rules.push_back(rule);
  const auto id = nic_os.NfCreate(image);
  SNIC_CHECK(id.ok());
  return id.value();
}

}  // namespace

int main() {
  std::printf("== S-NIC function chain: compressor -> IDS -> monitor ==\n\n");

  Rng rng(501);
  crypto::VendorAuthority vendor(512, rng);
  core::SnicConfig config;
  config.num_cores = 16;
  config.dram_bytes = 128ull << 20;
  config.rsa_modulus_bits = 512;
  core::SnicDevice device(config, vendor);
  mgmt::NicOs nic_os(&device);

  // Stage 1 captures wire traffic on TCP/80; stages 2-3 receive only via
  // chain links (their switch ports are never used by the wire).
  const uint64_t zip_nf = Launch(nic_os, "compressor", 80);
  const uint64_t ids_nf = Launch(nic_os, "ids", 10'001, /*dpi_clusters=*/2);
  const uint64_t mon_nf = Launch(nic_os, "monitor", 10'002);
  std::printf("Launched 3 isolated functions (NFs %llu, %llu, %llu)\n",
              static_cast<unsigned long long>(zip_nf),
              static_cast<unsigned long long>(ids_nf),
              static_cast<unsigned long long>(mon_nf));

  core::ChainManager chains(&device);
  SNIC_CHECK(chains.CreateLink({zip_nf, ids_nf, 8}).ok());
  SNIC_CHECK(chains.CreateLink({ids_nf, mon_nf, 8}).ok());
  std::printf("Created 2 rate-clocked cross-VPP links (8 frames/tick)\n\n");

  // NF logic for each stage.
  nf::Compressor compressor;
  auto graph = std::make_shared<const accel::AhoCorasick>(
      accel::GenerateDpiRuleset(2'000, 11));
  nf::DpiNf ids(graph, nf::DpiConfig{.num_patterns = 2'000});
  nf::Monitor monitor;

  // Traffic: compressible HTTP-ish payloads toward port 80.
  int wire_in = 0, compressed = 0, inspected = 0, monitored = 0, out = 0;
  int shed = 0;  // frames refused by a full TX reservation along the chain
  trace::TraceConfig tc = trace::TraceConfig::IctfLike(7);
  tc.payload_entropy = 0.1;  // mostly text: compressible
  trace::PacketStream stream(tc);
  for (int i = 0; i < 3000; ++i) {
    net::Packet packet = stream.Next();
    auto parsed = net::Parse(packet.bytes());
    if (!parsed.ok()) {
      continue;
    }
    net::FiveTuple t = parsed.value().Tuple();
    t.dst_port = 80;
    t.protocol = 6;
    net::PacketBuilder builder;
    builder.SetTuple(t);
    const auto payload = packet.bytes().subspan(parsed.value().payload_offset);
    builder.SetPayload(payload);
    if (!device.DeliverFromWire(builder.Build()).ok()) {
      continue;
    }
    ++wire_in;

    // Stage 1: compress, forward into the chain.
    while (true) {
      auto received = device.NfReceive(zip_nf);
      if (!received.ok()) {
        break;
      }
      net::Packet frame = std::move(received).value();
      if (compressor.Process(frame) == nf::Verdict::kForward) {
        compressed += frame.size() < 500 ? 1 : 0;
        if (!device.NfSend(zip_nf, std::move(frame)).ok()) {
          ++shed;
        }
      }
    }
    chains.TickAll();  // stage1 -> stage2

    // Stage 2: decompress and inspect; drop on a signature hit.
    while (true) {
      auto received = device.NfReceive(ids_nf);
      if (!received.ok()) {
        break;
      }
      net::Packet frame = std::move(received).value();
      nf::Compressor::Decompress(frame);
      ++inspected;
      if (ids.Process(frame) == nf::Verdict::kForward) {
        if (!device.NfSend(ids_nf, std::move(frame)).ok()) {
          ++shed;
        }
      }
    }
    chains.TickAll();  // stage2 -> stage3

    // Stage 3: count flows, transmit.
    while (true) {
      auto received = device.NfReceive(mon_nf);
      if (!received.ok()) {
        break;
      }
      net::Packet frame = std::move(received).value();
      monitor.Process(frame);
      ++monitored;
      if (!device.NfSend(mon_nf, std::move(frame)).ok()) {
        ++shed;
        continue;
      }
      if (device.TransmitToWire().ok()) {
        ++out;
      }
    }
  }

  std::printf("Wire in:            %d frames\n", wire_in);
  std::printf("Stage 1 compressor: %llu compressed (ratio %.2fx)\n",
              static_cast<unsigned long long>(compressor.packets_compressed()),
              compressor.CompressionRatio());
  std::printf("Stage 2 IDS:        %d inspected, %llu dropped on signature\n",
              inspected, static_cast<unsigned long long>(ids.matches()));
  std::printf("Stage 3 monitor:    %d counted across %zu flows\n", monitored,
              monitor.distinct_flows());
  std::printf("Wire out:           %d frames (%d shed at full TX)\n\n", out,
              shed);

  std::printf("Isolation held throughout: stages share no memory; the only\n"
              "inter-stage channel is the rate-clocked link (overt frames\n"
              "and their timing — exactly the §4.8 leakage bound).\n");
  (void)compressed;
  return 0;
}
