// NF gallery: runs all six evaluation network functions (§5.1) over the
// same synthetic iCTF-like stream and reports behaviour and footprint side
// by side — a tour of the workload half of the reproduction.
//
// Build & run:  ./build/examples/nf_gallery [packet_count]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/snic.h"

using namespace snic;

int main(int argc, char** argv) {
  const size_t packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 50'000;
  std::printf("== NF gallery: %zu packets, Zipf(1.1) over 100k flows ==\n\n",
              packets);

  TablePrinter table({"NF", "Forwarded", "Dropped", "Heap (MB)",
                      "TLB entries (Flex-high)", "Notes"});
  for (nf::NfKind kind : nf::AllNfKinds()) {
    const auto fn = nf::MakeNf(kind);
    trace::TraceConfig config = trace::TraceConfig::IctfLike(
        42 + static_cast<uint64_t>(kind));
    trace::PacketStream stream(config);
    for (size_t i = 0; i < packets; ++i) {
      net::Packet packet = stream.Next();
      fn->Process(packet);
    }
    const auto profile = fn->Profile();
    const uint64_t entries = core::EntriesForRegionsMib(
        profile.RegionsMib(), core::PageSizeMenu::FlexHigh());

    std::string notes;
    switch (kind) {
      case nf::NfKind::kFirewall: {
        auto* fw = static_cast<nf::Firewall*>(fn.get());
        notes = "cache hits " + std::to_string(fw->cache_hits());
        break;
      }
      case nf::NfKind::kDpi: {
        auto* dpi = static_cast<nf::DpiNf*>(fn.get());
        notes = std::to_string(dpi->automaton().pattern_count()) +
                " patterns, " + std::to_string(dpi->matches()) + " hits";
        break;
      }
      case nf::NfKind::kNat: {
        auto* nat = static_cast<nf::Nat*>(fn.get());
        notes = std::to_string(nat->translations_installed()) +
                " translations";
        break;
      }
      case nf::NfKind::kLoadBalancer:
        notes = "Maglev 65537-slot table";
        break;
      case nf::NfKind::kLpm: {
        auto* lpm = static_cast<nf::Lpm*>(fn.get());
        notes = std::to_string(lpm->tbl8_chunks()) + " TBL8 chunks";
        break;
      }
      case nf::NfKind::kMonitor: {
        auto* mon = static_cast<nf::Monitor*>(fn.get());
        notes = std::to_string(mon->distinct_flows()) + " flows tracked";
        break;
      }
    }
    table.AddRow({std::string(nf::NfKindName(kind)),
                  std::to_string(fn->counters().forwarded),
                  std::to_string(fn->counters().dropped),
                  TablePrinter::Fmt(profile.heap_stack_mib, 2),
                  std::to_string(entries), notes});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
