// Secure constellation (Fig. 4): a tenant stitches together an S-NIC
// intrusion-detection function and two host-level enclaves ("gateways")
// inside an untrusted cloud. All parties attest pairwise, derive channel
// keys, and ship sealed traffic through the datacenter — the operator can
// snoop every bus and switch yet sees only ciphertext.
//
// Build & run:  ./build/examples/secure_constellation

#include <cstdio>
#include <string>

#include "src/snic.h"

using namespace snic;

int main() {
  std::printf("== Secure constellation: NIC function + host enclaves ==\n\n");

  // The NIC vendor's PKI and the enclave platform vendor's PKI (e.g. the
  // SGX quoting infrastructure) are independent roots of trust.
  Rng boot_rng(77);
  crypto::VendorAuthority nic_vendor(768, boot_rng);
  crypto::VendorAuthority enclave_vendor(768, boot_rng);

  core::SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = 64ull << 20;
  config.rsa_modulus_bits = 768;
  core::SnicDevice device(config, nic_vendor);
  mgmt::NicOs nic_os(&device);

  // Launch the IDS function that will sit on the cross-enterprise detour
  // path (Fig. 4a).
  mgmt::FunctionImage image;
  image.name = "detour-ids";
  image.code_and_data.assign(32 * 1024, 0x1d);
  image.memory_bytes = 8ull << 20;
  net::SwitchRule rule;
  rule.vni = 1337;  // the tenant's VXLAN segment
  image.switch_rules.push_back(rule);
  const auto nf_id = nic_os.NfCreate(image);
  SNIC_CHECK(nf_id.ok());
  std::printf("IDS function launched (NF %llu), steering VNI 1337\n",
              static_cast<unsigned long long>(nf_id.value()));

  // Constellation parties.
  mgmt::SnicFunctionParty ids("detour-ids", &device, nf_id.value(),
                              nic_vendor.public_key());
  Rng enclave_rng(78);
  mgmt::EnclaveParty client_gw("client-gateway", {0x01, 0x02}, enclave_vendor,
                               768, enclave_rng);
  mgmt::EnclaveParty dest_gw("dest-gateway", {0x03, 0x04}, enclave_vendor,
                             768, enclave_rng);

  // Pairwise attestation: client->IDS and IDS->dest.
  Rng session_rng(79);
  const crypto::DhGroup group = crypto::Modp1536Group();
  std::printf("Attesting client-gateway <-> IDS ... ");
  const mgmt::PairwiseResult leg1 =
      mgmt::EstablishChannel(client_gw, ids, group, session_rng);
  std::printf("%s\n", leg1.Ok() ? "mutual trust established" : "FAILED");
  std::printf("Attesting IDS <-> dest-gateway ... ");
  const mgmt::PairwiseResult leg2 =
      mgmt::EstablishChannel(ids, dest_gw, group, session_rng);
  std::printf("%s\n", leg2.Ok() ? "mutual trust established" : "FAILED");
  SNIC_CHECK(leg1.Ok() && leg2.Ok());

  // The client gateway seals a flow segment toward the IDS inside the
  // tenant's VXLAN overlay; the cloud operator forwards (and can observe)
  // the encapsulated frame.
  const std::string flow_data = "GET /payroll HTTP/1.1\r\nHost: internal\r\n";
  const auto sealed = leg1.channel_a->Seal(
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(flow_data.data()),
          flow_data.size()),
      /*seq=*/1);

  net::FiveTuple inner;
  inner.src_ip = net::Ipv4FromString("10.8.0.1");
  inner.dst_ip = net::Ipv4FromString("10.8.0.2");
  inner.src_port = 50123;
  inner.dst_port = 443;
  inner.protocol = 6;
  net::FiveTuple outer;
  outer.src_ip = net::Ipv4FromString("198.18.0.1");
  outer.dst_ip = net::Ipv4FromString("198.18.0.2");
  outer.src_port = 48000;
  outer.dst_port = net::kVxlanUdpPort;
  outer.protocol = static_cast<uint8_t>(net::IpProto::kUdp);
  net::PacketBuilder builder;
  builder.SetTuple(inner).SetPayload(
      std::span<const uint8_t>(sealed.data(), sealed.size()));
  SNIC_CHECK_OK(device.DeliverFromWire(builder.BuildVxlan(1337, outer)));
  std::printf("VXLAN frame (VNI 1337) delivered through the switch fabric\n");

  // The IDS function receives the frame inside its private VPP, opens the
  // sealed payload with the attested key, inspects it, re-seals toward the
  // destination gateway.
  auto received = device.NfReceive(nf_id.value());
  SNIC_CHECK(received.ok());
  const auto parsed = net::Parse(received.value().bytes());
  SNIC_CHECK(parsed.ok() && parsed.value().vxlan.has_value());
  // Inner frame begins after the VXLAN header; parse it to find the sealed
  // application payload.
  const auto inner_frame = received.value().bytes().subspan(
      parsed.value().payload_offset + net::kVxlanHeaderLen);
  const auto inner_parsed = net::Parse(inner_frame);
  SNIC_CHECK(inner_parsed.ok());
  const auto sealed_payload =
      inner_frame.subspan(inner_parsed.value().payload_offset);
  const auto opened = leg1.channel_b->Open(sealed_payload, 1);
  SNIC_CHECK(opened.ok());
  const std::string inspected(opened.value().begin(), opened.value().end());
  std::printf("IDS opened the sealed segment (%zu bytes) and inspected it\n",
              inspected.size());

  // Toy inspection: block if a signature appears.
  const bool malicious = inspected.find("cmd.exe") != std::string::npos;
  std::printf("Inspection verdict: %s\n", malicious ? "BLOCK" : "ALLOW");
  if (!malicious) {
    const auto resealed = leg2.channel_a->Seal(
        std::span<const uint8_t>(opened.value().data(),
                                 opened.value().size()),
        /*seq=*/1);
    const auto at_dest = leg2.channel_b->Open(
        std::span<const uint8_t>(resealed.data(), resealed.size()), 1);
    SNIC_CHECK(at_dest.ok());
    std::printf("Destination gateway received %zu bytes intact: \"%.20s...\"\n",
                at_dest.value().size(),
                reinterpret_cast<const char*>(at_dest.value().data()));
  }

  std::printf("\nThe cloud operator saw only: VXLAN headers, ciphertext, and\n"
              "two attestation transcripts it cannot forge — hardware keys\n"
              "never leave the NIC or the enclaves.\n");
  return 0;
}
