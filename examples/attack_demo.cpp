// Attack demo: replays the paper's §3.3 proof-of-concept attacks against a
// commodity-style smart NIC (LiquidIO SE-S semantics) and then against
// S-NIC, narrating each step.
//
// Build & run:  ./build/examples/attack_demo

#include <cstdio>

#include "src/snic.h"

using namespace snic;
using namespace snic::core;

namespace {

SnicDevice MakeDevice(SecurityMode mode,
                      const crypto::VendorAuthority& vendor) {
  SnicConfig config;
  config.mode = mode;
  config.num_cores = 8;
  config.dram_bytes = 64ull << 20;
  config.rsa_modulus_bits = 512;
  return SnicDevice(config, vendor);
}

void Banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  std::printf("== S-NIC attack demo: why commodity smart NICs are unsafe ==\n");
  Rng rng(11);
  crypto::VendorAuthority vendor(512, rng);

  Banner("Attack 1: packet corruption (paper: LiquidIO, MazuNAT victim)");
  {
    SnicDevice commodity = MakeDevice(SecurityMode::kCommodity, vendor);
    std::printf("[commodity] victim NAT holds a translated packet; a\n"
                "malicious function on another core scans the shared buffer\n"
                "allocator's metadata via xkphys...\n");
    const AttackOutcome outcome = RunPacketCorruptionAttack(commodity);
    std::printf("[commodity] result: %s — %s\n",
                outcome.succeeded ? "ATTACK SUCCEEDED" : "attack failed",
                outcome.detail.c_str());

    SnicDevice snic = MakeDevice(SecurityMode::kSnic, vendor);
    const AttackOutcome blocked = RunPacketCorruptionAttack(snic);
    std::printf("[S-NIC]     result: %s — %s\n",
                blocked.succeeded ? "ATTACK SUCCEEDED" : "attack BLOCKED",
                blocked.detail.c_str());
  }

  Banner("Attack 2: DPI ruleset stealing (paper: LiquidIO)");
  {
    SnicDevice commodity = MakeDevice(SecurityMode::kCommodity, vendor);
    std::printf("[commodity] victim stores its threat signatures in DRAM;\n"
                "the attacker walks the allocator metadata to find and copy\n"
                "them (learning which signatures the target deploys)...\n");
    const AttackOutcome outcome = RunDpiRulesetStealingAttack(commodity);
    std::printf("[commodity] result: %s — %s\n",
                outcome.succeeded ? "ATTACK SUCCEEDED" : "attack failed",
                outcome.detail.c_str());

    SnicDevice snic = MakeDevice(SecurityMode::kSnic, vendor);
    const AttackOutcome blocked = RunDpiRulesetStealingAttack(snic);
    std::printf("[S-NIC]     result: %s — %s\n",
                blocked.succeeded ? "ATTACK SUCCEEDED" : "attack BLOCKED",
                blocked.detail.c_str());
  }

  Banner("Attack 3: IO-bus denial of service (paper: Agilio test_subsat)");
  {
    std::printf("attacker: tight loop of uncached semaphore decrements;\n"
                "victim: a DRAM-bound network function on another core.\n\n");
    for (auto [policy, name] :
         {std::pair{sim::BusPolicy::kFcfs, "FCFS bus (commodity)     "},
          std::pair{sim::BusPolicy::kRoundRobin, "Round-robin bus          "},
          std::pair{sim::BusPolicy::kTemporalPartition,
                    "Temporal partition (S-NIC)"}}) {
      const BusDosResult result = RunBusDosAttack(policy, 400'000);
      std::printf("  %s victim slowdown: %.2fx\n", name,
                  result.victim_slowdown);
    }
    std::printf("\nOn the real Agilio the saturated bus hard-crashed the NIC\n"
                "(power cycle required). Temporal partitioning gives each\n"
                "domain dedicated epochs, so the attacker can only burn its\n"
                "own bandwidth — and learns nothing from contention either.\n");
  }
  return 0;
}
