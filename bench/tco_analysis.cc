// Regenerates the §5.2 "TCO impact" analysis: 3-year per-core TCO of a
// LiquidIO NIC, a host Xeon, and an S-NIC-extended LiquidIO, plus the
// headline area/power overheads that feed it.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/hwmodel/tco.h"
#include "src/hwmodel/tlb_cost.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::TablePrinter;
  using namespace snic::hwmodel;

  snic::bench::PrintHeader("TCO analysis",
                           "S-NIC (EuroSys'24) Section 5.2, 'TCO impact'");

  // First derive the silicon overheads from the cost model (headline: up to
  // 8.89% area, 11.45% power vs a 4-core A9 with 512-entry TLBs).
  const TlbCost core_tlbs = TlbBanksCost(512, 4);
  const TlbCost accel =
      TlbBanksCost(54, 16) + TlbBanksCost(70, 16) + TlbBanksCost(5, 16);
  const TlbCost vpp_dma = TlbBanksCost(3, 12) + TlbBanksCost(2, 12);
  const A9Baseline baseline;
  const double ref_area = baseline.area_mm2 + core_tlbs.area_mm2;
  const double ref_power = baseline.power_w + core_tlbs.power_w;
  const double area_overhead =
      (core_tlbs.area_mm2 + accel.area_mm2 + vpp_dma.area_mm2) / ref_area;
  const double power_overhead =
      (core_tlbs.power_w + accel.power_w + vpp_dma.power_w) / ref_power;
  std::printf("Modeled S-NIC silicon overheads: area %s, power %s\n",
              TablePrinter::Pct(area_overhead, 2).c_str(),
              TablePrinter::Pct(power_overhead, 2).c_str());
  std::printf("Paper headline:                 area 8.89%%, power 11.45%%\n\n");

  TcoParams params;  // defaults embed the paper's worst-case overheads
  const TcoReport report = ComputeTco(params);

  TablePrinter table({"Device", "3-year TCO per core", "Paper"});
  table.AddRow({"Marvell LiquidIO (12-core, $420, 24.7W)",
                "$" + TablePrinter::Fmt(report.nic_tco_per_core, 2), "$38.97"});
  table.AddRow({"Host Xeon E5-2680v3 (12-core, $1745, 113W)",
                "$" + TablePrinter::Fmt(report.host_tco_per_core, 2),
                "$163.56"});
  table.AddRow({"S-NIC-extended LiquidIO (worst case)",
                "$" + TablePrinter::Fmt(report.snic_tco_per_core, 2),
                "$42.53"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("TCO advantage reduction: %s (paper: 8.37%%)\n",
              TablePrinter::Pct(report.advantage_reduction, 2).c_str());
  std::printf("TCO benefit preserved:   %s (paper: 91.6%%)\n",
              TablePrinter::Pct(report.advantage_preserved, 1).c_str());
  std::printf("(Electricity $%.4f/kWh; purchase cost scaled by die area.)\n",
              params.electricity_usd_per_kwh);
  return 0;
}
