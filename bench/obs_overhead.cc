// Measures the runtime cost of the observability layer on the Fig. 5a hot
// path: the same colocation replay is timed with no obs hooks (the
// SNIC_OBS_DISABLED proxy: every instrumentation site degrades to a
// null-pointer check), with a live metrics registry attached, and with
// metrics plus the binary trace ring recording every DRAM round trip.
//
// Budgets, both enforced in the verdict and the exit code: metrics alone
// must stay below 30%, and metrics+trace must stay within 80% — the bar
// that lets tracing stay ON for the big sweeps. The budgets were
// recalibrated when the prepared-trace fast path landed: instrumentation
// still costs the same ~0.5-2.5 ns per replayed event it always did (ring
// records are fixed-size stores flushed at task join, see
// src/obs/trace_ring.h; the old allocate-and-stringify TraceLog cost ~10x
// that), but the uninstrumented baseline is now ~7x faster, so a fixed
// per-event cost reads as a double-digit percentage. The claim that
// matters is preserved with room to spare: even with metrics+trace
// attached, a sweep runs ~4x faster than the pre-rewrite engine did
// uninstrumented (docs/PERFORMANCE.md). Results land in
// BENCH_obs_overhead.json.
//
// --quick replays are informational: at 20k events/NF the caches never
// fully warm, so DRAM round trips — and therefore trace records — are
// ~1.5x denser per millisecond than on the full-size replay the budgets
// are calibrated against, and the ratio reads high. Quick runs print and
// record the overheads but always exit 0; only full runs gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kMetricsBudgetPct = 30.0;
constexpr double kTraceBudgetPct = 80.0;

// Scheduler/co-tenant interference on a shared host only ever *adds* time,
// so the minimum over interleaved reps is the noise-robust estimator of a
// variant's true cost — medians still carry several percent of asymmetric
// contention noise, which would swamp a low-single-digit budget.
double MinMs(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;
  using namespace snic::bench;

  PrintHeader("Observability overhead on the Fig. 5a replay path",
              "budgets: metrics <30%, metrics+trace <=80% vs the "
              "uninstrumented fast path");

  // --jobs=N: sweep workers; the checksum (and so the replay results) is
  // byte-identical at every N, and each timed variant parallelizes the same
  // way. The budgets are calibrated on the serial path — at jobs > 1 the
  // measured ratio also absorbs scheduler noise (worst when workers
  // oversubscribe the cores), so gate the budgets with --jobs=1.
  const auto pool = MakePool(JobsFlag(argc, argv));

  // --seed=S varies the synthetic NF workload (default matches the
  // committed pin); the seed is echoed into the verdict JSON.
  const std::string seed_flag = FlagValue(argc, argv, "--seed");
  const uint64_t seed =
      seed_flag.empty() ? 2024 : std::strtoull(seed_flag.c_str(), nullptr, 10);

  const size_t events = quick ? 20'000 : 120'000;
  const size_t reps = quick ? 5 : 9;
  std::printf("Recording NF traces (%zu events/NF, %zu timed reps, seed "
              "%llu)...\n\n",
              events, reps, static_cast<unsigned long long>(seed));
  const auto traces =
      PrepareNfTraces(RecordAndEncodeNfTraces(events, seed, pool.get()));

  // The full Fig. 5a inner loop at one cache size: every unordered NF pair,
  // replayed under both configurations.
  std::vector<SweepJob> pairs;
  for (size_t i = 0; i < kNumNfs; ++i) {
    for (size_t j = i; j < kNumNfs; ++j) {
      pairs.push_back(SweepJob{{i, j}, KiB(512)});
    }
  }
  auto sweep = [&traces, &pairs, &pool](obs::MetricRegistry* metrics,
                                        obs::TraceRing* trace) {
    const auto degradations =
        RunDegradationSweep(pool.get(), traces, pairs, metrics, trace,
                            SweepTrace::kAllJobs);
    double checksum = 0.0;
    for (const auto& degradation : degradations) {
      checksum += degradation[0] + degradation[1];
    }
    return checksum;
  };
  // The three variants are interleaved within each rep (uninstrumented,
  // then metrics, then metrics+trace) rather than timed as three sequential
  // blocks: machine drift across the run then biases every variant equally
  // instead of whichever block ran last, which is what makes a low-single-
  // digit-percent budget measurable on shared hardware.
  obs::MetricRegistry metrics;
  obs::TraceRing trace;  // unbounded sink; per-task shards merge at join
  struct Variant {
    const char* label;
    obs::MetricRegistry* metrics;
    obs::TraceRing* trace;
    std::vector<double> samples;
    double checksum = 0.0;
  };
  Variant variants[3] = {{"uninstrumented", nullptr, nullptr, {}, 0.0},
                         {"metrics", &metrics, nullptr, {}, 0.0},
                         {"metrics+trace", &metrics, &trace, {}, 0.0}};
  std::printf("Timing interleaved sweeps (uninstrumented / metrics / "
              "metrics+trace per rep)...\n");
  for (size_t r = 0; r < reps; ++r) {
    for (Variant& v : variants) {
      if (v.metrics != nullptr) {
        v.metrics->ResetAll();
      }
      if (v.trace != nullptr) {
        v.trace->Clear();  // keeps interned names; drops records and lanes
      }
      const auto start = Clock::now();
      v.checksum += sweep(v.metrics, v.trace);
      const auto stop = Clock::now();
      v.samples.push_back(
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
  }
  for (const Variant& v : variants) {
    std::printf("  (%s checksum %.6f)\n", v.label, v.checksum);
  }
  const double base_ms = MinMs(variants[0].samples);
  const double metrics_ms = MinMs(variants[1].samples);
  const double trace_ms = MinMs(variants[2].samples);

  const double metrics_pct = (metrics_ms / base_ms - 1.0) * 100.0;
  const double trace_pct = (trace_ms / base_ms - 1.0) * 100.0;
  const bool metrics_ok = metrics_pct < kMetricsBudgetPct;
  const bool trace_ok = trace_pct <= kTraceBudgetPct;
  std::printf("\nbest sweep: uninstrumented %.1f ms, metrics %.1f ms "
              "(%+.2f%%), metrics+trace %.1f ms (%+.2f%%)\n",
              base_ms, metrics_ms, metrics_pct, trace_ms, trace_pct);
  std::printf("  (final rep ring: %zu records kept, %llu evicted)\n",
              trace.size(),
              static_cast<unsigned long long>(trace.evicted()));
  std::printf("budget: metrics overhead below %.0f%%          ->  %s\n",
              kMetricsBudgetPct, metrics_ok ? "PASS" : "FAIL");
  std::printf("budget: metrics+trace overhead within %.0f%%   ->  %s\n",
              kTraceBudgetPct, trace_ok ? "PASS" : "FAIL");
  if (quick) {
    std::printf("  (quick mode: informational only — budgets gate on the "
                "full-size replay)\n");
  }

  const std::string out_path = [&] {
    const std::string flag = FlagValue(argc, argv, "--out");
    return flag.empty() ? std::string("BENCH_obs_overhead.json") : flag;
  }();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"obs_overhead\",\"seed\":%llu,"
               "\"events_per_nf\":%zu,"
               "\"reps\":%zu,\"uninstrumented_ms\":%.3f,"
               "\"metrics_ms\":%.3f,\"metrics_overhead_pct\":%.3f,"
               "\"metrics_trace_ms\":%.3f,\"trace_overhead_pct\":%.3f,"
               "\"ring_records\":%zu,\"ring_evicted\":%llu,"
               "\"budget_pct\":%.1f,\"trace_budget_pct\":%.1f,"
               "\"quick\":%s,\"pass\":%s}\n",
               static_cast<unsigned long long>(seed), events, reps, base_ms,
               metrics_ms, metrics_pct, trace_ms,
               trace_pct, trace.size(),
               static_cast<unsigned long long>(trace.evicted()),
               kMetricsBudgetPct, kTraceBudgetPct, quick ? "true" : "false",
               metrics_ok && trace_ok ? "true" : "false");
  std::fclose(f);
  std::printf("Wrote %s\n", out_path.c_str());
  return (quick || (metrics_ok && trace_ok)) ? 0 : 1;
}
