// Measures the runtime cost of the observability layer on the Fig. 5a hot
// path: the same colocation replay is timed with no obs hooks (the
// SNIC_OBS_DISABLED proxy: every instrumentation site degrades to a
// null-pointer check) and with a live metrics registry attached. The
// acceptance bar is <2% slowdown; results land in BENCH_obs_overhead.json.
//
// Tracing is measured separately and has no budget: it allocates an event
// per DRAM round trip and is meant for targeted runs, not always-on use.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"

namespace {

using Clock = std::chrono::steady_clock;

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;
  using namespace snic::bench;

  PrintHeader("Observability overhead on the Fig. 5a replay path",
              "instrumentation budget: <2% vs uninstrumented");

  // --jobs=N: sweep workers; the checksum (and so the replay results) is
  // byte-identical at every N, and each timed variant parallelizes the same
  // way. The <2% budget is calibrated on the serial path — at jobs > 1 the
  // measured ratio also absorbs scheduler noise (worst when workers
  // oversubscribe the cores), so gate the budget with --jobs=1.
  const auto pool = MakePool(JobsFlag(argc, argv));

  const size_t events = quick ? 20'000 : 120'000;
  const size_t reps = quick ? 5 : 9;
  std::printf("Recording NF traces (%zu events/NF, %zu timed reps)...\n\n",
              events, reps);
  const auto traces = RecordNfTraces(events, 2024, pool.get());

  // The full Fig. 5a inner loop at one cache size: every unordered NF pair,
  // replayed under both configurations.
  std::vector<SweepJob> pairs;
  for (size_t i = 0; i < kNumNfs; ++i) {
    for (size_t j = i; j < kNumNfs; ++j) {
      pairs.push_back(SweepJob{{i, j}, KiB(512)});
    }
  }
  auto sweep = [&traces, &pairs, &pool](obs::MetricRegistry* metrics,
                                        obs::TraceLog* trace) {
    const auto degradations =
        RunDegradationSweep(pool.get(), traces, pairs, metrics, trace,
                            SweepTrace::kAllJobs);
    double checksum = 0.0;
    for (const auto& degradation : degradations) {
      checksum += degradation[0] + degradation[1];
    }
    return checksum;
  };
  auto timed = [&sweep, reps](obs::MetricRegistry* metrics,
                              obs::TraceLog* trace) {
    std::vector<double> samples;
    samples.reserve(reps);
    double checksum = 0.0;
    for (size_t r = 0; r < reps; ++r) {
      if (metrics != nullptr) {
        metrics->ResetAll();
      }
      if (trace != nullptr) {
        trace->Clear();
      }
      const auto start = Clock::now();
      checksum += sweep(metrics, trace);
      const auto stop = Clock::now();
      samples.push_back(
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
    std::printf("  (checksum %.6f)\n", checksum);
    return MedianMs(std::move(samples));
  };

  std::printf("Timing uninstrumented sweeps...\n");
  const double base_ms = timed(nullptr, nullptr);
  std::printf("Timing metrics-instrumented sweeps...\n");
  obs::MetricRegistry metrics;
  const double metrics_ms = timed(&metrics, nullptr);
  std::printf("Timing metrics+trace sweeps...\n");
  obs::TraceLog trace;
  const double trace_ms = timed(&metrics, &trace);

  const double metrics_pct = (metrics_ms / base_ms - 1.0) * 100.0;
  const double trace_pct = (trace_ms / base_ms - 1.0) * 100.0;
  std::printf("\nmedian sweep: uninstrumented %.1f ms, metrics %.1f ms "
              "(%+.2f%%), metrics+trace %.1f ms (%+.2f%%)\n",
              base_ms, metrics_ms, metrics_pct, trace_ms, trace_pct);
  std::printf("budget: metrics overhead must stay below 2%%  ->  %s\n",
              metrics_pct < 2.0 ? "PASS" : "FAIL");

  const std::string out_path = [&] {
    const std::string flag = FlagValue(argc, argv, "--out");
    return flag.empty() ? std::string("BENCH_obs_overhead.json") : flag;
  }();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"obs_overhead\",\"events_per_nf\":%zu,"
               "\"reps\":%zu,\"uninstrumented_ms\":%.3f,"
               "\"metrics_ms\":%.3f,\"metrics_overhead_pct\":%.3f,"
               "\"metrics_trace_ms\":%.3f,\"trace_overhead_pct\":%.3f,"
               "\"budget_pct\":2.0,\"pass\":%s}\n",
               events, reps, base_ms, metrics_ms, metrics_pct, trace_ms,
               trace_pct, metrics_pct < 2.0 ? "true" : "false");
  std::fclose(f);
  std::printf("Wrote %s\n", out_path.c_str());
  return metrics_pct < 2.0 ? 0 : 1;
}
