// Differential chaos soak: fault isolation as a byte-identity invariant.
//
// Runs the same multi-NF constellation twice from one seed: scenario 0 is
// fault-free; scenario 1 installs a fault schedule scoped entirely to the
// victim NF A (accelerator faults, DMA staging errors, ingress
// drop/corruption, transient launch failures, a heartbeat hang, bus-domain
// stalls). A crashes, restarts under the supervisor's deterministic backoff,
// degrades to its software path and finally quarantines — while bystander
// NF B's packet outcomes, per-NF metrics, bus grants and trace lane must be
// BYTE-IDENTICAL across the two scenarios, at every --jobs count. That is
// the S-NIC isolation claim extended to failure: faults in one tenant are
// invisible to another even through recovery machinery.
//
// Flags: --quick --jobs=N --seed=S --out=FILE (JSON summary)
//        --trace-out=FILE (faulted scenario's Chrome trace)
//        --forensics-out=PREFIX (binary span rings for tools/snic_trace:
//          PREFIX.baseline.bin / PREFIX.faulted.bin)
// Exit status 1 when the invariant is violated.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/soak_common.h"
#include "src/accel/accelerator.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/keys.h"
#include "src/fault/fault.h"
#include "src/mgmt/dma.h"
#include "src/mgmt/nic_os.h"
#include "src/mgmt/supervisor.h"
#include "src/net/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/obs/trace_ring.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/bus.h"

namespace snic {
namespace {

constexpr uint16_t kPortA = 1111;
constexpr uint16_t kPortB = 2222;
constexpr uint16_t kPortC = 3333;
constexpr uint64_t kCyclesPerStep = 100;

using bench::AppendF;
using bench::Fnv;

struct ScenarioResult {
  std::string b_report;   // the invariant: identical across scenarios
  std::string summary;    // scenario-specific narrative (printed)
  obs::TraceLog trace;
  obs::TraceRing ring;    // binary span stream (tools/snic_trace forensics)
  // For the JSON verdict (faulted scenario's values are reported).
  uint64_t faults_injected = 0;
  mgmt::SupervisorStats supervisor_stats;
};

mgmt::FunctionImage MakeImage(const std::string& name, uint16_t port,
                              uint32_t zip_clusters) {
  mgmt::FunctionImage image;
  image.name = name;
  image.code_and_data.assign(3000, 0xc0);
  image.cores = 1;
  image.memory_bytes = 8ull << 20;
  image.accel_clusters[static_cast<size_t>(accel::AcceleratorType::kZip)] =
      zip_clusters;
  net::SwitchRule rule;
  rule.dst_port = port;
  image.switch_rules.push_back(rule);
  return image;
}

// The victim-scoped fault schedule. `a_id` is A's initial nf id; the
// supervisor's restart callback retargets these rules as A's id changes.
void InstallFaultSchedule(fault::FaultPlane& plane, uint64_t a_id) {
  auto add = [&plane](std::string_view site, uint64_t nf, uint64_t skip,
                      uint64_t count, uint64_t period, uint64_t stall) {
    fault::FaultRule rule;
    rule.site = std::string(site);
    rule.nf_id = nf;
    rule.skip = skip;
    rule.count = count;
    rule.period = period;
    rule.stall_cycles = stall;
    plane.AddRule(rule);
  };
  constexpr uint64_t kForever = fault::FaultRule::kForever;
  // Sporadic ingress damage on A's pipeline.
  add(fault::sites::kVppRxDrop, a_id, 20, 1, 97, 0);
  add(fault::sites::kVppRxCorrupt, a_id, 50, 1, 131, 0);
  // Admission-policer brown-outs: frames bounced at A's ingress as if its
  // token bucket were empty (overload plane).
  add(fault::sites::kVppRxAdmissionReject, a_id, 70, 1, 113, 0);
  // One transient accelerator fault: crash -> downgrade to software path.
  add(fault::sites::kAccelThreadAccess, a_id, 40, 1, 0, 0);
  // A's first restart fails twice (setup consumes launch hits 0..2: A,B,C).
  add(fault::sites::kNfLaunch, fault::kAnyNf, 3, 2, 0, 0);
  // Heartbeat hang long enough to trip the watchdog.
  add(fault::sites::kNfHang, a_id, 300, 40, 0, 0);
  // One DMA staging error on the readback path.
  add(fault::sites::kDmaNicToHost, a_id, 200, 1, 0, 0);
  // Endgame: the host->NIC path fails forever; repeated crash-on-restart
  // walks A into quarantine.
  add(fault::sites::kDmaHostToNic, a_id, 1200, kForever, 0, 0);
  // Bus-domain stalls for A's temporal-partition domain (domain 0).
  add(fault::sites::kBusTimeout, 0, 10, 1, 50, 500);
}

ScenarioResult RunScenario(bool faulted, uint64_t seed, uint64_t steps) {
  ScenarioResult result;
  obs::MetricRegistry registry;
  obs::ScopedDefaultRegistry scoped_registry(&registry);

  fault::FaultPlane plane(runtime::DeriveTaskSeed(seed, 1));
  plane.AttachObs(&registry);
  plane.AttachTrace(&result.trace);
  plane.AttachTraceRing(&result.ring);
  fault::ScopedFaultPlane scoped_plane(&plane);

  // Identical key material, device and traffic in both scenarios: only the
  // fault schedule differs.
  Rng vendor_rng(runtime::DeriveTaskSeed(seed, 2));
  crypto::VendorAuthority vendor(512, vendor_rng);
  core::SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = 256ull << 20;
  config.rsa_modulus_bits = 512;
  core::SnicDevice device(config, vendor);
  device.AttachTraceRing(&result.ring);
  mgmt::NicOs nic_os(&device);

  mgmt::SupervisorConfig sup_config;
  sup_config.seed = runtime::DeriveTaskSeed(seed, 3);
  sup_config.watchdog_timeout_cycles = 15 * kCyclesPerStep;
  sup_config.backoff_base_cycles = 2 * kCyclesPerStep;
  sup_config.backoff_max_cycles = 32 * kCyclesPerStep;
  sup_config.backoff_jitter_pct = 25;
  sup_config.quarantine_after = 4;
  sup_config.stable_cycles = 20 * kCyclesPerStep;
  mgmt::Supervisor supervisor(&nic_os, vendor.public_key(), sup_config);
  supervisor.AttachObs(&registry);
  supervisor.AttachTrace(&result.trace);
  supervisor.AttachTraceRing(&result.ring);

  const auto adopt = [&supervisor](const mgmt::FunctionImage& image) {
    const auto id = supervisor.Adopt(image);
    SNIC_CHECK(id.ok());
    return id.value();
  };
  uint64_t a_id = adopt(MakeImage("victim-a", kPortA, /*zip_clusters=*/1));
  const uint64_t b_id = adopt(MakeImage("bystander-b", kPortB, 0));
  const uint64_t c_id = adopt(MakeImage("tenant-c", kPortC, 0));

  if (faulted) {
    InstallFaultSchedule(plane, a_id);
  }

  // A's DMA bank; re-pointed at A's new id after every restart.
  mgmt::HostMemory host(64 * 1024);
  mgmt::DmaController dma(&device, &host);
  const auto bank_for = [](uint64_t nf_id) {
    mgmt::DmaBankConfig bank;
    bank.nf_id = nf_id;
    bank.host_window_base = 0;
    bank.host_window_bytes = 4096;
    bank.nic_window_vbase = 0x10000;
    bank.nic_window_bytes = 4096;
    return bank;
  };
  SNIC_CHECK_OK(dma.ConfigureBank(1, bank_for(a_id)));

  supervisor.SetRestartCallback([&](const std::string& name, uint64_t old_id,
                                    uint64_t new_id) {
    if (name == "victim-a") {
      plane.RetargetRules(old_id, new_id);
      a_id = new_id;
      SNIC_CHECK_OK(dma.ConfigureBank(1, bank_for(new_id)));
    }
  });

  const auto zip = accel::AcceleratorType::kZip;
  const auto a_cluster = [&]() -> int {
    for (uint32_t i = 0; i < device.accel_pool().NumClusters(zip); ++i) {
      if (device.accel_pool().Owner(zip, i) == std::optional<uint64_t>(a_id)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  sim::TemporalPartitionArbiter::Config bus_config;
  bus_config.transfer_cycles = 4;
  bus_config.num_domains = 2;  // domain 0 = A, domain 1 = B
  bus_config.epoch_cycles = 64;
  bus_config.dead_time_cycles = 8;
  sim::TemporalPartitionArbiter bus(bus_config);

  Rng traffic(runtime::DeriveTaskSeed(seed, 4));
  obs::Counter& b_rx = registry.GetCounter("chaos.b.rx", {{"nf", "b"}});
  obs::Counter& b_tx = registry.GetCounter("chaos.b.tx", {{"nf", "b"}});

  Fnv b_rx_digest, b_wire_digest, b_bus_digest;
  uint64_t b_wire_packets = 0, b_bus_grants = 0;
  uint64_t a_crashes_seen = 0;
  uint64_t wire_rejected = 0, a_tx_rejected = 0, c_tx_rejected = 0;

  for (uint64_t step = 0; step < steps; ++step) {
    const uint64_t now = (step + 1) * kCyclesPerStep;
    plane.AdvanceClockTo(now);
    device.AdvanceClockTo(now);

    // Wire traffic: three frames per step, ports and payload drawn from the
    // scenario-invariant traffic stream.
    for (int i = 0; i < 3; ++i) {
      const uint64_t pick = traffic.NextBounded(3);
      net::FiveTuple tuple;
      tuple.src_ip = net::Ipv4FromString("10.0.0.9");
      tuple.dst_ip = net::Ipv4FromString("203.0.113.7");
      tuple.src_port = static_cast<uint16_t>(10000 + traffic.NextBounded(100));
      tuple.dst_port = pick == 0 ? kPortA : (pick == 1 ? kPortB : kPortC);
      tuple.protocol = 6;
      std::vector<uint8_t> payload(64);
      for (size_t k = 0; k < payload.size(); k += 8) {
        const uint64_t v = traffic.NextU64();
        for (size_t j = 0; j < 8; ++j) {
          payload[k + j] = static_cast<uint8_t>(v >> (8 * j));
        }
      }
      net::Packet packet = net::PacketBuilder()
                               .SetTuple(tuple)
                               .SetPayload(payload)
                               .Build();
      // Rejections here are A's injected ingress faults (or admission
      // rejects) shedding load — counted, never silently discarded.
      if (!device.DeliverFromWire(std::move(packet)).ok()) {
        ++wire_rejected;
      }
    }

    // One bus transfer per domain per step. Domain 1 (B) grants must be
    // byte-identical whatever happens in domain 0.
    (void)bus.Grant(now, /*domain=*/0);
    const uint64_t b_grant = bus.Grant(now, /*domain=*/1);
    b_bus_digest.Mix64(b_grant);
    ++b_bus_grants;

    // Victim A: polls, stages DMA, touches its accelerator. Any transient
    // (kUnavailable) failure is a crash the supervisor recovers from.
    const bool a_running =
        supervisor.HealthOf("victim-a") == mgmt::NfHealth::kRunning;
    const bool a_hung = a_running && SNIC_FAULT_FIRES(fault::sites::kNfHang, a_id);
    if (a_running && !a_hung) {
      bool a_crashed = false;
      while (!a_crashed) {
        auto received = device.NfReceive(a_id);
        if (!received.ok()) {
          break;
        }
        if (!device.NfSend(a_id, std::move(received).value()).ok()) {
          ++a_tx_rejected;  // A's ODB reservation full: load shed, counted
        }
      }
      Status h2n = dma.HostToNic(1, 0, 0x10000, 256);
      Status n2h = a_crashed || !h2n.ok()
                       ? OkStatus()
                       : dma.NicToHost(1, 0x10000, 1024, 256);
      if (h2n.code() == ErrorCode::kUnavailable ||
          n2h.code() == ErrorCode::kUnavailable) {
        supervisor.ReportCrash("victim-a", mgmt::CrashCause::kDmaFault);
        a_crashed = true;
      }
      if (!a_crashed && !supervisor.IsDegraded("victim-a")) {
        const int cluster = a_cluster();
        if (cluster >= 0) {
          auto access = device.accel_pool().ThreadAccess(
              zip, static_cast<uint32_t>(cluster), 0x1000, false);
          if (!access.ok() &&
              access.status().code() == ErrorCode::kUnavailable) {
            supervisor.ReportCrash("victim-a", mgmt::CrashCause::kAccelFault);
            a_crashed = true;
          }
        }
      }
      if (a_crashed) {
        ++a_crashes_seen;
      } else {
        supervisor.Heartbeat("victim-a");
      }
    }

    // Bystander B: polls, digests, echoes. Everything it observes goes into
    // the invariant report.
    for (;;) {
      auto received = device.NfReceive(b_id);
      if (!received.ok()) {
        break;
      }
      net::Packet packet = std::move(received).value();
      b_rx_digest.Mix(packet.bytes().data(), packet.size());
      b_rx.Inc();
      result.trace.AddComplete("b.process", now, 1,
                               static_cast<uint32_t>(b_id), 0);
      if (device.NfSend(b_id, std::move(packet)).ok()) {
        b_tx.Inc();
      }
    }
    supervisor.Heartbeat("bystander-b");

    // Tenant C: a plain forwarding tenant keeping the switch busy.
    for (;;) {
      auto received = device.NfReceive(c_id);
      if (!received.ok()) {
        break;
      }
      if (!device.NfSend(c_id, std::move(received).value()).ok()) {
        ++c_tx_rejected;
      }
    }
    supervisor.Heartbeat("tenant-c");

    supervisor.Tick(now);

    // Drain the wire; attribute B's frames by their port.
    for (;;) {
      auto out = device.TransmitToWire();
      if (!out.ok()) {
        break;
      }
      const auto parsed = net::Parse(out.value().bytes());
      if (parsed.ok() && parsed.value().Tuple().dst_port == kPortB) {
        b_wire_digest.Mix(out.value().bytes().data(), out.value().size());
        ++b_wire_packets;
      }
    }
  }

  // ---- B's invariant report ----------------------------------------------
  std::string& report = result.b_report;
  const core::VirtualPacketPipeline* b_vpp = device.Vpp(b_id);
  SNIC_CHECK(b_vpp != nullptr);
  const core::VppStats& bs = b_vpp->stats();
  const bench::LaneDigest b_trace =
      bench::DigestTraceLane(result.trace, static_cast<uint32_t>(b_id));
  AppendF(report, "b.nf_id: %" PRIu64 "\n", b_id);
  AppendF(report, "b.rx: %" PRIu64 " digest: %016" PRIx64 "\n", b_rx.value(),
          b_rx_digest.h);
  AppendF(report, "b.wire: %" PRIu64 " digest: %016" PRIx64 "\n",
          b_wire_packets, b_wire_digest.h);
  AppendF(report,
          "b.vpp: rx=%" PRIu64 " drop_full=%" PRIu64 " drop_fault=%" PRIu64
          " corrupt_fault=%" PRIu64 " tx=%" PRIu64 " rx_bytes=%" PRIu64
          " tx_bytes=%" PRIu64 "\n",
          bs.rx_packets, bs.rx_dropped_full, bs.rx_dropped_fault,
          bs.rx_corrupt_fault, bs.tx_packets, bs.rx_bytes, bs.tx_bytes);
  AppendF(report,
          "b.vpp.overload: drop_admission=%" PRIu64 " drop_early=%" PRIu64
          " shed_rx=%" PRIu64 " shed_tx=%" PRIu64 " shed_bytes=%" PRIu64
          " peak_frames=%" PRIu64 " peak_bytes=%" PRIu64 "\n",
          bs.rx_dropped_admission, bs.rx_dropped_early, bs.rx_shed_deadline,
          bs.tx_shed_deadline, bs.shed_bytes, bs.rx_peak_frames,
          bs.rx_peak_bytes);
  AppendF(report, "b.bus: %" PRIu64 " digest: %016" PRIx64 "\n", b_bus_grants,
          b_bus_digest.h);
  AppendF(report, "b.metrics: tx=%" PRIu64 "\n", b_tx.value());
  AppendF(report, "b.trace: %" PRIu64 " digest: %016" PRIx64 "\n",
          b_trace.count, b_trace.digest);
  // B's binary span stream: same invariant, fixed-size records.
  const bench::LaneDigest b_ring =
      bench::DigestRingLane(result.ring, static_cast<uint32_t>(b_id));
  AppendF(report, "b.ring: %" PRIu64 " digest: %016" PRIx64 "\n", b_ring.count,
          b_ring.digest);

  // ---- Scenario narrative ------------------------------------------------
  const mgmt::SupervisorStats& stats = supervisor.stats();
  std::string& summary = result.summary;
  AppendF(summary, "  faults injected:   %" PRIu64 "\n",
          plane.injected_total());
  for (std::string_view site :
       {fault::sites::kVppRxDrop, fault::sites::kVppRxCorrupt,
        fault::sites::kVppRxAdmissionReject, fault::sites::kAccelThreadAccess,
        fault::sites::kNfLaunch, fault::sites::kDmaNicToHost,
        fault::sites::kDmaHostToNic, fault::sites::kBusTimeout, fault::sites::kNfHang}) {
    const uint64_t n = plane.InjectedAt(site);
    if (n > 0) {
      AppendF(summary, "    %-22s %" PRIu64 "\n", std::string(site).c_str(),
              n);
    }
  }
  AppendF(summary,
          "  supervisor: crashes=%" PRIu64 " watchdog=%" PRIu64
          " restarts=%" PRIu64 " failed_restarts=%" PRIu64
          " quarantines=%" PRIu64 "\n",
          stats.crashes, stats.watchdog_timeouts, stats.restarts,
          stats.failed_restarts, stats.quarantines);
  AppendF(summary,
          "  supervisor: downgrades=%" PRIu64 " reattestations=%" PRIu64 "\n",
          stats.accel_downgrades, stats.reattestations);
  AppendF(
      summary, "  victim-a: health=%s degraded=%d crashes=%" PRIu64 "\n",
      std::string(mgmt::NfHealthName(supervisor.HealthOf("victim-a"))).c_str(),
      supervisor.IsDegraded("victim-a") ? 1 : 0, a_crashes_seen);
  AppendF(summary,
          "  rejected: wire=%" PRIu64 " a_tx=%" PRIu64 " c_tx=%" PRIu64 "\n",
          wire_rejected, a_tx_rejected, c_tx_rejected);
  result.faults_injected = plane.injected_total();
  result.supervisor_stats = stats;
  return result;
}

}  // namespace
}  // namespace snic

int main(int argc, char** argv) {
  using namespace snic;

  const bench::SoakFlags flags = bench::ParseSoakFlags(
      argc, argv, /*default_seed=*/0xc4a05ull, /*quick_steps=*/2000,
      /*full_steps=*/12000);
  const std::string trace_out = bench::FlagValue(argc, argv, "--trace-out");
  const std::string forensics_out =
      bench::FlagValue(argc, argv, "--forensics-out");

  bench::PrintHeader("Chaos soak: differential fault isolation",
                     "S-NIC isolation under injected faults (robustness)");

  std::vector<ScenarioResult> results(2);
  {
    auto pool = bench::MakePool(flags.jobs);
    runtime::ParallelFor(pool.get(), 2, [&](size_t task) {
      results[task] =
          RunScenario(/*faulted=*/task == 1, flags.seed, flags.steps);
    });
  }

  std::printf("seed: %" PRIu64 "  steps/scenario: %" PRIu64 "\n\n", flags.seed,
              flags.steps);
  std::printf("scenario 0 (fault-free):\n%s\n", results[0].summary.c_str());
  std::printf("scenario 1 (faults in victim-a only):\n%s\n",
              results[1].summary.c_str());

  const bool identical = results[0].b_report == results[1].b_report;
  std::printf("bystander-b report:\n%s\n", results[0].b_report.c_str());
  if (identical) {
    std::printf("INVARIANT HOLDS: bystander-b byte-identical across "
                "scenarios\n");
  } else {
    std::printf("INVARIANT VIOLATED: bystander-b diverged\n");
    std::printf("--- fault-free ---\n%s", results[0].b_report.c_str());
    std::printf("--- faulted ---\n%s", results[1].b_report.c_str());
  }

  if (!trace_out.empty()) {
    const Status s = results[1].trace.WriteFile(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    }
  }
  if (!forensics_out.empty()) {
    // Both scenarios' span streams, for tools/snic_trace forensics:
    //   snic_trace forensics --baseline=P.baseline.bin --subject=P.faulted.bin
    //              --bystander=<b.nf_id>
    const auto write_ring = [](const obs::TraceRing& ring,
                               const std::string& path) {
      const Status s = ring.WriteBinaryFile(path);
      if (!s.ok()) {
        std::fprintf(stderr, "ring write failed: %s\n", s.ToString().c_str());
        return false;
      }
      std::printf("Wrote %s\n", path.c_str());
      return true;
    };
    if (!write_ring(results[0].ring, forensics_out + ".baseline.bin") ||
        !write_ring(results[1].ring, forensics_out + ".faulted.bin")) {
      return 1;
    }
  }
  // One-line machine-readable verdict, always written; --out overrides the
  // default BENCH_chaos_soak.json path.
  const mgmt::SupervisorStats& fs = results[1].supervisor_stats;
  bench::VerdictJson verdict("chaos_soak", flags);
  verdict.AddU64("faults_injected", results[1].faults_injected);
  verdict.AddU64("crashes", fs.crashes);
  verdict.AddU64("watchdog_timeouts", fs.watchdog_timeouts);
  verdict.AddU64("restarts", fs.restarts);
  verdict.AddU64("quarantines", fs.quarantines);
  verdict.AddU64("accel_downgrades", fs.accel_downgrades);
  verdict.AddBool("invariant_holds", identical);
  if (!verdict.Write(identical)) {
    return 1;
  }
  return identical ? 0 : 1;
}
