// Regenerates Fig. 8: DPI accelerator throughput (Mpps) versus hardware-
// thread cluster size (16/32/48) and frame size (64 B / 512 B / 1.5 KB /
// 9 KB), with packets randomly generated on 16 programmable cores. The
// throughput model is validated by running the real automaton over sample
// payloads to confirm per-byte scan behaviour.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/accelerator.h"
#include "src/accel/aho_corasick.h"
#include "src/common/rng.h"
#include "src/common/table_printer.h"

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;
  using namespace snic::accel;

  bench::PrintHeader("Fig. 8: DPI throughput vs cluster size and frame size",
                     "S-NIC (EuroSys'24) Appendix C, Figure 8");

  // Functional validation: the automaton really scans random payloads and
  // cost is linear in bytes.
  const size_t patterns = quick ? 2'000 : 33'471;
  const AhoCorasick automaton(GenerateDpiRuleset(patterns, 11));
  Rng rng(8);
  for (size_t frame : {64u, 9000u}) {
    std::vector<uint8_t> payload(frame);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.NextU32());
    }
    const MatchResult r =
        automaton.Scan(std::span<const uint8_t>(payload.data(), payload.size()));
    SNIC_CHECK(r.bytes_scanned == frame);
  }
  std::printf("Automaton: %zu patterns, %zu nodes (scan validated)\n\n",
              patterns, automaton.node_count());

  const DpiTimingModel model;
  TablePrinter table({"Threads", "64B", "512B", "1.5KB", "9KB"});
  for (uint32_t threads : {16u, 32u, 48u}) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (size_t frame : {64u, 512u, 1514u, 9000u}) {
      row.push_back(
          TablePrinter::Fmt(model.ThroughputMpps(threads, frame), 3) +
          " Mpps");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: 64B frames are feed-limited (~1.1 Mpps regardless of\n"
      "threads); larger frames are accelerator-limited and scale with the\n"
      "cluster size (9KB jumbo frames scale ~linearly from 16 to 48 threads).\n");
  return 0;
}
