// Ablation: cache partitioning schemes (DESIGN.md item 2).
//
// §4.2 offers two options: hard static partitioning (side-channel free,
// fixed allocation) and SecDCP-style partitioning (one-way information flow
// NIC-OS -> NF, resizable). The shared baseline shows why soft schemes are
// insufficient. This bench measures victim hit rate with/without a
// thrashing neighbour under each policy, plus SecDCP's ability to reclaim
// capacity for a growing domain.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/sim/cache.h"

namespace {

using namespace snic;

// Victim loops over `working_set` bytes; neighbour (domain 1) thrashes.
double VictimHitRate(sim::PartitionPolicy policy, uint64_t working_set,
                     bool neighbour_active, uint32_t victim_ways = 0) {
  sim::CacheConfig config;
  config.size_bytes = 1u << 20;  // 1 MB
  config.line_bytes = 64;
  config.associativity = 16;
  config.policy = policy;
  config.num_domains = 2;
  config.pseudo_lru = true;  // avoid strict-LRU cyclic-scan cliffs
  sim::Cache cache(config);
  if (victim_ways != 0 && policy == sim::PartitionPolicy::kSecDcp) {
    cache.ResizeDomain(0, victim_ways);
  }
  Rng rng(7);
  const uint64_t lines = working_set / 64;
  uint64_t hits = 0, accesses = 0;
  for (uint64_t i = 0; i < 400'000; ++i) {
    hits += cache.Access((i % lines) * 64, 0) ? 1 : 0;
    ++accesses;
    if (neighbour_active) {
      cache.Access(rng.NextU64() % (1u << 26), 1);
    }
  }
  return static_cast<double>(hits) / static_cast<double>(accesses);
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::TablePrinter;

  snic::bench::PrintHeader(
      "Ablation: cache partitioning scheme",
      "S-NIC (EuroSys'24) §4.2 design choice (hard static vs SecDCP)");

  TablePrinter table({"Policy", "Victim hit rate (alone)",
                      "Victim hit rate (thrashing neighbour)",
                      "Interference"});
  struct Row {
    sim::PartitionPolicy policy;
    const char* name;
  };
  for (const Row& row :
       {Row{sim::PartitionPolicy::kShared, "Shared LRU (commodity)"},
        Row{sim::PartitionPolicy::kStaticEqual, "Hard static 1/N (S-NIC)"},
        Row{sim::PartitionPolicy::kSecDcp, "SecDCP (min guarantee)"}}) {
    const double alone = VictimHitRate(row.policy, 400u << 10, false);
    const double contended = VictimHitRate(row.policy, 400u << 10, true);
    table.AddRow({row.name, TablePrinter::Pct(alone, 2),
                  TablePrinter::Pct(contended, 2),
                  TablePrinter::Pct(alone - contended, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // SecDCP's upside: the NIC OS can grant a hot domain more ways.
  std::printf("SecDCP resize (victim working set 900KB in a 1MB cache):\n");
  TablePrinter resize({"Victim ways", "Hit rate"});
  for (uint32_t ways : {8u, 12u, 15u}) {
    resize.AddRow({std::to_string(ways),
                   TablePrinter::Pct(VictimHitRate(sim::PartitionPolicy::kSecDcp,
                                                   900u << 10, false, ways),
                                     2)});
  }
  std::printf("%s\n", resize.ToString().c_str());
  std::printf(
      "Expected: shared LRU collapses under a thrashing neighbour (the side\n"
      "channel); both partitioned schemes show zero interference; SecDCP\n"
      "additionally converts extra ways into hit rate when resized.\n");
  return 0;
}
