// Ablation: the §4.8 underutilization trade.
//
// S-NIC forbids dynamic resource return, so a fixed fleet provisioned for
// peak load wastes cores and RAM off-peak. The paper's prescription is
// churn: create/destroy functions as load varies, paying nf_launch /
// nf_destroy latency instead. This bench runs a diurnal load curve against
// three policies and reports mean utilization, overload exposure, and the
// scaling latency paid.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/mgmt/autoscaler.h"

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;

  bench::PrintHeader("Ablation: underutilization vs function churn",
                     "S-NIC (EuroSys'24) §4.8 'Underutilization'");

  const int steps = quick ? 200 : 1440;  // one simulated day, minute steps
  auto load_at = [&](int step) {
    // Diurnal curve: trough 80, peak 520 (needs 1..6 instances of 100).
    const double phase = 2.0 * 3.14159265 * step / steps;
    return 300.0 + 220.0 * std::sin(phase - 1.2);
  };

  struct Policy {
    const char* name;
    uint32_t min_instances;
    uint32_t max_instances;
    bool scale;  // false = static fleet at min==max
  };
  const Policy policies[] = {
      {"Static peak fleet (6 instances)", 6, 6, false},
      {"Static trough fleet (2 instances)", 2, 2, false},
      {"Autoscaler (1..6, per paper)", 1, 6, true},
  };

  TablePrinter table({"Policy", "Mean utilization", "Overloaded steps",
                      "Launches", "Scaling latency paid"});
  for (const Policy& p : policies) {
    Rng rng(31);
    crypto::VendorAuthority vendor(512, rng);
    core::SnicConfig config;
    config.num_cores = 16;
    config.dram_bytes = 256ull << 20;
    config.rsa_modulus_bits = 512;
    core::SnicDevice device(config, vendor);
    mgmt::NicOs nic_os(&device);

    mgmt::AutoscalerConfig scaler_config;
    scaler_config.image.name = "unit";
    scaler_config.image.code_and_data.assign(4096, 0x44);
    scaler_config.image.memory_bytes = 8ull << 20;
    scaler_config.image.switch_rules.push_back(net::SwitchRule{});
    scaler_config.capacity_per_instance = 100.0;
    scaler_config.min_instances = p.min_instances;
    scaler_config.max_instances = p.max_instances;
    mgmt::Autoscaler scaler(&nic_os, scaler_config);

    for (int step = 0; step < steps; ++step) {
      SNIC_CHECK_OK(scaler.Step(load_at(step)));
    }
    const auto& stats = scaler.stats();
    table.AddRow({p.name, TablePrinter::Pct(stats.MeanUtilization(), 1),
                  std::to_string(stats.overload_steps),
                  std::to_string(stats.launches),
                  TablePrinter::Fmt(stats.launch_ms_paid +
                                        stats.teardown_ms_paid,
                                    1) +
                      " ms"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: a peak-provisioned static fleet wastes ~half its resources\n"
      "off-peak; a trough fleet overloads at peak; churn keeps utilization\n"
      "high at the cost of nf_launch/nf_destroy latency — which amortizes\n"
      "because functions live for minutes or hours (§4.8).\n");
  return 0;
}
