// Regenerates the §3.3 concrete-attack results: packet corruption, DPI
// ruleset stealing, and the IO-bus denial of service, each on the commodity
// configuration and on S-NIC.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/core/attacks.h"
#include "src/core/watermark.h"

namespace {

snic::core::SnicDevice MakeDevice(snic::core::SecurityMode mode,
                                  const snic::crypto::VendorAuthority& vendor) {
  snic::core::SnicConfig config;
  config.mode = mode;
  config.num_cores = 8;
  config.dram_bytes = 64ull << 20;
  config.rsa_modulus_bits = 512;
  return snic::core::SnicDevice(config, vendor);
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace snic;
  using namespace snic::core;

  bench::PrintHeader("Concrete attacks: commodity smart NIC vs S-NIC",
                     "S-NIC (EuroSys'24) Section 3.3");

  Rng rng(1);
  crypto::VendorAuthority vendor(512, rng);

  TablePrinter table({"Attack", "Commodity NIC", "S-NIC", "Detail (S-NIC)"});
  {
    SnicDevice commodity = MakeDevice(SecurityMode::kCommodity, vendor);
    SnicDevice snic = MakeDevice(SecurityMode::kSnic, vendor);
    const auto c = RunPacketCorruptionAttack(commodity);
    const auto s = RunPacketCorruptionAttack(snic);
    table.AddRow({"Packet corruption (LiquidIO, MazuNAT victim)",
                  c.succeeded ? "SUCCEEDS" : "fails",
                  s.succeeded ? "SUCCEEDS" : "blocked", s.detail});
  }
  {
    SnicDevice commodity = MakeDevice(SecurityMode::kCommodity, vendor);
    SnicDevice snic = MakeDevice(SecurityMode::kSnic, vendor);
    const auto c = RunDpiRulesetStealingAttack(commodity);
    const auto s = RunDpiRulesetStealingAttack(snic);
    table.AddRow({"DPI ruleset stealing (LiquidIO)",
                  c.succeeded ? "SUCCEEDS" : "fails",
                  s.succeeded ? "SUCCEEDS" : "blocked", s.detail});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("IO-bus denial of service (Agilio test_subsat loop), victim\n"
              "slowdown vs running alone under each arbitration policy:\n\n");
  TablePrinter dos({"Bus policy", "Victim slowdown", "Attacker req/kcycle"});
  struct Policy {
    sim::BusPolicy policy;
    const char* name;
  };
  for (const Policy& p :
       {Policy{sim::BusPolicy::kFcfs, "FCFS (commodity)"},
        Policy{sim::BusPolicy::kRoundRobin, "Round-robin"},
        Policy{sim::BusPolicy::kTemporalPartition, "Temporal partition (S-NIC)"}}) {
    const BusDosResult result = RunBusDosAttack(p.policy, 400'000);
    dos.AddRow({p.name, TablePrinter::Fmt(result.victim_slowdown, 3) + "x",
                TablePrinter::Fmt(result.attacker_requests_per_kilocycle, 1)});
  }
  std::printf("%s\n", dos.ToString().c_str());

  std::printf("Flow-watermarking side channel (§4.5 [11]): the attacker\n"
              "modulates bus load in a 64-bit pattern; a threshold decoder\n"
              "reads it back from the victim's request latencies.\n\n");
  TablePrinter wm({"Bus policy", "Bits recovered", "Latency bit1/bit0"});
  for (const Policy& p :
       {Policy{sim::BusPolicy::kFcfs, "FCFS (commodity)"},
        Policy{sim::BusPolicy::kRoundRobin, "Round-robin"},
        Policy{sim::BusPolicy::kTemporalPartition, "Temporal partition (S-NIC)"}}) {
    const WatermarkResult result = RunWatermarkAttack(p.policy);
    wm.AddRow({p.name, TablePrinter::Pct(result.bit_accuracy, 1),
               TablePrinter::Fmt(result.mean_latency_bit1, 1) + " / " +
                   TablePrinter::Fmt(result.mean_latency_bit0, 1) + " cyc"});
  }
  std::printf("%s\n", wm.ToString().c_str());
  std::printf(
      "Paper: on the Agilio the bus-DoS attack saturated the bus and\n"
      "hard-crashed the NIC; S-NIC's temporal partitioning bounds the\n"
      "victim's slowdown to the epoch tax and — per §4.5 — eliminates\n"
      "watermark attacks (decoding falls to chance).\n");
  return 0;
}
