// Ablation: denylist representation (DESIGN.md item 3; paper footnote 1).
//
// "The bitmap could literally be a bitmap, or its logical functionality
// could be implemented by traversing the page tables of programmable cores.
// The former option is faster but requires more die area." This bench
// quantifies the trade: hardware lookup steps and state bytes for both
// options, across NIC DRAM sizes and occupancy levels.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/denylist.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace snic;
  using namespace snic::core;

  bench::PrintHeader("Ablation: denylist representation",
                     "S-NIC (EuroSys'24) §4.2, footnote 1");

  TablePrinter table({"DRAM", "Denied pages", "Bitmap bytes",
                      "PageTable bytes", "Bitmap steps", "PageTable steps"});
  for (uint64_t dram_gib : {2ull, 8ull, 32ull}) {
    const uint64_t pages = dram_gib * kGiB / MiB(2);
    for (uint64_t functions : {1ull, 8ull, 64ull}) {
      auto bitmap = MakeDenylist(DenylistKind::kBitmap, pages);
      auto pagetable = MakeDenylist(DenylistKind::kPageTable, pages);
      // Each function denylists a 64 MB image (32 pages), clustered.
      const uint64_t denied = functions * 32;
      for (uint64_t f = 0; f < functions; ++f) {
        for (uint64_t p = 0; p < 32; ++p) {
          const uint64_t page = (f * 97) % (pages - 32) + p;
          bitmap->Deny(page);
          pagetable->Deny(page);
        }
      }
      table.AddRow({std::to_string(dram_gib) + " GiB",
                    std::to_string(denied),
                    std::to_string(bitmap->StateBytes()),
                    std::to_string(pagetable->StateBytes()),
                    std::to_string(bitmap->LookupSteps()),
                    std::to_string(pagetable->LookupSteps())});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: the bitmap costs one hardware step but its state scales\n"
      "with DRAM size; the EPT-style walk costs two steps with state that\n"
      "scales with *occupied* leaves — the paper's area/latency trade.\n");
  return 0;
}
