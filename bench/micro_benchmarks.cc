// Google-benchmark micro-benchmarks for the hot paths of every substrate:
// crypto (SHA-256, RSA, HMAC), the DPI automaton, NF data structures
// (Maglev, DIR-24-8, flow map), the ZIP/RAID accelerators, the cache/bus
// timing models, and packet parsing.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/accel/aho_corasick.h"
#include "src/accel/raid.h"
#include "src/accel/zip.h"
#include "src/common/rng.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha256.h"
#include "src/net/parser.h"
#include "src/nf/flow_hash_map.h"
#include "src/nf/lpm.h"
#include "src/nf/maglev_lb.h"
#include "src/sim/bus.h"
#include "src/sim/cache.h"
#include "src/trace/trace_gen.h"

namespace {

using namespace snic;

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const auto data = RandomBytes(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(
        std::span<const uint8_t>(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1514)->Arg(64 * 1024);

void BM_HmacSha256(benchmark::State& state) {
  const auto key = RandomBytes(32, 2);
  const auto msg = RandomBytes(256, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::HmacSha256(std::span<const uint8_t>(key.data(), key.size()),
                           std::span<const uint8_t>(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(4);
  const auto kp =
      crypto::GenerateRsaKeyPair(static_cast<size_t>(state.range(0)), rng);
  const auto msg = RandomBytes(64, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::RsaSign(
        kp.private_key, std::span<const uint8_t>(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_AhoCorasickScan(benchmark::State& state) {
  static const accel::AhoCorasick* automaton = new accel::AhoCorasick(
      accel::GenerateDpiRuleset(4096, 11));
  const auto payload = RandomBytes(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(automaton->Scan(
        std::span<const uint8_t>(payload.data(), payload.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(64)->Arg(1514)->Arg(9000);

void BM_ZipCompress(benchmark::State& state) {
  // Half-compressible payload (trace generator's default entropy).
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  static constexpr char kText[] = "GET /index.html HTTP/1.1 ";
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = rng.NextDouble() < 0.5
                  ? static_cast<uint8_t>(rng.NextU32())
                  : static_cast<uint8_t>(kText[i % (sizeof(kText) - 1)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::ZipCompress(std::span<const uint8_t>(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ZipCompress)->Arg(1514)->Arg(64 * 1024);

void BM_RaidParity(benchmark::State& state) {
  const auto a = RandomBytes(static_cast<size_t>(state.range(0)), 8);
  const auto b = RandomBytes(static_cast<size_t>(state.range(0)), 9);
  const auto c = RandomBytes(static_cast<size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::RaidParity({std::span<const uint8_t>(a.data(), a.size()),
                           std::span<const uint8_t>(b.data(), b.size()),
                           std::span<const uint8_t>(c.data(), c.size())}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_RaidParity)->Arg(4096)->Arg(64 * 1024);

void BM_MaglevLookup(benchmark::State& state) {
  nf::MaglevConfig config;
  config.num_backends = 100;
  config.table_size = 65'537;
  // Shared across benchmark repetitions: Maglev table fill dominates setup.
  // snic-lint: allow(no-mutable-file-static)
  static nf::MaglevLb* lb = new nf::MaglevLb(config);
  trace::FlowTable flows(10'000, 12);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lb->BackendForTuple(flows.TupleForRank(i++ % flows.size())));
  }
}
BENCHMARK(BM_MaglevLookup);

void BM_LpmLookup(benchmark::State& state) {
  // Shared across benchmark repetitions: route-table build dominates setup.
  // snic-lint: allow(no-mutable-file-static)
  static nf::Lpm* lpm = new nf::Lpm(nf::LpmConfig{.num_routes = 16'000});
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm->Lookup(rng.NextU32()));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_FlowHashMapFind(benchmark::State& state) {
  // Shared across benchmark repetitions: the 40k-flow fill dominates setup.
  // snic-lint: allow(no-mutable-file-static)
  static nf::NfArena* arena = new nf::NfArena("bench");
  // snic-lint: allow(no-mutable-file-static)
  static nf::MemoryRecorder* recorder = new nf::MemoryRecorder;
  // snic-lint: allow(no-mutable-file-static)
  static auto* map = [] {
    auto* m = new nf::FlowHashMap<uint64_t>(arena, recorder, 1 << 16, 0, "b");
    trace::FlowTable flows(40'000, 14);
    for (uint64_t r = 0; r < flows.size(); ++r) {
      m->Insert(flows.TupleForRank(r), r);
    }
    return m;
  }();
  trace::FlowTable flows(40'000, 14);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->Find(flows.TupleForRank(i++ % 40'000)));
  }
}
BENCHMARK(BM_FlowHashMapFind);

void BM_PacketParse(benchmark::State& state) {
  trace::PacketStream stream(trace::TraceConfig::CaidaLike(15));
  const auto packets = stream.Generate(256);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Parse(packets[i++ % packets.size()].bytes()));
  }
}
BENCHMARK(BM_PacketParse);

void BM_PacketBuild(benchmark::State& state) {
  net::FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0xc0a80001;
  t.src_port = 1234;
  t.dst_port = 80;
  t.protocol = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::PacketBuilder().SetTuple(t).SetFrameLen(
            static_cast<size_t>(state.range(0))).Build());
  }
}
BENCHMARK(BM_PacketBuild)->Arg(64)->Arg(1514);

void BM_CacheAccess(benchmark::State& state) {
  sim::CacheConfig config;
  config.size_bytes = 4u << 20;
  config.associativity = 16;
  config.policy = state.range(0) != 0 ? sim::PartitionPolicy::kStaticEqual
                                      : sim::PartitionPolicy::kShared;
  config.num_domains = 4;
  sim::Cache cache(config);
  Rng rng(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Access(rng.NextU64() % (64u << 20), rng.NextU32() % 4));
  }
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

void BM_BusGrant(benchmark::State& state) {
  auto bus = sim::MakeArbiter(
      static_cast<sim::BusPolicy>(state.range(0)), 8, 4, 96, 12);
  uint64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus->Grant(t, static_cast<uint32_t>(t % 4)));
    t += 13;
  }
}
BENCHMARK(BM_BusGrant)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
