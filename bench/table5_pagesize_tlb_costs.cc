// Regenerates Table 5: TLB hardware cost as a function of the supported
// page-size menu, sized by the maximum entry count any of the six NFs needs
// (from the Table 6 memory profiles) across 48 programmable cores.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/core/tlb_sizing.h"
#include "src/hwmodel/tlb_cost.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::TablePrinter;
  using namespace snic::core;
  using namespace snic::hwmodel;

  snic::bench::PrintHeader(
      "Table 5: TLB cost vs supported page sizes",
      "S-NIC (EuroSys'24) Table 5 — 48 programmable cores, worst-case NF");

  // Table 6 memory profiles (text, data, code, heap&stack in MB).
  const std::vector<std::vector<double>> nf_regions = {
      {0.87, 0.08, 2.50, 13.75},  // FW
      {1.34, 0.56, 2.59, 46.65},  // DPI
      {0.86, 0.05, 2.49, 40.48},  // NAT
      {0.86, 0.05, 2.49, 10.40},  // LB
      {0.86, 0.06, 2.51, 64.90},  // LPM
      {0.85, 0.05, 2.48, 357.15}, // Mon
  };

  TablePrinter table(
      {"Page size setting", "TLB size", "Area (mm^2)", "Power (W)"});
  for (const PageSizeMenu& menu :
       {PageSizeMenu::Equal(), PageSizeMenu::FlexLow(),
        PageSizeMenu::FlexHigh()}) {
    uint64_t max_entries = 0;
    for (const auto& regions : nf_regions) {
      max_entries = std::max(max_entries, EntriesForRegionsMib(regions, menu));
    }
    const TlbCost cost = TlbBanksCost(max_entries, 48);
    std::string pages = "(";
    for (size_t i = 0; i < menu.page_bytes.size(); ++i) {
      const uint64_t kb = menu.page_bytes[i] / 1024;
      pages += kb >= 1024 ? std::to_string(kb / 1024) + "MB"
                          : std::to_string(kb) + "KB";
      if (i + 1 < menu.page_bytes.size()) {
        pages += ",";
      }
    }
    pages += ")";
    table.AddRow({menu.name + " " + pages,
                  std::to_string(max_entries) + " x 48",
                  TablePrinter::Fmt(cost.area_mm2, 3),
                  TablePrinter::Fmt(cost.power_w, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: Equal(2MB) 183 -> 0.538 / 0.311;\n"
      "(128KB,2MB,64MB) 51 -> 0.214 / 0.106; (2MB,32MB,128MB) 13 -> 0.150 /\n"
      "0.069. (The paper's Table 5 swaps the Flex-low/-high labels relative\n"
      "to its Table 6; we use Table 6's naming.)\n");
  return 0;
}
