// Regenerates Fig. 5a: median IPC degradation per NF as the shared L2 size
// sweeps from 8 KB to 16 MB, with two colocated NFs. For each NF the median
// (and p1/p99) is taken over every possible partner pairing.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"

int main(int argc, char** argv) {
  using namespace snic;
  using namespace snic::bench;

  PrintHeader("Fig. 5a: IPC degradation vs L2 cache size (2 colocated NFs)",
              "S-NIC (EuroSys'24) Figure 5a");

  // --metrics-out=<file>: JSON snapshot of every replay series (per-core
  // L1/L2 hit+miss counters, per-domain bus wait-cycle histograms, ...).
  // --trace-out=<file>: Chrome-trace JSON for the first replayed pair,
  //   converted offline from the binary ring at exit.
  // --trace-bin-out=<file>: the raw binary ring image (tools/snic_trace).
  // --jobs=N: sweep workers; output is byte-identical at every N.
  Fig5Session session(argc, argv);
  session.RecordTraces(2024);

  const std::vector<uint64_t> cache_sizes = session.quick()
      ? std::vector<uint64_t>{KiB(32), KiB(512), MiB(4)}
      : std::vector<uint64_t>{KiB(8),   KiB(16),  KiB(32), KiB(64), KiB(128),
                              KiB(256), KiB(512), MiB(1),  MiB(2),  MiB(4),
                              MiB(8),   MiB(16)};

  // Every (L2 size, unordered NF pair) combination is one replay job; jobs
  // are listed in serial iteration order so the aggregation below walks
  // results exactly as the single-threaded loop did.
  std::vector<SweepJob> sweep;
  sweep.reserve(cache_sizes.size() * kNumNfs * (kNumNfs + 1) / 2);
  for (uint64_t l2 : cache_sizes) {
    for (size_t i = 0; i < kNumNfs; ++i) {
      for (size_t j = i; j < kNumNfs; ++j) {
        sweep.push_back(SweepJob{{i, j}, l2});
      }
    }
  }
  const auto degradations = session.RunSweep(sweep);

  TablePrinter table({"L2 size", "FW", "DPI", "NAT", "LB", "LPM", "Mon"});
  size_t job = 0;
  for (uint64_t l2 : cache_sizes) {
    // Every unordered pair, evaluated once; samples attributed per position.
    std::array<SampleSet, kNumNfs> samples;
    for (size_t i = 0; i < kNumNfs; ++i) {
      for (size_t j = i; j < kNumNfs; ++j) {
        const auto& degradation = degradations[job++];
        samples[i].Add(degradation[0] * 100.0);
        samples[j].Add(degradation[1] * 100.0);
      }
    }
    std::vector<std::string> row;
    row.push_back(l2 >= MiB(1) ? std::to_string(l2 / MiB(1)) + "MB"
                               : std::to_string(l2 / KiB(1)) + "KB");
    for (size_t k = 0; k < kNumNfs; ++k) {
      row.push_back(TablePrinter::Fmt(samples[k].Median(), 2) + "%");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Values are median IPC-degradation %% across all partner pairings.\n"
      "Paper shape: degradation rises as L2 shrinks; FW/DPI/NAT suffer most\n"
      "(larger working sets); at 4MB with 2 NFs the median is ~0.24%%.\n");
  return session.WriteOutputs();
}
