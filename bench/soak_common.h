// Shared scaffolding for the differential soaks (chaos_soak, overload_soak,
// hostile_tenant_soak): the FNV-1a record digest, per-pid trace/ring lane
// digests, printf-style report building, the common --quick/--jobs/--seed/
// --out flag set, and the one-line BENCH_*.json verdict writer.
//
// The contract every soak shares: run one constellation through N scenarios
// from one seed, reduce the protected tenant's full observable record to a
// byte-comparable report, and emit a single-line JSON verdict whose last
// field is "pass". Keeping the scaffolding here keeps the three soaks'
// verdict lines structurally consistent (seed/steps/jobs/quick always
// present, in that order), which the CI soak jobs' diff normalization
// relies on.

#ifndef SNIC_BENCH_SOAK_COMMON_H_
#define SNIC_BENCH_SOAK_COMMON_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "bench/bench_util.h"
#include "src/obs/trace_event.h"
#include "src/obs/trace_ring.h"
#include "src/scenario/digest.h"

namespace snic::bench {

// The digest primitives live in src/scenario/digest.h so the declarative
// scenario runner and the bespoke soaks share one notion of "identical
// record"; re-exported here to keep the soaks' spelling unchanged.
using Fnv = scenario::Fnv;
using LaneDigest = scenario::LaneDigest;
using scenario::DigestRingLane;

// Digest of the TraceLog events on `pid`'s lane (name, ts, dur).
inline LaneDigest DigestTraceLane(const obs::TraceLog& trace, uint32_t pid) {
  Fnv fnv;
  LaneDigest lane;
  for (const obs::TraceEvent& event : trace.events()) {
    if (event.pid != pid) {
      continue;
    }
    fnv.Mix(reinterpret_cast<const uint8_t*>(event.name.data()),
            event.name.size());
    fnv.Mix64(event.ts);
    fnv.Mix64(event.dur);
    ++lane.count;
  }
  lane.digest = fnv.h;
  return lane;
}

// printf-append for building report/summary strings line by line.
inline void AppendF(std::string& out, const char* fmt, ...) {
  char line[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof(line), fmt, args);
  va_end(args);
  out += line;
}

// The flag set every soak accepts: --quick --jobs=N --seed=S --out=FILE.
struct SoakFlags {
  bool quick = false;
  size_t jobs = 0;     // 0 = serial (MakePool semantics)
  uint64_t seed = 0;
  uint64_t steps = 0;  // quick_steps or full_steps
  std::string out;     // empty = the bench's default BENCH_*.json path
};

inline SoakFlags ParseSoakFlags(int argc, char** argv, uint64_t default_seed,
                                uint64_t quick_steps, uint64_t full_steps) {
  SoakFlags flags;
  flags.quick = QuickMode(argc, argv);
  flags.jobs = JobsFlag(argc, argv);
  const std::string seed_flag = FlagValue(argc, argv, "--seed");
  flags.seed = seed_flag.empty()
                   ? default_seed
                   : std::strtoull(seed_flag.c_str(), nullptr, 10);
  flags.steps = flags.quick ? quick_steps : full_steps;
  flags.out = FlagValue(argc, argv, "--out");
  return flags;
}

// One-line machine-readable verdict, the shape shared by every BENCH_*.json:
// {"bench":NAME,"seed":S,"steps":N,"jobs":J,"quick":B,<fields...>,"pass":B}.
// Fields appear in Add order; "pass" is always last. Write() targets
// --out when given, BENCH_<name>.json otherwise.
class VerdictJson {
 public:
  VerdictJson(std::string_view bench, const SoakFlags& flags)
      : bench_(bench), out_(flags.out) {
    AppendF(body_,
            "{\"bench\":\"%s\",\"seed\":%llu,\"steps\":%llu,\"jobs\":%zu"
            ",\"quick\":%s",
            bench_.c_str(), static_cast<unsigned long long>(flags.seed),
            static_cast<unsigned long long>(flags.steps), flags.jobs,
            flags.quick ? "true" : "false");
  }

  void AddU64(std::string_view key, uint64_t value) {
    AppendF(body_, ",\"%.*s\":%llu", static_cast<int>(key.size()), key.data(),
            static_cast<unsigned long long>(value));
  }
  void AddBool(std::string_view key, bool value) {
    AppendF(body_, ",\"%.*s\":%s", static_cast<int>(key.size()), key.data(),
            value ? "true" : "false");
  }
  // Pre-formatted JSON value (an array or object built by the caller).
  void AddRaw(std::string_view key, std::string_view json_value) {
    AppendF(body_, ",\"%.*s\":", static_cast<int>(key.size()), key.data());
    body_.append(json_value);
  }

  // Appends "pass", writes the line, prints the path. False when the file
  // cannot be opened (the soak should exit non-zero). The path note goes to
  // stderr: stdout stays byte-identical across runs that only differ in
  // --out, which CI diffs serial-vs-parallel.
  bool Write(bool pass) {
    const std::string path =
        out_.empty() ? "BENCH_" + bench_ + ".json" : out_;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "%s,\"pass\":%s}\n", body_.c_str(),
                 pass ? "true" : "false");
    std::fclose(f);
    std::fprintf(stderr, "Wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::string body_;
  std::string out_;
};

}  // namespace snic::bench

#endif  // SNIC_BENCH_SOAK_COMMON_H_
