// Renders a metrics snapshot (the JSON written by --metrics-out= or
// obs::MetricRegistry::WriteJsonFile) as terminal dashboards: a per-NF
// isolation table built from the `nf.*` series, plus flat listings of every
// counter, gauge and histogram in the snapshot.
//
// Usage: obs_report <metrics.json> [--all]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table_printer.h"
#include "src/obs/json.h"

namespace {

using snic::TablePrinter;
using snic::obs::json::Value;

std::string LabelString(const Value& series) {
  const Value* labels = series.Find("labels");
  if (labels == nullptr || !labels->is_object() ||
      labels->AsObject().empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels->AsObject()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += k + "=" + (v.is_string() ? v.AsString() : "?");
  }
  return out + "}";
}

std::string NumberString(const Value* v) {
  if (v == nullptr || !v->is_number()) {
    return "-";
  }
  const double d = v->AsNumber();
  if (d == static_cast<double>(static_cast<int64_t>(d))) {
    return std::to_string(static_cast<int64_t>(d));
  }
  return TablePrinter::Fmt(d, 2);
}

// The per-NF dashboard: one row per `nf=` label value seen in nf.* series.
void PrintNfDashboard(const Value& doc) {
  // nf name -> metric name -> formatted value
  std::map<std::string, std::map<std::string, std::string>> per_nf;
  auto scan = [&per_nf](const Value* list) {
    if (list == nullptr || !list->is_array()) {
      return;
    }
    for (const Value& series : list->AsArray()) {
      const Value* name = series.Find("name");
      const Value* labels = series.Find("labels");
      if (name == nullptr || labels == nullptr ||
          name->AsString().rfind("nf.", 0) != 0) {
        continue;
      }
      const Value* nf = labels->Find("nf");
      if (nf == nullptr || !nf->is_string()) {
        continue;
      }
      per_nf[nf->AsString()][name->AsString()] =
          NumberString(series.Find("value"));
    }
  };
  scan(doc.Find("counters"));
  scan(doc.Find("gauges"));
  if (per_nf.empty()) {
    std::printf("(no nf.* series in snapshot)\n\n");
    return;
  }
  TablePrinter table(
      {"NF", "packets", "forwarded", "dropped", "bytes", "flow entries"});
  for (const auto& [nf, metrics] : per_nf) {
    auto cell = [&metrics](const std::string& key) {
      const auto it = metrics.find(key);
      return it == metrics.end() ? std::string("-") : it->second;
    };
    table.AddRow({nf, cell("nf.packets"), cell("nf.forwarded"),
                  cell("nf.dropped"), cell("nf.bytes"),
                  cell("nf.flow_entries")});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void PrintScalarSection(const Value& doc, const char* key, const char* title) {
  const Value* list = doc.Find(key);
  if (list == nullptr || !list->is_array() || list->AsArray().empty()) {
    return;
  }
  std::printf("-- %s (%zu) --\n", title, list->AsArray().size());
  TablePrinter table({"series", "value"});
  for (const Value& series : list->AsArray()) {
    const Value* name = series.Find("name");
    table.AddRow({(name != nullptr ? name->AsString() : "?") +
                      LabelString(series),
                  NumberString(series.Find("value"))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void PrintHistogramSection(const Value& doc) {
  const Value* list = doc.Find("histograms");
  if (list == nullptr || !list->is_array() || list->AsArray().empty()) {
    return;
  }
  std::printf("-- histograms (%zu) --\n", list->AsArray().size());
  TablePrinter table({"series", "count", "mean", "p50", "p99", "max"});
  for (const Value& series : list->AsArray()) {
    const Value* name = series.Find("name");
    table.AddRow({(name != nullptr ? name->AsString() : "?") +
                      LabelString(series),
                  NumberString(series.Find("count")),
                  NumberString(series.Find("mean")),
                  NumberString(series.Find("p50")),
                  NumberString(series.Find("p99")),
                  NumberString(series.Find("max"))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <metrics.json> [--all]\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = Value::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[1],
                 parsed.status().message().c_str());
    return 1;
  }
  const Value& doc = parsed.value();

  std::printf("== Per-NF isolation dashboard ==\n");
  PrintNfDashboard(doc);

  bool all = false;
  for (int i = 2; i < argc; ++i) {
    all |= std::strcmp(argv[i], "--all") == 0;
  }
  if (all) {
    PrintScalarSection(doc, "counters", "counters");
    PrintScalarSection(doc, "gauges", "gauges");
  }
  PrintHistogramSection(doc);
  return 0;
}
