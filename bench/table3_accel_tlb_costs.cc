// Regenerates Table 3: TLB-bank costs for virtualized accelerators (DPI,
// ZIP, RAID) across cluster granularities, with per-cluster TLB sizes
// derived from the Table 7 memory profiles via the 2 MB-page sizing rule.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/accelerator.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/tlb_sizing.h"
#include "src/hwmodel/tlb_cost.h"

namespace {

// Per-cluster TLB entries: one entry per profiled region under 2 MB pages.
size_t EntriesForProfile(const snic::accel::AcceleratorMemoryProfile& profile) {
  size_t entries = 0;
  const auto menu = snic::core::PageSizeMenu::Equal();
  for (const auto& region : profile.regions) {
    entries += snic::core::PlanRegion(region.bytes, menu).entries;
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::MiB;
  using snic::TablePrinter;
  using namespace snic::accel;
  using namespace snic::hwmodel;

  snic::bench::PrintHeader(
      "Table 3: TLB banks on virtualized accelerators",
      "S-NIC (EuroSys'24) Table 3 — 64 hardware threads per accelerator");

  // The paper's DPI graph (33K rules) occupies 97.28 MB.
  const auto dpi = AcceleratorMemoryProfile::Dpi(snic::MiBToBytes(97.28));
  const auto zip = AcceleratorMemoryProfile::Zip();
  const auto raid = AcceleratorMemoryProfile::Raid();

  const size_t dpi_entries = EntriesForProfile(dpi);
  const size_t zip_entries = EntriesForProfile(zip);
  const size_t raid_entries = EntriesForProfile(raid);
  std::printf("TLB size per cluster: DPI %zu  ZIP %zu  RAID %zu  (paper: 54/70/5)\n\n",
              dpi_entries, zip_entries, raid_entries);

  TablePrinter table({"Clusters", "Metric", "DPI", "ZIP", "RAID"});
  for (unsigned clusters : {16u, 8u, 4u}) {
    const TlbCost d = TlbBanksCost(dpi_entries, clusters);
    const TlbCost z = TlbBanksCost(zip_entries, clusters);
    const TlbCost r = TlbBanksCost(raid_entries, clusters);
    char label[64];
    std::snprintf(label, sizeof(label), "%u clusters (%u thr/cluster)",
                  clusters, 64 / clusters);
    table.AddRow({label, "Area (mm^2)", TablePrinter::Fmt(d.area_mm2, 3),
                  TablePrinter::Fmt(z.area_mm2, 3),
                  TablePrinter::Fmt(r.area_mm2, 3)});
    table.AddRow({"", "Power (W)", TablePrinter::Fmt(d.power_w, 3),
                  TablePrinter::Fmt(z.power_w, 3),
                  TablePrinter::Fmt(r.power_w, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference (16 clusters): DPI 0.074/0.037, ZIP 0.091/0.044,\n"
      "RAID 0.050/0.023; halving cluster count halves cost.\n");
  return 0;
}
