// Regenerates Fig. 5b: IPC degradation per NF as co-tenancy grows
// (2/3/4/8/16 colocated NFs) with a 4 MB L2. Mixes are sampled over the NF
// population; medians and p1/p99 error bars are reported per NF plus the
// cross-NF aggregate the paper quotes in prose (0.24% @2, 0.93% @4,
// 3.41% @8, 9.44% @16).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"

int main(int argc, char** argv) {
  using namespace snic;
  using namespace snic::bench;

  PrintHeader("Fig. 5b: IPC degradation vs co-tenancy (4MB L2)",
              "S-NIC (EuroSys'24) Figure 5b");

  // --metrics-out=<file>: JSON replay-series snapshot.
  // --jobs=N: sweep workers; output is byte-identical at every N.
  Fig5Session session(argc, argv);
  session.RecordTraces(2024);

  const std::vector<uint32_t> arities = session.quick()
      ? std::vector<uint32_t>{2, 4, 8}
      : std::vector<uint32_t>{2, 3, 4, 8, 16};

  // Mix sampling stays serial: all draws come from one Rng stream in the
  // historical order (arity-major, then mix, then slot), so the sampled
  // mixes are independent of the jobs count. Only the replays fan out.
  std::vector<SweepJob> sweep;
  Rng rng(99);
  for (uint32_t n : arities) {
    const size_t num_mixes =
        session.quick() ? 4 : (n <= 4 ? 12 : (n == 8 ? 8 : 5));
    for (size_t m = 0; m < num_mixes; ++m) {
      std::vector<size_t> mix(n);
      for (auto& kind : mix) {
        kind = rng.NextBounded(kNumNfs);
      }
      sweep.push_back(SweepJob{std::move(mix), MiB(4)});
    }
  }
  const auto degradations = session.RunSweep(sweep);

  TablePrinter table({"NFs", "FW", "DPI", "NAT", "LB", "LPM", "Mon",
                      "median(all)", "p99(all)"});
  size_t job = 0;
  for (uint32_t n : arities) {
    const size_t num_mixes =
        session.quick() ? 4 : (n <= 4 ? 12 : (n == 8 ? 8 : 5));
    std::array<SampleSet, kNumNfs> per_nf;
    SampleSet all;
    for (size_t m = 0; m < num_mixes; ++m, ++job) {
      const std::vector<size_t>& mix = sweep[job].mix_kinds;
      const std::vector<double>& degradation = degradations[job];
      for (size_t c = 0; c < mix.size(); ++c) {
        per_nf[mix[c]].Add(degradation[c] * 100.0);
        all.Add(degradation[c] * 100.0);
      }
    }
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t k = 0; k < kNumNfs; ++k) {
      row.push_back(per_nf[k].empty()
                        ? "-"
                        : TablePrinter::Fmt(per_nf[k].Median(), 2) + "%");
    }
    row.push_back(TablePrinter::Fmt(all.Median(), 2) + "%");
    row.push_back(TablePrinter::Fmt(all.Percentile(99), 2) + "%");
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference (median / p99 across colocations): 2 NFs 0.24%%;\n"
      "4 NFs 0.93%% / 1.66%%; 8 NFs 3.41%% / 5.12%%; 16 NFs 9.44%% / 13.71%%.\n"
      "Shape to verify: monotone growth with co-tenancy; FW/DPI/NAT worst.\n");
  return session.WriteOutputs();
}
