// Regenerates Table 2: estimated hardware costs for TLBs on programmable
// cores, for three per-core memory budgets (2 MB pages) and four NIC core
// counts, relative to a 4-core Cortex-A9 baseline.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/hwmodel/tlb_cost.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::TablePrinter;
  using namespace snic::hwmodel;

  snic::bench::PrintHeader(
      "Table 2: TLB hardware costs on programmable cores",
      "S-NIC (EuroSys'24) Table 2 — McPAT-lite at 28 nm / 2.0 GHz");

  const A9Baseline baseline;
  const std::vector<double> memories_mib = {366.0, 512.0, 1024.0};
  const std::vector<unsigned> core_counts = {4, 8, 16, 48};

  TablePrinter table({"Config", "Metric", "4-core A9 Total", "4-core NIC",
                      "8-core NIC", "16-core NIC", "48-core NIC"});
  for (double mem : memories_mib) {
    const size_t entries = EntriesFor2MbPages(mem);
    std::vector<TlbCost> costs;
    for (unsigned cores : core_counts) {
      costs.push_back(TlbBanksCost(entries, cores));
    }
    const TlbCost total = A9TotalWith(baseline, costs[0]);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0fMB/core (%zu TLB entries)", mem,
                  entries);
    table.AddRow({label, "Area (mm^2)", TablePrinter::Fmt(total.area_mm2, 3),
                  TablePrinter::Fmt(costs[0].area_mm2, 3) + " (" +
                      TablePrinter::Pct(costs[0].area_mm2 / total.area_mm2, 2) +
                      ")",
                  TablePrinter::Fmt(costs[1].area_mm2, 3),
                  TablePrinter::Fmt(costs[2].area_mm2, 3),
                  TablePrinter::Fmt(costs[3].area_mm2, 3)});
    table.AddRow({"", "Power (W)", TablePrinter::Fmt(total.power_w, 3),
                  TablePrinter::Fmt(costs[0].power_w, 3) + " (" +
                      TablePrinter::Pct(costs[0].power_w / total.power_w, 2) +
                      ")",
                  TablePrinter::Fmt(costs[1].power_w, 3),
                  TablePrinter::Fmt(costs[2].power_w, 3),
                  TablePrinter::Fmt(costs[3].power_w, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference (4-core column): 183 -> 0.045 mm^2 / 0.026 W;\n"
      "256 -> 0.060 / 0.035; 512 -> 0.163 / 0.088. Totals: 4.984/1.909,\n"
      "4.999/1.913, 5.102/1.971.\n");
  return 0;
}
