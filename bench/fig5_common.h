// Shared machinery for the Fig. 5 experiments (§5.3).
//
// Methodology, mirroring the paper: each NF executes natively over packets
// drawn from a 100,000-flow pool with Zipf(1.1) popularity (the iCTF-derived
// distribution), recording an instruction/memory trace. Colocation mixes are
// then replayed on the timing model twice — commodity baseline (shared LRU
// L2, FCFS bus) and S-NIC (statically partitioned L2, temporally partitioned
// bus) — at equal co-tenancy, and per-NF IPC degradation is
//   1 - IPC_snic / IPC_baseline.
//
// Parallelism: trace recording and mix replays are self-contained per task,
// so both fan out over a runtime::ThreadPool. Determinism is structural
// (docs/RUNTIME.md): seeds derive from the task index, results land in
// index-addressed slots, and per-task metric/trace shards merge in task
// order — so every jobs count, including the serial `--jobs=1` path, emits
// byte-identical tables and snapshots.
//
// Trace form: recorded traces are immediately run-length/delta encoded
// (sim::EncodedTrace), then prepared once — sim::PreparedTrace streams the
// bytes through the codec and precomputes the private-L1 pass, and every
// replay in the sweep reuses the prepared form. PrepareNfTraces() /
// ReplayPreparedMix() are the places where the consumed form is chosen, so
// the whole Fig. 5 family (5a, 5b, obs_overhead, the bus ablation) switches
// codecs together. Preparation is exact, so results are identical to
// replaying the materialized traces (docs/PERFORMANCE.md).

#ifndef SNIC_BENCH_FIG5_COMMON_H_
#define SNIC_BENCH_FIG5_COMMON_H_

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/net/packet.h"
#include "src/nf/nf_factory.h"
#include "src/obs/trace_ring.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/mem_access.h"
#include "src/sim/replay.h"
#include "src/trace/trace_gen.h"

namespace snic::bench {

inline constexpr size_t kNumNfs = nf::kNumNfKinds;

// One encoded instruction stream per NF kind.
using EncodedNfTraces = std::array<sim::EncodedTrace, kNumNfs>;

// One prepared trace per NF kind — the form the sweep drivers replay from.
using PreparedNfTraces = std::array<sim::PreparedTrace, kNumNfs>;

// All Fig. 5 replays warm 30% of each trace before measuring.
inline constexpr double kFig5WarmupFraction = 0.3;

// Records one instruction trace per NF kind (full-size NF configurations),
// fanning the six recordings across `pool` (inline serial when null). Each
// task's NF attaches its nf.* series to a private shard that merges into
// the global registry at join.
inline std::array<sim::InstructionTrace, kNumNfs> RecordNfTraces(
    size_t events_per_nf, uint64_t seed,
    runtime::ThreadPool* pool = nullptr) {
  std::array<sim::InstructionTrace, kNumNfs> traces;
  const auto kinds = nf::AllNfKinds();
  runtime::ShardedParallelFor(
      pool, kinds.size(), &obs::GlobalRegistry(),
      [&](size_t k, obs::MetricRegistry& shard) {
        obs::ScopedDefaultRegistry scoped(&shard);
        const auto fn = nf::MakeNf(kinds[k]);
        fn->recorder().Attach(&traces[k]);
        // Per-task seed: kept as the historical `seed + k` (a pure function
        // of base seed and task index) so recorded traces stay bit-identical
        // to pre-runtime builds at every jobs count.
        trace::TraceConfig config = trace::TraceConfig::IctfLike(seed + k);
        config.num_flows = 100'000;
        config.zipf_skew = 1.1;
        trace::PacketStream stream(config);
        while (traces[k].size() < events_per_nf) {
          net::Packet packet = stream.Next();
          fn->Process(packet);
        }
        fn->recorder().Detach();
      });
  return traces;
}

// Encodes a recorded trace set into the replayable form.
inline EncodedNfTraces EncodeNfTraces(
    const std::array<sim::InstructionTrace, kNumNfs>& traces) {
  EncodedNfTraces encoded;
  for (size_t k = 0; k < kNumNfs; ++k) {
    encoded[k] = sim::EncodedTrace::Encode(traces[k]);
  }
  return encoded;
}

// Record + encode in one step: what the benches call. The materialized
// traces are dropped as soon as encoding finishes.
inline EncodedNfTraces RecordAndEncodeNfTraces(
    size_t events_per_nf, uint64_t seed,
    runtime::ThreadPool* pool = nullptr) {
  return EncodeNfTraces(RecordNfTraces(events_per_nf, seed, pool));
}

// Streams each encoded trace through the codec and precomputes its
// private-L1 pass at the Fig. 5 warmup fraction. The Marvell-like L1 is the
// same for every core count, L2 capacity, and configuration, so one
// prepared set serves the entire sweep.
inline PreparedNfTraces PrepareNfTraces(const EncodedNfTraces& encoded) {
  const sim::CacheConfig l1 =
      sim::MachineConfig::MarvellLike(2, 4u << 20, false).l1;
  PreparedNfTraces prepared;
  for (size_t k = 0; k < kNumNfs; ++k) {
    prepared[k] =
        sim::PreparedTrace::Prepare(encoded[k], l1, kFig5WarmupFraction);
  }
  return prepared;
}

// The single replay driver for the Fig. 5 family. Every bench-side replay —
// both DegradationForMix configurations, and the ablations' custom machine
// configs — funnels through here, so the trace form handed to the engine
// (today: codec-decoded prepared traces) is switched in exactly one place.
inline sim::ReplayResult ReplayPreparedMix(
    const sim::MachineConfig& config,
    const std::vector<const sim::PreparedTrace*>& mix,
    const sim::ReplayObs* obs_hooks = nullptr) {
  return sim::Replay(config, mix, obs_hooks);
}

// Replays one colocation mix under baseline and S-NIC configurations and
// returns the per-core IPC degradation. When `metrics` / `trace` are set the
// two replays publish their series with a `config=baseline` / `config=snic`
// label (trace lanes for the S-NIC run sit above the baseline's).
inline std::vector<double> DegradationForMix(
    const PreparedNfTraces& traces, const std::vector<size_t>& mix_kinds,
    uint64_t l2_bytes, obs::MetricRegistry* metrics = nullptr,
    obs::TraceRing* trace = nullptr) {
  std::vector<const sim::PreparedTrace*> mix;
  mix.reserve(mix_kinds.size());
  for (size_t kind : mix_kinds) {
    mix.push_back(&traces[kind]);
  }
  const auto cores = static_cast<uint32_t>(mix.size());
  sim::ReplayObs baseline_obs;
  sim::ReplayObs secure_obs;
  const sim::ReplayObs* baseline_hooks = nullptr;
  const sim::ReplayObs* secure_hooks = nullptr;
  if (metrics != nullptr || trace != nullptr) {
    baseline_obs.metrics = metrics;
    baseline_obs.trace = trace;
    baseline_obs.labels.emplace_back("config", "baseline");
    baseline_obs.trace_pid_base = 0;
    secure_obs.metrics = metrics;
    secure_obs.trace = trace;
    secure_obs.labels.emplace_back("config", "snic");
    secure_obs.trace_pid_base = cores + 1;  // own lanes above the baseline's
    baseline_hooks = &baseline_obs;
    secure_hooks = &secure_obs;
  }
  const auto baseline = ReplayPreparedMix(
      sim::MachineConfig::MarvellLike(cores, l2_bytes, /*secure=*/false), mix,
      baseline_hooks);
  const auto secure = ReplayPreparedMix(
      sim::MachineConfig::MarvellLike(cores, l2_bytes, /*secure=*/true), mix,
      secure_hooks);
  std::vector<double> degradation(mix.size());
  for (size_t c = 0; c < mix.size(); ++c) {
    degradation[c] = 1.0 - secure.cores[c].Ipc() / baseline.cores[c].Ipc();
  }
  return degradation;
}

// One replay job of a sweep: a colocation mix at one L2 capacity.
struct SweepJob {
  std::vector<size_t> mix_kinds;
  uint64_t l2_bytes = 0;
};

// Which jobs record binary ring records when a TraceRing sink is given.
// Fig. 5a traces only the first replayed pair (lanes restart at cycle 0 per
// replay, so later pairs would overdraw it); obs_overhead costs tracing on
// every pair.
enum class SweepTrace {
  kFirstJob,
  kAllJobs,
};

// Per-task ring capacity when every job records (obs_overhead): bounded so
// the hot path never reallocates past warm-up, and sized so a shard's
// storage (48 B/record, ~200 KiB at 4096) stays cache-resident — wrapped
// emission then rewrites warm lines instead of streaming tens of MB through
// the L2 the replay under measurement is using, which is what keeps
// always-on tracing inside the <=3% obs_overhead budget. Single-traced-job
// sweeps (fig5a) use unbounded shards instead so the one recorded pair is
// complete.
inline constexpr size_t kSweepRingRecordsPerJob = size_t{1} << 12;

// Replays every job across `pool` and returns per-job degradations indexed
// identically to `jobs`. Each task records metrics into a private shard;
// shards merge into `metrics` in job order at join, so the final registry —
// like the returned results — is byte-identical at every jobs count. Trace
// records land in per-job binary rings (runtime::TraceRingShards) stitched
// into `trace` in job order at join, off the hot path.
inline std::vector<std::vector<double>> RunDegradationSweep(
    runtime::ThreadPool* pool, const PreparedNfTraces& traces,
    const std::vector<SweepJob>& jobs, obs::MetricRegistry* metrics,
    obs::TraceRing* trace = nullptr,
    SweepTrace trace_mode = SweepTrace::kFirstJob) {
  std::vector<std::vector<double>> results(jobs.size());
  runtime::TraceRingShards trace_shards(
      trace == nullptr ? 0 : jobs.size(),
      trace_mode == SweepTrace::kAllJobs ? kSweepRingRecordsPerJob : 0);
  runtime::ShardedParallelFor(
      pool, jobs.size(), metrics,
      [&](size_t j, obs::MetricRegistry& shard) {
        obs::MetricRegistry* metric_sink = metrics == nullptr ? nullptr
                                                              : &shard;
        obs::TraceRing* trace_sink = nullptr;
        if (trace != nullptr &&
            (trace_mode == SweepTrace::kAllJobs || j == 0)) {
          trace_sink = &trace_shards.shard(j);
        }
        results[j] = DegradationForMix(traces, jobs[j].mix_kinds,
                                       jobs[j].l2_bytes, metric_sink,
                                       trace_sink);
      });
  trace_shards.MergeInto(trace);
  return results;
}

// Shared main-loop scaffolding for the Fig. 5 benches. fig5a and fig5b had
// drifted into near-copies of the same driver (flag parsing, trace
// recording, sweep dispatch, metrics/trace snapshot writing); both now
// delegate everything but their job list and their table aggregation here.
class Fig5Session {
 public:
  Fig5Session(int argc, char** argv)
      : quick_(QuickMode(argc, argv)),
        metrics_out_(FlagValue(argc, argv, "--metrics-out")),
        trace_out_(FlagValue(argc, argv, "--trace-out")),
        trace_bin_out_(FlagValue(argc, argv, "--trace-bin-out")),
        pool_(MakePool(JobsFlag(argc, argv))),
        events_per_nf_(quick_ ? 20'000 : 120'000) {}

  bool quick() const { return quick_; }
  size_t events_per_nf() const { return events_per_nf_; }
  runtime::ThreadPool* pool() { return pool_.get(); }

  // Records, encodes, and prepares the per-NF traces (announcing the size).
  void RecordTraces(uint64_t seed) {
    std::printf(
        "Recording NF traces (%zu events/NF, Zipf 1.1 over 100k flows)"
        "...\n\n",
        events_per_nf_);
    traces_ =
        PrepareNfTraces(RecordAndEncodeNfTraces(events_per_nf_, seed,
                                                pool_.get()));
  }

  // Runs the bench's job list through the shared sweep driver, with the
  // metric/trace sinks the command-line flags requested.
  std::vector<std::vector<double>> RunSweep(
      const std::vector<SweepJob>& jobs,
      SweepTrace trace_mode = SweepTrace::kFirstJob) {
    return RunDegradationSweep(pool_.get(), traces_, jobs, metrics_sink(),
                               trace_sink(), trace_mode);
  }

  // Writes whatever snapshots the flags requested (--metrics-out,
  // --trace-out, --trace-bin-out). Returns 0, or 1 if any write failed.
  int WriteOutputs() {
    if (!metrics_out_.empty()) {
      obs::MetricRegistry& metrics = obs::GlobalRegistry();
      if (metrics.WriteJsonFile(metrics_out_).ok()) {
        std::printf("Wrote metrics snapshot (%zu series) to %s\n",
                    metrics.NumSeries(), metrics_out_.c_str());
      } else {
        std::fprintf(stderr, "Failed to write %s\n", metrics_out_.c_str());
        return 1;
      }
    }
    if (!trace_out_.empty()) {
      obs::TraceLog converted;
      trace_.ConvertTo(&converted);
      if (converted.WriteFile(trace_out_).ok()) {
        std::printf("Wrote %zu trace events to %s (load in ui.perfetto.dev)\n",
                    trace_.size(), trace_out_.c_str());
      } else {
        std::fprintf(stderr, "Failed to write %s\n", trace_out_.c_str());
        return 1;
      }
    }
    if (!trace_bin_out_.empty()) {
      if (trace_.WriteBinaryFile(trace_bin_out_).ok()) {
        std::printf("Wrote %zu binary ring records to %s"
                    " (analyze with tools/snic_trace)\n",
                    trace_.size(), trace_bin_out_.c_str());
      } else {
        std::fprintf(stderr, "Failed to write %s\n", trace_bin_out_.c_str());
        return 1;
      }
    }
    return 0;
  }

 private:
  obs::MetricRegistry* metrics_sink() {
    // The global registry already holds the nf.* series the NFs published
    // while their traces were recorded; replay series join them there.
    return metrics_out_.empty() ? nullptr : &obs::GlobalRegistry();
  }
  obs::TraceRing* trace_sink() {
    return trace_out_.empty() && trace_bin_out_.empty() ? nullptr : &trace_;
  }

  bool quick_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string trace_bin_out_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  size_t events_per_nf_;
  PreparedNfTraces traces_;
  obs::TraceRing trace_;  // unbounded merge sink, filled at task join
};

}  // namespace snic::bench

#endif  // SNIC_BENCH_FIG5_COMMON_H_
