// Shared machinery for the Fig. 5 experiments (§5.3).
//
// Methodology, mirroring the paper: each NF executes natively over packets
// drawn from a 100,000-flow pool with Zipf(1.1) popularity (the iCTF-derived
// distribution), recording an instruction/memory trace. Colocation mixes are
// then replayed on the timing model twice — commodity baseline (shared LRU
// L2, FCFS bus) and S-NIC (statically partitioned L2, temporally partitioned
// bus) — at equal co-tenancy, and per-NF IPC degradation is
//   1 - IPC_snic / IPC_baseline.
//
// Parallelism: trace recording and mix replays are self-contained per task,
// so both fan out over a runtime::ThreadPool. Determinism is structural
// (docs/RUNTIME.md): seeds derive from the task index, results land in
// index-addressed slots, and per-task metric/trace shards merge in task
// order — so every jobs count, including the serial `--jobs=1` path, emits
// byte-identical tables and snapshots.

#ifndef SNIC_BENCH_FIG5_COMMON_H_
#define SNIC_BENCH_FIG5_COMMON_H_

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/net/packet.h"
#include "src/nf/nf_factory.h"
#include "src/obs/trace_ring.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/mem_access.h"
#include "src/sim/replay.h"
#include "src/trace/trace_gen.h"

namespace snic::bench {

inline constexpr size_t kNumNfs = nf::kNumNfKinds;

// Records one instruction trace per NF kind (full-size NF configurations),
// fanning the six recordings across `pool` (inline serial when null). Each
// task's NF attaches its nf.* series to a private shard that merges into
// the global registry at join.
inline std::array<sim::InstructionTrace, kNumNfs> RecordNfTraces(
    size_t events_per_nf, uint64_t seed,
    runtime::ThreadPool* pool = nullptr) {
  std::array<sim::InstructionTrace, kNumNfs> traces;
  const auto kinds = nf::AllNfKinds();
  runtime::ShardedParallelFor(
      pool, kinds.size(), &obs::GlobalRegistry(),
      [&](size_t k, obs::MetricRegistry& shard) {
        obs::ScopedDefaultRegistry scoped(&shard);
        const auto fn = nf::MakeNf(kinds[k]);
        fn->recorder().Attach(&traces[k]);
        // Per-task seed: kept as the historical `seed + k` (a pure function
        // of base seed and task index) so recorded traces stay bit-identical
        // to pre-runtime builds at every jobs count.
        trace::TraceConfig config = trace::TraceConfig::IctfLike(seed + k);
        config.num_flows = 100'000;
        config.zipf_skew = 1.1;
        trace::PacketStream stream(config);
        while (traces[k].size() < events_per_nf) {
          net::Packet packet = stream.Next();
          fn->Process(packet);
        }
        fn->recorder().Detach();
      });
  return traces;
}

// Replays one colocation mix under baseline and S-NIC configurations and
// returns the per-core IPC degradation. When `metrics` / `trace` are set the
// two replays publish their series with a `config=baseline` / `config=snic`
// label (trace lanes for the S-NIC run sit above the baseline's).
inline std::vector<double> DegradationForMix(
    const std::array<sim::InstructionTrace, kNumNfs>& traces,
    const std::vector<size_t>& mix_kinds, uint64_t l2_bytes,
    obs::MetricRegistry* metrics = nullptr, obs::TraceRing* trace = nullptr) {
  std::vector<const sim::InstructionTrace*> mix;
  mix.reserve(mix_kinds.size());
  for (size_t kind : mix_kinds) {
    mix.push_back(&traces[kind]);
  }
  const auto cores = static_cast<uint32_t>(mix.size());
  sim::ReplayObs baseline_obs;
  sim::ReplayObs secure_obs;
  const sim::ReplayObs* baseline_hooks = nullptr;
  const sim::ReplayObs* secure_hooks = nullptr;
  if (metrics != nullptr || trace != nullptr) {
    baseline_obs.metrics = metrics;
    baseline_obs.trace = trace;
    baseline_obs.labels.emplace_back("config", "baseline");
    baseline_obs.trace_pid_base = 0;
    secure_obs.metrics = metrics;
    secure_obs.trace = trace;
    secure_obs.labels.emplace_back("config", "snic");
    secure_obs.trace_pid_base = cores + 1;  // own lanes above the baseline's
    baseline_hooks = &baseline_obs;
    secure_hooks = &secure_obs;
  }
  const auto baseline = sim::Replay(
      sim::MachineConfig::MarvellLike(cores, l2_bytes, /*secure=*/false), mix,
      /*warmup_fraction=*/0.3, baseline_hooks);
  const auto secure = sim::Replay(
      sim::MachineConfig::MarvellLike(cores, l2_bytes, /*secure=*/true), mix,
      /*warmup_fraction=*/0.3, secure_hooks);
  std::vector<double> degradation(mix.size());
  for (size_t c = 0; c < mix.size(); ++c) {
    degradation[c] = 1.0 - secure.cores[c].Ipc() / baseline.cores[c].Ipc();
  }
  return degradation;
}

// One replay job of a sweep: a colocation mix at one L2 capacity.
struct SweepJob {
  std::vector<size_t> mix_kinds;
  uint64_t l2_bytes = 0;
};

// Which jobs record binary ring records when a TraceRing sink is given.
// Fig. 5a traces only the first replayed pair (lanes restart at cycle 0 per
// replay, so later pairs would overdraw it); obs_overhead costs tracing on
// every pair.
enum class SweepTrace {
  kFirstJob,
  kAllJobs,
};

// Per-task ring capacity when every job records (obs_overhead): bounded so
// the hot path never reallocates past warm-up, and sized so a shard's
// storage (48 B/record, ~200 KiB at 4096) stays cache-resident — wrapped
// emission then rewrites warm lines instead of streaming tens of MB through
// the L2 the replay under measurement is using, which is what keeps
// always-on tracing inside the <=3% obs_overhead budget. Single-traced-job
// sweeps (fig5a) use unbounded shards instead so the one recorded pair is
// complete.
inline constexpr size_t kSweepRingRecordsPerJob = size_t{1} << 12;

// Replays every job across `pool` and returns per-job degradations indexed
// identically to `jobs`. Each task records metrics into a private shard;
// shards merge into `metrics` in job order at join, so the final registry —
// like the returned results — is byte-identical at every jobs count. Trace
// records land in per-job binary rings (runtime::TraceRingShards) stitched
// into `trace` in job order at join, off the hot path.
inline std::vector<std::vector<double>> RunDegradationSweep(
    runtime::ThreadPool* pool,
    const std::array<sim::InstructionTrace, kNumNfs>& traces,
    const std::vector<SweepJob>& jobs, obs::MetricRegistry* metrics,
    obs::TraceRing* trace = nullptr,
    SweepTrace trace_mode = SweepTrace::kFirstJob) {
  std::vector<std::vector<double>> results(jobs.size());
  runtime::TraceRingShards trace_shards(
      trace == nullptr ? 0 : jobs.size(),
      trace_mode == SweepTrace::kAllJobs ? kSweepRingRecordsPerJob : 0);
  runtime::ShardedParallelFor(
      pool, jobs.size(), metrics,
      [&](size_t j, obs::MetricRegistry& shard) {
        obs::MetricRegistry* metric_sink = metrics == nullptr ? nullptr
                                                              : &shard;
        obs::TraceRing* trace_sink = nullptr;
        if (trace != nullptr &&
            (trace_mode == SweepTrace::kAllJobs || j == 0)) {
          trace_sink = &trace_shards.shard(j);
        }
        results[j] = DegradationForMix(traces, jobs[j].mix_kinds,
                                       jobs[j].l2_bytes, metric_sink,
                                       trace_sink);
      });
  trace_shards.MergeInto(trace);
  return results;
}

}  // namespace snic::bench

#endif  // SNIC_BENCH_FIG5_COMMON_H_
