// Ablation: bus arbitration policies (DESIGN.md item 1).
//
// The paper picks temporal partitioning from a menu of leak-free memory
// schedulers [33, 103, 119]. This bench compares FCFS, round-robin, and
// temporal partitioning on two axes: throughput cost (victim IPC at rising
// co-tenancy, no adversary) and *interference leakage* — how much a domain's
// observed request latencies shift when a neighbour is active, which is the
// signal a timing side channel would decode.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/table_printer.h"
#include "src/sim/bus.h"
#include "src/sim/replay.h"

namespace {

using namespace snic;

sim::InstructionTrace DramBoundTrace(size_t events, uint64_t seed) {
  sim::InstructionTrace trace;
  uint64_t x = seed;
  for (size_t i = 0; i < events; ++i) {
    x = x * 6364136223846793005ULL + 1;
    trace.RecordCompute(12);
    trace.RecordAccess((x % (1u << 26)) / 64 * 64, sim::AccessType::kRead);
  }
  return trace;
}

// Mean absolute shift in the victim's per-request grant latency when a
// noisy neighbour runs, in cycles (0 = perfectly leak-free).
double LeakageCycles(sim::BusPolicy policy) {
  auto run = [&](bool with_noise) {
    auto bus = sim::MakeArbiter(policy, 8, 2, 96, 12);
    std::vector<uint64_t> waits;
    uint64_t noise_clock = 0;
    for (uint64_t t = 0; t < 60'000; t += 100) {
      if (with_noise) {
        // Noisy neighbour issues a burst just before the victim.
        for (int b = 0; b < 3; ++b) {
          noise_clock = bus->Grant(t > 5 ? t - 5 : 0, 1);
        }
      }
      waits.push_back(bus->Grant(t, 0) - t);
    }
    (void)noise_clock;
    return waits;
  };
  const auto quiet = run(false);
  const auto noisy = run(true);
  double total = 0.0;
  for (size_t i = 0; i < quiet.size(); ++i) {
    total += std::abs(static_cast<double>(noisy[i]) -
                      static_cast<double>(quiet[i]));
  }
  return total / static_cast<double>(quiet.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using snic::TablePrinter;

  snic::bench::PrintHeader(
      "Ablation: bus arbitration policy",
      "S-NIC (EuroSys'24) §4.5 design choice (temporal partitioning [119])");

  const size_t events = quick ? 10'000 : 60'000;
  struct Policy {
    sim::BusPolicy policy;
    const char* name;
  };
  const Policy policies[] = {
      {sim::BusPolicy::kFcfs, "FCFS"},
      {sim::BusPolicy::kRoundRobin, "Round-robin"},
      {sim::BusPolicy::kTemporalPartition, "Temporal partition"},
  };

  TablePrinter table({"Policy", "IPC @2 NFs", "IPC @4 NFs", "IPC @8 NFs",
                      "Leakage (cycles)"});
  for (const Policy& p : policies) {
    std::vector<std::string> row = {p.name};
    for (uint32_t cores : {2u, 4u, 8u}) {
      // Encoded and prepared like the Fig. 5 traces so the replay streams
      // through the shared driver (and thus the same codec) as the headline
      // benches.
      sim::MachineConfig config =
          sim::MachineConfig::MarvellLike(cores, 4u << 20, false);
      config.bus_policy = p.policy;
      std::vector<sim::PreparedTrace> traces;
      std::vector<const sim::PreparedTrace*> mix;
      for (uint32_t c = 0; c < cores; ++c) {
        traces.push_back(sim::PreparedTrace::Prepare(
            sim::EncodedTrace::Encode(DramBoundTrace(events, 17 + c)),
            config.l1, 0.1));
      }
      for (const auto& t : traces) {
        mix.push_back(&t);
      }
      const auto result = snic::bench::ReplayPreparedMix(config, mix);
      row.push_back(TablePrinter::Fmt(result.cores[0].Ipc(), 4));
    }
    row.push_back(TablePrinter::Fmt(LeakageCycles(p.policy), 2));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: FCFS has the best contended IPC but large leakage;\n"
      "round-robin is fair but still leaky; temporal partitioning has zero\n"
      "leakage at a bounded IPC cost (<5%% for 4 domains per [119] — the\n"
      "trade the paper accepts).\n");
  return 0;
}
