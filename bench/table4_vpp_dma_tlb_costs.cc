// Regenerates Table 4: TLB-bank costs for virtual packet pipelines and the
// multi-bank DMA controller, for 48 programmable cores grouped into NFs of
// 4, 8 or 16 cores.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/tlb_sizing.h"
#include "src/core/vpp.h"
#include "src/hwmodel/tlb_cost.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using snic::KiB;
  using snic::MiB;
  using snic::TablePrinter;
  using namespace snic::hwmodel;
  namespace core = snic::core;

  snic::bench::PrintHeader(
      "Table 4: TLB banks for virtual packet pipelines and DMA",
      "S-NIC (EuroSys'24) Table 4 — 48 programmable cores");

  // VPP buffers (LiquidIO sizes): PB 2 MB, PDB 128 KB, ODB 1 MB -> one 2 MB
  // page entry each = 3 entries. DMA: PB 2 MB + IQ 256 KB = 2 entries.
  const auto menu = core::PageSizeMenu::Equal();
  const core::VppConfig vpp_config;
  const size_t vpp_entries =
      core::PlanRegion(vpp_config.rx_buffer_bytes, menu).entries +
      core::PlanRegion(vpp_config.descriptor_buffer_bytes, menu).entries +
      core::PlanRegion(vpp_config.output_descriptor_bytes, menu).entries;
  const size_t dma_entries = core::PlanRegion(MiB(2), menu).entries +
                             core::PlanRegion(KiB(256), menu).entries;
  std::printf("TLB size per VPP: %zu   per DMA bank: %zu   (paper: 3 / 2;\n"
              "McPAT prices 2 and 3 entries identically)\n\n",
              vpp_entries, dma_entries);

  TablePrinter table({"Units", "Metric", "Virtual packet pipeline", "DMA"});
  for (unsigned cores_per_nf : {4u, 8u, 16u}) {
    const unsigned units = 48 / cores_per_nf;
    const TlbCost vpp = TlbBanksCost(vpp_entries, units);
    const TlbCost dma = TlbBanksCost(dma_entries, units);
    char label[64];
    std::snprintf(label, sizeof(label), "%u VPP/vDMA (%u cores/NF)", units,
                  cores_per_nf);
    table.AddRow({label, "Area (mm^2)", TablePrinter::Fmt(vpp.area_mm2, 3),
                  TablePrinter::Fmt(dma.area_mm2, 3)});
    table.AddRow({"", "Power (W)", TablePrinter::Fmt(vpp.power_w, 3),
                  TablePrinter::Fmt(dma.power_w, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: 12 units -> 0.037 mm^2 / 0.017 W each column;\n"
      "6 -> 0.019/0.009; 3 -> 0.009/0.004.\n");
  return 0;
}
