// Overload soak: graceful degradation as a differential invariant.
//
// Sweeps one constellation across offered-load factors (0.25x .. 4x of the
// overloaded NF's service capacity). NF O sits behind the full overload
// plane — ingress token bucket, bounded priority-early-drop RX queue,
// per-frame cycle deadlines, an accelerator circuit breaker, and a
// credit-flow chain into a slower downstream NF D whose backpressure feeds
// the autoscaler. Bystander NF B shares the device the whole time. Three
// invariants, checked at every --jobs count:
//
//   1. B's full observable record (packet digests, VPP stats, bus grants,
//      metrics, trace lane) is BYTE-IDENTICAL across every load factor:
//      overload of one tenant is invisible to another.
//   2. O's queue occupancy stays under its configured hard bound even at
//      4x load (bounded queues actually bound).
//   3. The goodput-vs-offered-load curve never collapses: each point stays
//      within tolerance of the running maximum (shed load, don't thrash).
//
// Flags: --quick --jobs=N --seed=S --out=FILE (JSON verdict + curve)
// Exit status 1 when any invariant is violated.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/soak_common.h"
#include "src/accel/accelerator.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/chaining.h"
#include "src/core/overload.h"
#include "src/crypto/keys.h"
#include "src/fault/fault.h"
#include "src/mgmt/autoscaler.h"
#include "src/mgmt/nic_os.h"
#include "src/net/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/bus.h"

namespace snic {
namespace {

constexpr uint16_t kPortO = 1000;  // the overloaded tenant
constexpr uint16_t kPortD = 1500;  // chain consumer (never on the wire)
constexpr uint16_t kPortB = 2000;  // the bystander
constexpr uint64_t kCyclesPerStep = 100;
// O's service budget per step; load factors are multiples of this.
constexpr uint64_t kServicePerStep = 4;
// D deliberately consumes slower than O produces: the chain is the
// bottleneck whose credit stalls exercise backpressure end to end.
constexpr uint64_t kDownstreamPerStep = 3;
// O's overload policy (the bound invariant #2 asserts against).
constexpr uint64_t kRxCapFrames = 24;
// Frame geometry: 54-byte headers + the largest payload the traffic
// generator draws (32 + 3*64). Gives the byte form of the queue bound.
constexpr uint64_t kMaxFrameBytes = 54 + 32 + 3 * 64;

// Offered-load factors in percent of kServicePerStep (integer arithmetic
// keeps the offered-frame schedule exactly reproducible).
constexpr uint64_t kLoadPct[] = {25, 50, 100, 200, 300, 400};
constexpr size_t kNumLoads = sizeof(kLoadPct) / sizeof(kLoadPct[0]);

using bench::AppendF;
using bench::Fnv;

struct ScenarioResult {
  std::string b_report;  // invariant #1: identical across load factors
  std::string summary;   // printed narrative
  uint64_t load_pct = 0;
  uint64_t offered = 0;          // frames aimed at O
  uint64_t goodput = 0;          // frames that reached D (end of chain)
  uint64_t wire_rejected = 0;    // refused at O's ingress (bucket/queue)
  uint64_t o_tx_rejected = 0;    // refused at O's bounded TX (backpressure)
  core::VppStats o_stats;
  core::ChainLinkStats chain_stats;
  core::CircuitBreakerStats breaker_stats;
  core::AccelDispatchGateStats gate_stats;
  uint64_t accel_frames = 0;     // frames that used the accelerator
  uint64_t software_frames = 0;  // frames served on the software path
  mgmt::AutoscalerStats scaler_stats;
  uint64_t final_instances = 0;
  uint64_t faults_injected = 0;
};

mgmt::FunctionImage MakeImage(const std::string& name, uint16_t port,
                              uint32_t zip_clusters,
                              const core::OverloadPolicy& overload = {}) {
  mgmt::FunctionImage image;
  image.name = name;
  image.code_and_data.assign(3000, 0xd0);
  image.cores = 1;
  image.memory_bytes = 8ull << 20;
  image.overload = overload;
  image.accel_clusters[static_cast<size_t>(accel::AcceleratorType::kZip)] =
      zip_clusters;
  net::SwitchRule rule;
  rule.dst_port = port;
  image.switch_rules.push_back(rule);
  return image;
}

// The O-scoped fault schedule, identical in every scenario: three
// consecutive accelerator faults trip the breaker, the first half-open
// probe is forced to fail (one reopen), periodic injected admission
// rejects and credit-grant failures keep those shed paths warm.
void InstallFaultSchedule(fault::FaultPlane& plane, uint64_t o_id,
                          uint64_t d_id) {
  auto add = [&plane](std::string_view site, uint64_t nf, uint64_t skip,
                      uint64_t count, uint64_t period) {
    fault::FaultRule rule;
    rule.site = std::string(site);
    rule.nf_id = nf;
    rule.skip = skip;
    rule.count = count;
    rule.period = period;
    plane.AddRule(rule);
  };
  add(fault::sites::kAccelThreadAccess, o_id, 150, 3, 0);
  add(fault::sites::kBreakerProbe, o_id, 0, 1, 0);
  add(fault::sites::kVppRxAdmissionReject, o_id, 30, 1, 151);
  add(fault::sites::kChainCreditGrant, d_id, 5, 1, 97);
}

ScenarioResult RunScenario(size_t load_index, uint64_t seed, uint64_t steps) {
  ScenarioResult result;
  result.load_pct = kLoadPct[load_index];
  obs::MetricRegistry registry;
  obs::ScopedDefaultRegistry scoped_registry(&registry);
  obs::TraceLog trace;

  fault::FaultPlane plane(runtime::DeriveTaskSeed(seed, 1));
  plane.AttachObs(&registry);
  fault::ScopedFaultPlane scoped_plane(&plane);

  // Identical key material and device in every scenario; only the volume
  // of traffic aimed at O differs.
  Rng vendor_rng(runtime::DeriveTaskSeed(seed, 2));
  crypto::VendorAuthority vendor(512, vendor_rng);
  core::SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = 256ull << 20;
  config.rsa_modulus_bits = 512;
  core::SnicDevice device(config, vendor);
  mgmt::NicOs nic_os(&device);

  // O: the tenant under test, fully fenced by the overload plane.
  core::OverloadPolicy o_policy;
  o_policy.rx_queue_capacity_frames = kRxCapFrames;
  o_policy.tx_queue_capacity_frames = 32;
  o_policy.drop_policy = core::DropPolicy::kPriorityEarlyDrop;
  o_policy.admission_burst_frames = 24;
  o_policy.admission_frames_per_refill = 6;
  o_policy.admission_refill_cycles = 50;  // 12 tokens per step
  o_policy.deadline_cycles = 150;
  // D: the slower downstream stage; its small RX bound is what turns
  // sustained overload into credit stalls on the chain.
  core::OverloadPolicy d_policy;
  d_policy.rx_queue_capacity_frames = 8;

  const auto launch = [&nic_os](const mgmt::FunctionImage& image) {
    const auto id = nic_os.NfCreate(image);
    SNIC_CHECK(id.ok());
    return id.value();
  };
  const uint64_t o_id =
      launch(MakeImage("overloaded-o", kPortO, /*zip_clusters=*/1, o_policy));
  const uint64_t d_id = launch(MakeImage("downstream-d", kPortD, 0, d_policy));
  const uint64_t b_id = launch(MakeImage("bystander-b", kPortB, 0));

  InstallFaultSchedule(plane, o_id, d_id);

  core::ChainManager chains(&device);
  core::ChainLinkConfig link_config;
  link_config.producer_nf = o_id;
  link_config.consumer_nf = d_id;
  link_config.frames_per_tick = 6;
  link_config.flow_control = core::ChainFlowControl::kCredit;
  const auto link = chains.CreateLink(link_config);
  SNIC_CHECK(link.ok());

  const auto zip = accel::AcceleratorType::kZip;
  int o_cluster = -1;
  for (uint32_t i = 0; i < device.accel_pool().NumClusters(zip); ++i) {
    if (device.accel_pool().Owner(zip, i) == std::optional<uint64_t>(o_id)) {
      o_cluster = static_cast<int>(i);
    }
  }
  SNIC_CHECK(o_cluster >= 0);
  core::CircuitBreakerConfig breaker_config;
  breaker_config.failures_to_open = 3;
  breaker_config.open_cycles = 10 * kCyclesPerStep;
  breaker_config.half_open_successes = 2;
  core::AccelDispatchGate gate(&device.accel_pool(), o_id, breaker_config);
  gate.breaker().AttachObs(&registry);

  // The elastic pool the pressure signal scales: capacity is set so high
  // that only sustained backpressure (never the load estimate) scales it.
  mgmt::AutoscalerConfig scaler_config;
  scaler_config.image = MakeImage("elastic", 4000, 0);
  scaler_config.image.memory_bytes = 4ull << 20;
  scaler_config.capacity_per_instance = 100.0;
  scaler_config.min_instances = 1;
  scaler_config.max_instances = 4;
  scaler_config.pressure_scale_up_after = 3;
  mgmt::Autoscaler scaler(&nic_os, scaler_config);

  sim::TemporalPartitionArbiter::Config bus_config;
  bus_config.transfer_cycles = 4;
  bus_config.num_domains = 2;  // domain 0 = O, domain 1 = B
  bus_config.epoch_cycles = 64;
  bus_config.dead_time_cycles = 8;
  sim::TemporalPartitionArbiter bus(bus_config);

  // Two traffic streams from disjoint seed lanes: O's volume varies with
  // the load factor, B's is the scenario-invariant control.
  Rng o_traffic(runtime::DeriveTaskSeed(seed, 4));
  Rng b_traffic(runtime::DeriveTaskSeed(seed, 5));
  obs::Counter& b_rx = registry.GetCounter("overload.b.rx", {{"nf", "b"}});
  obs::Counter& b_tx = registry.GetCounter("overload.b.tx", {{"nf", "b"}});

  core::VirtualPacketPipeline* o_vpp = device.Vpp(o_id);
  core::VirtualPacketPipeline* b_vpp = device.Vpp(b_id);
  core::VirtualPacketPipeline* d_vpp = device.Vpp(d_id);
  SNIC_CHECK(o_vpp != nullptr && b_vpp != nullptr && d_vpp != nullptr);

  const auto make_packet = [](Rng& rng, uint16_t port) {
    net::FiveTuple tuple;
    tuple.src_ip = net::Ipv4FromString("10.0.0.9");
    tuple.dst_ip = net::Ipv4FromString("203.0.113.7");
    tuple.src_port = static_cast<uint16_t>(10000 + rng.NextBounded(100));
    tuple.dst_port = port;
    tuple.protocol = 6;
    // Mixed frame sizes so priority-aware early drop has real choices.
    std::vector<uint8_t> payload(32 + rng.NextBounded(4) * 64);
    for (size_t k = 0; k < payload.size(); ++k) {
      payload[k] = static_cast<uint8_t>(rng.NextU64());
    }
    return net::PacketBuilder().SetTuple(tuple).SetPayload(payload).Build();
  };

  Fnv b_rx_digest, b_wire_digest, b_bus_digest;
  uint64_t b_wire_packets = 0, b_bus_grants = 0;
  uint64_t offered_acc = 0;

  for (uint64_t step = 0; step < steps; ++step) {
    const uint64_t now = (step + 1) * kCyclesPerStep;
    plane.AdvanceClockTo(now);
    device.AdvanceClockTo(now);

    // Offered load toward O: load_pct% of the service budget, scheduled by
    // an integer accumulator so fractional factors stay deterministic.
    offered_acc += result.load_pct * kServicePerStep;
    while (offered_acc >= 100) {
      offered_acc -= 100;
      ++result.offered;
      if (!device.DeliverFromWire(make_packet(o_traffic, kPortO)).ok()) {
        ++result.wire_rejected;  // token bucket, injected reject, or full
      }
    }
    // B's control stream: two frames per step, every scenario.
    for (int i = 0; i < 2; ++i) {
      SNIC_CHECK_OK(device.DeliverFromWire(make_packet(b_traffic, kPortB)));
    }

    // One bus grant per domain per step; B's grants join its record.
    (void)bus.Grant(now, /*domain=*/0);
    b_bus_digest.Mix64(bus.Grant(now, /*domain=*/1));
    ++b_bus_grants;

    // O services its budget. Every frame consults the breaker-gated
    // accelerator; an open breaker answers immediately and the frame takes
    // the software path — degraded, never dropped.
    for (uint64_t n = 0; n < kServicePerStep; ++n) {
      auto received = device.NfReceive(o_id);  // sheds stale frames first
      if (!received.ok()) {
        break;
      }
      const auto access = gate.Dispatch(
          zip, static_cast<uint32_t>(o_cluster), 0x1000, false, now);
      if (access.ok()) {
        ++result.accel_frames;
      } else {
        ++result.software_frames;
      }
      if (!device.NfSend(o_id, std::move(received).value()).ok()) {
        ++result.o_tx_rejected;  // bounded TX is full: backpressure bites
      }
    }

    // The chain moves O's output under D's credits, stalling (not
    // dropping) when D is full.
    chains.TickAll();

    // D consumes slower than O produces: the end-to-end goodput gauge.
    for (uint64_t n = 0; n < kDownstreamPerStep; ++n) {
      auto received = device.NfReceive(d_id);
      if (!received.ok()) {
        break;
      }
      ++result.goodput;
      (void)d_vpp;  // D terminates the chain; frames are accounted, done.
    }

    // Bystander B: polls, digests, echoes — identical in every scenario.
    for (;;) {
      auto received = device.NfReceive(b_id);
      if (!received.ok()) {
        break;
      }
      net::Packet packet = std::move(received).value();
      b_rx_digest.Mix(packet.bytes().data(), packet.size());
      b_rx.Inc();
      trace.AddComplete("b.process", now, 1, static_cast<uint32_t>(b_id), 0);
      if (device.NfSend(b_id, std::move(packet)).ok()) {
        b_tx.Inc();
      }
    }
    // B's wire egress is drained directly from its pipeline so O's
    // chained TX backlog stays where backpressure left it.
    for (;;) {
      auto out = b_vpp->DequeueTx();
      if (!out.ok()) {
        break;
      }
      b_wire_digest.Mix(out.value().bytes().data(), out.value().size());
      ++b_wire_packets;
    }

    // The control loop samples the data plane's pressure signal.
    if (step % 8 == 7) {
      const bool pressured =
          chains.AnyBackpressure(o_id) || o_vpp->RxFillFraction() > 0.9;
      SNIC_CHECK_OK(scaler.Step(1.0, pressured));
    }
  }

  // ---- B's invariant report ----------------------------------------------
  std::string& report = result.b_report;
  const core::VppStats& bs = b_vpp->stats();
  const bench::LaneDigest b_trace =
      bench::DigestTraceLane(trace, static_cast<uint32_t>(b_id));
  AppendF(report, "b.nf_id: %" PRIu64 "\n", b_id);
  AppendF(report, "b.rx: %" PRIu64 " digest: %016" PRIx64 "\n", b_rx.value(),
          b_rx_digest.h);
  AppendF(report, "b.wire: %" PRIu64 " digest: %016" PRIx64 "\n",
          b_wire_packets, b_wire_digest.h);
  AppendF(report,
          "b.vpp: rx=%" PRIu64 " drop_full=%" PRIu64 " drop_admission=%" PRIu64
          " drop_early=%" PRIu64 " shed_rx=%" PRIu64 " shed_tx=%" PRIu64
          " tx=%" PRIu64 " rx_bytes=%" PRIu64 " tx_bytes=%" PRIu64 "\n",
          bs.rx_packets, bs.rx_dropped_full, bs.rx_dropped_admission,
          bs.rx_dropped_early, bs.rx_shed_deadline, bs.tx_shed_deadline,
          bs.tx_packets, bs.rx_bytes, bs.tx_bytes);
  AppendF(report, "b.bus: %" PRIu64 " digest: %016" PRIx64 "\n", b_bus_grants,
          b_bus_digest.h);
  AppendF(report, "b.metrics: tx=%" PRIu64 "\n", b_tx.value());
  AppendF(report, "b.trace: %" PRIu64 " digest: %016" PRIx64 "\n",
          b_trace.count, b_trace.digest);

  result.o_stats = o_vpp->stats();
  result.chain_stats = chains.link(link.value()).stats();
  result.breaker_stats = gate.breaker().stats();
  result.gate_stats = gate.stats();
  result.scaler_stats = scaler.stats();
  result.final_instances = scaler.instances();
  result.faults_injected = plane.injected_total();

  // ---- Scenario narrative ------------------------------------------------
  std::string& summary = result.summary;
  AppendF(summary,
          "  offered=%" PRIu64 " goodput=%" PRIu64 " ingress_rejected=%" PRIu64
          " tx_rejected=%" PRIu64 "\n",
          result.offered, result.goodput, result.wire_rejected,
          result.o_tx_rejected);
  const core::VppStats& os = result.o_stats;
  AppendF(summary,
          "  o.vpp: drop_admission=%" PRIu64 " drop_early=%" PRIu64
          " drop_full=%" PRIu64 " shed_rx=%" PRIu64 " shed_tx=%" PRIu64
          " shed_bytes=%" PRIu64 "\n",
          os.rx_dropped_admission, os.rx_dropped_early,
          os.rx_dropped_full + os.tx_dropped_full, os.rx_shed_deadline,
          os.tx_shed_deadline, os.shed_bytes);
  AppendF(summary,
          "  o.queue: peak_frames=%" PRIu64 "/%" PRIu64 " peak_bytes=%" PRIu64
          "/%" PRIu64 "\n",
          os.rx_peak_frames, kRxCapFrames, os.rx_peak_bytes,
          kRxCapFrames * kMaxFrameBytes);
  const core::ChainLinkStats& cs = result.chain_stats;
  AppendF(summary,
          "  chain: moved=%" PRIu64 " stalled=%" PRIu64 " stall_ticks=%" PRIu64
          " credit_faults=%" PRIu64 " dropped=%" PRIu64 "\n",
          cs.frames_moved, cs.frames_stalled, cs.stall_ticks, cs.credit_faults,
          cs.frames_dropped);
  const core::CircuitBreakerStats& brs = result.breaker_stats;
  AppendF(summary,
          "  breaker: opens=%" PRIu64 " reopens=%" PRIu64 " closes=%" PRIu64
          " rejected=%" PRIu64 " accel=%" PRIu64 " software=%" PRIu64 "\n",
          brs.opens, brs.reopens, brs.closes, brs.rejected,
          result.accel_frames, result.software_frames);
  AppendF(summary,
          "  scaler: instances=%" PRIu64 " pressure_scale_ups=%" PRIu64
          " pressured_steps=%" PRIu64 "\n",
          result.final_instances, result.scaler_stats.pressure_scale_ups,
          result.scaler_stats.pressured_steps);
  AppendF(summary, "  faults injected: %" PRIu64 "\n",
          result.faults_injected);
  return result;
}

}  // namespace
}  // namespace snic

int main(int argc, char** argv) {
  using namespace snic;

  const bench::SoakFlags flags = bench::ParseSoakFlags(
      argc, argv, /*default_seed=*/0x0ff10adull, /*quick_steps=*/1200,
      /*full_steps=*/6000);

  bench::PrintHeader("Overload soak: deterministic graceful degradation",
                     "bounded queues, backpressure and load shedding under "
                     "offered-load sweep");

  std::vector<ScenarioResult> results(kNumLoads);
  {
    auto pool = bench::MakePool(flags.jobs);
    runtime::ParallelFor(pool.get(), kNumLoads, [&](size_t task) {
      results[task] = RunScenario(task, flags.seed, flags.steps);
    });
  }

  std::printf("seed: %" PRIu64 "  steps/scenario: %" PRIu64 "\n\n", flags.seed,
              flags.steps);
  for (const ScenarioResult& r : results) {
    std::printf("load %3" PRIu64 "%%:\n%s\n", r.load_pct, r.summary.c_str());
  }

  // Invariant 1: the bystander's record is identical at every load factor.
  bool bystander_identical = true;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].b_report != results[0].b_report) {
      bystander_identical = false;
      std::printf("BYSTANDER DIVERGED at load %" PRIu64 "%%:\n--- %" PRIu64
                  "%% ---\n%s--- %" PRIu64 "%% ---\n%s",
                  results[i].load_pct, results[0].load_pct,
                  results[0].b_report.c_str(), results[i].load_pct,
                  results[i].b_report.c_str());
    }
  }
  std::printf("bystander-b report (all loads):\n%s\n",
              results[0].b_report.c_str());

  // Invariant 2: the bounded queue actually bounds, even at 4x.
  bool queue_bound_ok = true;
  for (const ScenarioResult& r : results) {
    if (r.o_stats.rx_peak_frames > kRxCapFrames ||
        r.o_stats.rx_peak_bytes > kRxCapFrames * kMaxFrameBytes) {
      queue_bound_ok = false;
      std::printf("QUEUE BOUND VIOLATED at load %" PRIu64
                  "%%: peak_frames=%" PRIu64 " peak_bytes=%" PRIu64 "\n",
                  r.load_pct, r.o_stats.rx_peak_frames,
                  r.o_stats.rx_peak_bytes);
    }
  }

  // Invariant 3: goodput never collapses as offered load grows.
  bool goodput_ok = true;
  uint64_t best_goodput = 0;
  for (const ScenarioResult& r : results) {
    if (r.goodput * 100 < best_goodput * 85) {
      goodput_ok = false;
      std::printf("GOODPUT COLLAPSED at load %" PRIu64 "%%: %" PRIu64
                  " vs best %" PRIu64 "\n",
                  r.load_pct, r.goodput, best_goodput);
    }
    if (r.goodput > best_goodput) {
      best_goodput = r.goodput;
    }
  }

  // The breaker must complete a full closed->open->half-open(->reopen)->
  // closed cycle in every scenario (the schedule is load-independent).
  const core::CircuitBreakerStats& top = results[kNumLoads - 1].breaker_stats;
  const bool breaker_cycled =
      top.opens >= 1 && top.reopens >= 1 && top.closes >= 1;
  if (!breaker_cycled) {
    std::printf("BREAKER NEVER CYCLED: opens=%" PRIu64 " reopens=%" PRIu64
                " closes=%" PRIu64 "\n",
                top.opens, top.reopens, top.closes);
  }
  // And sustained pressure must have scaled the elastic pool out at 4x
  // while the calm scenarios never saw a pressure launch.
  const bool pressure_ok =
      results[kNumLoads - 1].scaler_stats.pressure_scale_ups >= 1 &&
      results[0].scaler_stats.pressure_scale_ups == 0;
  if (!pressure_ok) {
    std::printf("PRESSURE SIGNAL WRONG: calm=%" PRIu64 " 4x=%" PRIu64 "\n",
                results[0].scaler_stats.pressure_scale_ups,
                results[kNumLoads - 1].scaler_stats.pressure_scale_ups);
  }

  const bool pass = bystander_identical && queue_bound_ok && goodput_ok &&
                    breaker_cycled && pressure_ok;
  std::printf("%s\n", pass ? "ALL OVERLOAD INVARIANTS HOLD"
                           : "OVERLOAD INVARIANT VIOLATED");

  bench::VerdictJson verdict("overload_soak", flags);
  verdict.AddBool("bystander_identical", bystander_identical);
  verdict.AddBool("queue_bound_ok", queue_bound_ok);
  verdict.AddBool("goodput_ok", goodput_ok);
  verdict.AddBool("breaker_cycled", breaker_cycled);
  verdict.AddBool("pressure_ok", pressure_ok);
  std::string curve = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    AppendF(curve,
            "%s{\"load_pct\":%" PRIu64 ",\"offered\":%" PRIu64
            ",\"goodput\":%" PRIu64 ",\"ingress_rejected\":%" PRIu64
            ",\"drop_admission\":%" PRIu64 ",\"drop_early\":%" PRIu64
            ",\"shed_deadline\":%" PRIu64 ",\"peak_rx_frames\":%" PRIu64
            ",\"peak_rx_bytes\":%" PRIu64 ",\"stall_ticks\":%" PRIu64
            ",\"pressure_scale_ups\":%" PRIu64 "}",
            i == 0 ? "" : ",", r.load_pct, r.offered, r.goodput,
            r.wire_rejected, r.o_stats.rx_dropped_admission,
            r.o_stats.rx_dropped_early,
            r.o_stats.rx_shed_deadline + r.o_stats.tx_shed_deadline,
            r.o_stats.rx_peak_frames, r.o_stats.rx_peak_bytes,
            r.chain_stats.stall_ticks, r.scaler_stats.pressure_scale_ups);
  }
  curve += "]";
  verdict.AddRaw("curve", curve);
  if (!verdict.Write(pass)) {
    return 1;
  }
  return pass ? 0 : 1;
}
