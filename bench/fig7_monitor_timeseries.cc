// Regenerates Fig. 7: the Monitor NF's memory usage over a five-minute
// CAIDA-like interval — the DPDK hugepage-initialization spike, the HashMap
// resize spikes, the steady-state usage, and the minimum preallocation an
// S-NIC launch would need (peak).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/net/parser.h"
#include "src/nf/monitor.h"
#include "src/trace/trace_gen.h"

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;

  bench::PrintHeader("Fig. 7: Monitor memory usage over time",
                     "S-NIC (EuroSys'24) Appendix C, Figure 7");

  nf::MonitorConfig config;
  config.model_hugepage_init = true;
  config.hugepage_pool_mib = 64.0;
  nf::Monitor monitor(config);

  // Five-minute CAIDA-like interval: the 2016 trace carries 26.7M flows per
  // hour => ~2.2M flows per 5 minutes; we use a 3M-flow population (scaled
  // to land at the paper's observed footprint) and stream packets with Zipf
  // popularity plus a one-per-flow sweep that models new-flow arrivals.
  const uint64_t flow_pool = quick ? 150'000 : 3'400'000;
  const double total_seconds = 150.0;  // plotted span in the paper

  trace::FlowTable flows(flow_pool, 5);
  const uint64_t sample_every = flow_pool / 50;

  std::printf("time(s)  used(MB)  note\n");
  std::printf("-----------------------------------\n");
  // The t=0 sample shows the hugepage-init spike already folded into peak.
  std::printf("%7.1f  %8.1f  (hugepage init spike: peak so far %.1f MB)\n",
              0.0, BytesToMiB(monitor.live_bytes()),
              BytesToMiB(monitor.arena().peak_bytes()));

  uint64_t last_live = monitor.live_bytes();
  for (uint64_t r = 0; r < flows.size(); ++r) {
    net::Packet packet =
        net::PacketBuilder().SetTuple(flows.TupleForRank(r)).Build();
    monitor.Process(packet);
    if (r % sample_every == sample_every - 1) {
      const double t =
          total_seconds * static_cast<double>(r + 1) /
          static_cast<double>(flows.size());
      const uint64_t live = monitor.live_bytes();
      const bool resized = live + MiBToBytes(1) < last_live ||
                           live > last_live + live / 3;
      std::printf("%7.1f  %8.1f%s\n", t, BytesToMiB(live),
                  resized ? "  (HashMap resize)" : "");
      last_live = live;
    }
  }

  const double used = BytesToMiB(monitor.live_bytes());
  const double prealloc = BytesToMiB(monitor.arena().peak_bytes());
  std::printf("\nSteady-state usage:        %8.1f MB (paper: 246.31 MB)\n",
              used);
  std::printf("Minimum S-NIC preallocation: %6.1f MB (paper: 360.54 MB)\n",
              prealloc);
  std::printf("Memory utilization ratio:   %6.1f%% (paper: 68.3%%)\n",
              100.0 * used / prealloc);
  std::printf("Distinct flows recorded:    %zu%s\n", monitor.distinct_flows(),
              quick ? "  (QUICK MODE: reduced flow pool)" : "");
  return 0;
}
