// Regenerates Fig. 6 (Appendix C): execution latency of the trusted
// instructions per NF. Functions of the Table 6 image sizes are actually
// launched on the device model; the cryptographic work (cumulative SHA-256,
// RSA quote signing) really executes, and latencies are reported at the
// modeled security-co-processor rates fitted from the paper.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/snic_device.h"
#include "src/crypto/diffie_hellman.h"

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;
  using namespace snic::core;

  bench::PrintHeader("Fig. 6: trusted-instruction execution latency",
                     "S-NIC (EuroSys'24) Appendix C, Figure 6");

  struct NfImage {
    const char* name;
    double total_mib;  // Table 6 totals
  };
  const std::vector<NfImage> images = {
      {"FW", 17.20},  {"DPI", 51.14}, {"NAT", 43.88},
      {"LB", 13.80},  {"LPM", 68.33}, {"Mon", 360.54},
  };

  SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = quick ? (256ull << 20) : (1ull << 30);
  config.rsa_modulus_bits = 768;
  Rng vendor_rng(2);
  crypto::VendorAuthority vendor(768, vendor_rng);
  SnicDevice device(config, vendor);

  TablePrinter launch_table({"NF", "TLB setup+config", "Denylisting",
                             "SHA-256 digesting", "nf_launch total"});
  TablePrinter destroy_table(
      {"NF", "Allowlisting", "Memory scrubbing", "nf_destroy total"});

  Rng dh_rng(3);
  const crypto::DhGroup group = crypto::SmallTestGroup();
  double attest_ms = 0.0;
  for (const NfImage& image : images) {
    const double mib =
        quick ? std::min(image.total_mib, 80.0) : image.total_mib;
    const uint64_t pages = CeilDiv(MiBToBytes(mib), config.page_bytes);
    auto staged = device.memory().AllocatePages(pages, kPageNicOs);
    SNIC_CHECK(staged.ok());
    // Fill the image with non-trivial bytes so SHA-256 does real work.
    std::vector<uint8_t> page(config.page_bytes);
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(i * 131 + image.name[0]);
    }
    for (uint64_t p : staged.value()) {
      device.memory().Write(p * config.page_bytes,
                            std::span<const uint8_t>(page.data(), page.size()));
    }
    NfLaunchArgs args;
    args.core_mask = 0b10;
    args.image_pages = staged.value();
    args.config_blob = {1};
    const auto id = device.NfLaunch(args);
    SNIC_CHECK(id.ok());
    const LaunchLatency& launch = device.last_launch_latency();
    launch_table.AddRow({image.name,
                         TablePrinter::Fmt(launch.tlb_setup_ms, 4) + " ms",
                         TablePrinter::Fmt(launch.denylist_ms, 4) + " ms",
                         TablePrinter::Fmt(launch.sha_digest_ms, 2) + " ms",
                         TablePrinter::Fmt(launch.TotalMs(), 2) + " ms"});

    // One attestation per function (latency is size-independent).
    crypto::DhParticipant dh(group, dh_rng);
    AttestationRequest request;
    request.group = group;
    request.nonce = {1, 2, 3, 4};
    request.g_x = dh.public_value();
    device.coproc().ResetElapsed();
    SNIC_CHECK(device.NfAttest(id.value(), request).ok());
    attest_ms = device.coproc().elapsed_ms();

    SNIC_CHECK_OK(device.NfTeardown(id.value()));
    const TeardownLatency& teardown = device.last_teardown_latency();
    destroy_table.AddRow({image.name,
                          TablePrinter::Fmt(teardown.allowlist_ms, 4) + " ms",
                          TablePrinter::Fmt(teardown.scrub_ms, 2) + " ms",
                          TablePrinter::Fmt(teardown.TotalMs(), 2) + " ms"});
  }

  std::printf("nf_launch latency breakdown%s:\n%s\n",
              quick ? " (QUICK MODE: images capped at 80 MB)" : "",
              launch_table.ToString().c_str());
  std::printf("nf_destroy latency breakdown:\n%s\n",
              destroy_table.ToString().c_str());
  std::printf("nf_attest: %.3f ms (paper: ~5.6 ms, size-independent;\n"
              "RSA signing 5.596 ms + SHA 0.004 ms)\n\n", attest_ms);
  std::printf(
      "Paper reference: SHA digesting dominates nf_launch (29.62 ms for LB's\n"
      "13.8 MB up to 763.52 ms for Monitor's 360.5 MB at ~470 MB/s);\n"
      "memory scrubbing is 99.99%% of nf_destroy (2.11-54.23 ms at ~6.6 GB/s);\n"
      "TLB setup ~0.0196 ms, denylist ~0.0044 ms, allowlist ~0.0038 ms.\n");
  return 0;
}
