// Regenerates Table 7: memory-usage profiles for the three hardware
// accelerators and the TLB entry counts they imply. The DPI graph size is
// *measured* by building the hardware automaton from the full 33,471-pattern
// corpus (paper value: 97.28 MB).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/accelerator.h"
#include "src/accel/aho_corasick.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/tlb_sizing.h"

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using snic::TablePrinter;
  using namespace snic::accel;

  snic::bench::PrintHeader("Table 7: accelerator memory profiles",
                           "S-NIC (EuroSys'24) Appendix B, Table 7");

  const size_t patterns = quick ? 4'000 : 33'471;
  const AhoCorasick automaton(GenerateDpiRuleset(patterns, 11));
  std::printf(
      "DPI hardware graph: %zu patterns -> %zu nodes -> %.2f MB "
      "(paper: 33,471 rules -> 97.28 MB)\n\n",
      patterns, automaton.node_count(),
      snic::BytesToMiB(automaton.HardwareGraphBytes()));

  const AcceleratorMemoryProfile profiles[] = {
      AcceleratorMemoryProfile::Dpi(automaton.HardwareGraphBytes()),
      AcceleratorMemoryProfile::Zip(),
      AcceleratorMemoryProfile::Raid(),
  };

  TablePrinter table({"Accel", "Regions (bytes)", "Total",
                      "TLB entries (2MB pages)", "Paper"});
  const char* paper[] = {"101.90 MB / 54", "132.24 MB / 70", "8.13 MB / 5"};
  const auto menu = snic::core::PageSizeMenu::Equal();
  for (size_t i = 0; i < 3; ++i) {
    const auto& profile = profiles[i];
    std::string regions;
    size_t entries = 0;
    for (const auto& region : profile.regions) {
      if (!regions.empty()) {
        regions += " ";
      }
      regions += region.name + "=";
      if (region.bytes >= snic::MiB(1)) {
        regions += TablePrinter::Fmt(snic::BytesToMiB(region.bytes), 2) + "M";
      } else {
        regions += std::to_string(region.bytes / 1024) + "K";
      }
      entries += snic::core::PlanRegion(region.bytes, menu).entries;
    }
    table.AddRow({std::string(AcceleratorTypeName(profile.type)), regions,
                  TablePrinter::Fmt(snic::BytesToMiB(profile.TotalBytes()), 2) +
                      " MB",
                  std::to_string(entries), paper[i]});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
