// Replay-engine throughput gate: times the Fig. 5a workload (every
// unordered NF pair at each L2 size of the fig5a quick sweep, baseline +
// S-NIC configurations, single-threaded) on the fast engine
// (sim::PreparedTrace + the global-event merge: SoA cache, streaming codec,
// inline bus) against the scalar sim::ReferenceReplay oracle it must match
// byte for byte (docs/PERFORMANCE.md). The fast sweep is timed end to end —
// codec decode and the private-L1 prepare pass included — exactly as the
// Fig. 5 benches consume it: prepare once per sweep, then replay every
// (pair, size, config) cell from the prepared form. Reports events/sec for
// both and the speedup; the fast path must hold >= 5x on the full-size
// workload.
//
// Discipline mirrors obs_overhead: the two engines are interleaved within
// each rep so machine drift biases both equally, and the minimum over reps
// is the noise-robust per-engine estimate (contention only ever adds time).
// The bench also cross-checks the two engines' degradation checksums every
// rep — a free differential test on the exact workload being timed.
//
// Results land in BENCH_replay_throughput.json; the committed copy at the
// repo root pins the calibrated full run. CI re-measures the *speedup*
// (the hardware-robust ratio) each run and fails if it drops more than 10%
// below the pin. --quick runs print and record everything but always exit
// 0 — short replays under-warm the caches and shared runners flap, so only
// full runs gate the 5x floor locally.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig5_common.h"
#include "src/common/units.h"
#include "src/sim/reference.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kSpeedupFloor = 5.0;

// Minimum over interleaved reps: the noise-robust estimator (see
// bench/obs_overhead.cc for the rationale).
double MinMs(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  using namespace snic;
  using namespace snic::bench;

  PrintHeader("Replay throughput: fast streaming engine vs reference oracle",
              "gate: >= 5x events/sec on the Fig. 5a workload");

  // --seed=S varies the synthetic NF workload (default matches the
  // committed pin); the seed is echoed into the verdict JSON.
  const std::string seed_flag = FlagValue(argc, argv, "--seed");
  const uint64_t seed =
      seed_flag.empty() ? 2024 : std::strtoull(seed_flag.c_str(), nullptr, 10);

  const size_t events = quick ? 20'000 : 120'000;
  const size_t reps = quick ? 3 : 7;
  std::printf("Recording NF traces (%zu events/NF, %zu timed reps, seed "
              "%llu)...\n\n",
              events, reps, static_cast<unsigned long long>(seed));
  // Both trace forms are needed: the reference engine replays materialized
  // events; the fast engine streams the encoded form through its prepare
  // pass (timed as part of the fast sweep).
  const auto traces = RecordNfTraces(events, seed, nullptr);
  const auto encoded = EncodeNfTraces(traces);

  // The Fig. 5a workload: every unordered NF pair at every L2 size of the
  // fig5a quick sweep, replayed under both configurations, single-threaded.
  // One prepare pass serves the whole sweep, as in fig5a_ipc_vs_cache.
  const std::vector<uint64_t> l2_sizes = {KiB(32), KiB(512), MiB(4)};
  std::vector<std::vector<size_t>> pairs;
  for (size_t i = 0; i < kNumNfs; ++i) {
    for (size_t j = i; j < kNumNfs; ++j) {
      pairs.push_back({i, j});
    }
  }
  // Trace events fed through an engine per sweep: two replays per pair at
  // each L2 size.
  uint64_t events_per_sweep = 0;
  for (const auto& pair : pairs) {
    for (size_t kind : pair) {
      events_per_sweep += 2 * l2_sizes.size() * traces[kind].size();
    }
  }

  auto degradation_checksum = [](const sim::ReplayResult& baseline,
                                 const sim::ReplayResult& secure) {
    double checksum = 0.0;
    for (size_t c = 0; c < baseline.cores.size(); ++c) {
      checksum += 1.0 - secure.cores[c].Ipc() / baseline.cores[c].Ipc();
    }
    return checksum;
  };
  auto reference_sweep = [&] {
    double checksum = 0.0;
    for (uint64_t l2 : l2_sizes) {
      for (const auto& pair : pairs) {
        std::vector<const sim::InstructionTrace*> mix;
        for (size_t kind : pair) {
          mix.push_back(&traces[kind]);
        }
        const auto cores = static_cast<uint32_t>(mix.size());
        const auto baseline = sim::ReferenceReplay(
            sim::MachineConfig::MarvellLike(cores, l2, false), mix, 0.3);
        const auto secure = sim::ReferenceReplay(
            sim::MachineConfig::MarvellLike(cores, l2, true), mix, 0.3);
        checksum += degradation_checksum(baseline, secure);
      }
    }
    return checksum;
  };
  auto fast_sweep = [&] {
    // Prepare inside the timed region: the sweep's true cost includes one
    // codec decode + private-L1 pass per trace, amortized over every
    // (pair, size, config) cell — the prepared form is L2-independent.
    const auto prepared = PrepareNfTraces(encoded);
    double checksum = 0.0;
    for (uint64_t l2 : l2_sizes) {
      for (const auto& pair : pairs) {
        std::vector<const sim::PreparedTrace*> mix;
        for (size_t kind : pair) {
          mix.push_back(&prepared[kind]);
        }
        const auto cores = static_cast<uint32_t>(mix.size());
        const auto baseline = ReplayPreparedMix(
            sim::MachineConfig::MarvellLike(cores, l2, false), mix);
        const auto secure = ReplayPreparedMix(
            sim::MachineConfig::MarvellLike(cores, l2, true), mix);
        checksum += degradation_checksum(baseline, secure);
      }
    }
    return checksum;
  };

  std::printf("Timing interleaved sweeps (reference / fast per rep, "
              "%zu pairs x %zu L2 sizes x 2 configs, %llu events per "
              "sweep)...\n",
              pairs.size(), l2_sizes.size(),
              static_cast<unsigned long long>(events_per_sweep));
  std::vector<double> reference_samples;
  std::vector<double> fast_samples;
  bool checksums_match = true;
  double checksum = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    const auto ref_start = Clock::now();
    const double ref_checksum = reference_sweep();
    const auto ref_stop = Clock::now();
    reference_samples.push_back(
        std::chrono::duration<double, std::milli>(ref_stop - ref_start)
            .count());

    const auto fast_start = Clock::now();
    const double fast_checksum = fast_sweep();
    const auto fast_stop = Clock::now();
    fast_samples.push_back(
        std::chrono::duration<double, std::milli>(fast_stop - fast_start)
            .count());

    // Differential cross-check on the timed workload itself: the engines
    // must agree bit for bit, every rep.
    if (fast_checksum != ref_checksum) {
      checksums_match = false;
      std::fprintf(stderr,
                   "DIVERGENCE at rep %zu: reference %.17g fast %.17g\n", r,
                   ref_checksum, fast_checksum);
    }
    checksum = fast_checksum;
  }
  std::printf("  (sweep checksum %.6f, engines %s)\n", checksum,
              checksums_match ? "identical" : "DIVERGED");

  const double reference_ms = MinMs(reference_samples);
  const double fast_ms = MinMs(fast_samples);
  const double reference_eps =
      static_cast<double>(events_per_sweep) / (reference_ms / 1000.0);
  const double fast_eps =
      static_cast<double>(events_per_sweep) / (fast_ms / 1000.0);
  const double speedup = reference_ms / fast_ms;
  const bool speedup_ok = speedup >= kSpeedupFloor;

  std::printf("\nbest sweep: reference %.1f ms (%.2fM events/s), "
              "fast %.1f ms (%.2fM events/s)\n",
              reference_ms, reference_eps / 1e6, fast_ms, fast_eps / 1e6);
  std::printf("speedup: %.2fx\n", speedup);
  std::printf("gate: fast path >= %.1fx reference             ->  %s\n",
              kSpeedupFloor, speedup_ok ? "PASS" : "FAIL");
  std::printf("gate: engines byte-identical (checksums)      ->  %s\n",
              checksums_match ? "PASS" : "FAIL");
  if (quick) {
    std::printf("  (quick mode: speedup informational only — the floor gates "
                "on the full-size replay)\n");
  }

  const std::string out_path = [&] {
    const std::string flag = FlagValue(argc, argv, "--out");
    return flag.empty() ? std::string("BENCH_replay_throughput.json") : flag;
  }();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"replay_throughput\",\"seed\":%llu,"
               "\"events_per_nf\":%zu,"
               "\"reps\":%zu,\"pairs\":%zu,\"l2_sizes\":%zu,"
               "\"events_per_sweep\":%llu,"
               "\"reference_ms\":%.3f,\"fast_ms\":%.3f,"
               "\"reference_events_per_sec\":%.0f,"
               "\"fast_events_per_sec\":%.0f,\"speedup\":%.3f,"
               "\"speedup_floor\":%.1f,\"checksums_match\":%s,"
               "\"quick\":%s,\"pass\":%s}\n",
               static_cast<unsigned long long>(seed), events, reps,
               pairs.size(), l2_sizes.size(),
               static_cast<unsigned long long>(events_per_sweep),
               reference_ms, fast_ms, reference_eps, fast_eps, speedup,
               kSpeedupFloor, checksums_match ? "true" : "false",
               quick ? "true" : "false",
               checksums_match && speedup_ok ? "true" : "false");
  std::fclose(f);
  std::printf("Wrote %s\n", out_path.c_str());

  // Checksum divergence is a correctness failure and gates in every mode;
  // the throughput floor gates only on full runs.
  if (!checksums_match) {
    return 1;
  }
  return (quick || speedup_ok) ? 0 : 1;
}
