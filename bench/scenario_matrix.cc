// Scenario matrix: the declarative robustness sweep (docs/ROBUSTNESS.md).
//
// Sweeps every generated scenario family (src/scenario/generator.h) plus
// any curated .json specs under --specs=DIR across the deterministic
// runtime. Each scenario decodes (or is rejected — a rejection is a FAIL
// verdict, never a silent skip), runs its constellation — and its stripped
// baseline twin when a differential predicate needs one — and prints
// exactly one verdict line:
//
//   PASS  c/crash-during-recovery/3  bystander_identical=ok containment:victim-a=ok
//
// The verdict lines are byte-identical at every --jobs count: scenarios are
// index-addressed, each draws its seed as DeriveTaskSeed(seed, index), and
// printing happens after the join in index order.
//
// Flags: --quick (stride-sampled 32-scenario smoke) --jobs=N --seed=S
//        --limit=N (run the first-by-stride N scenarios; 0 = all)
//        --specs=DIR (also run every *.json spec in DIR, sorted by name)
//        --out=FILE (JSON verdict; default BENCH_scenario_matrix.json)
// Exit status 1 when any scenario fails.

#include <dirent.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/soak_common.h"
#include "src/common/status.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/scenario/generator.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec.h"

namespace snic {
namespace {

using bench::AppendF;

// One sweep entry: either a decoded spec or the decode rejection that
// stands in for it (still producing a verdict line).
struct Entry {
  std::string name;
  bool decoded = false;
  scenario::ScenarioSpec spec;
  std::string decode_error;
  bool curated = false;
};

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return text;
}

// Loads every *.json under `dir`, sorted by filename so the sweep order
// (and therefore the verdict stream) is stable across filesystems.
std::vector<Entry> LoadCurated(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "cannot open --specs dir %s\n", dir.c_str());
    std::exit(1);
  }
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      files.push_back(name);
    }
  }
  closedir(d);
  std::sort(files.begin(), files.end());

  std::vector<Entry> entries;
  for (const std::string& file : files) {
    Entry entry;
    entry.name = "spec:" + file;
    entry.curated = true;
    const auto text = ReadFile(dir + "/" + file);
    if (!text.ok()) {
      entry.decode_error = text.status().message();
      entries.push_back(std::move(entry));
      continue;
    }
    auto spec = scenario::ParseScenarioSpec(text.value());
    if (!spec.ok()) {
      entry.decode_error = spec.status().message();
    } else {
      entry.decoded = true;
      entry.spec = std::move(spec).value();
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace
}  // namespace snic

int main(int argc, char** argv) {
  using namespace snic;

  bench::SoakFlags flags = bench::ParseSoakFlags(
      argc, argv, /*default_seed=*/0x5ce9a21ull, /*quick_steps=*/0,
      /*full_steps=*/0);
  const std::string limit_flag = bench::FlagValue(argc, argv, "--limit");
  const std::string specs_dir = bench::FlagValue(argc, argv, "--specs");
  // --quick is a 32-scenario smoke; --limit overrides it explicitly.
  uint64_t limit = flags.quick ? 32 : 0;
  if (!limit_flag.empty()) {
    limit = std::strtoull(limit_flag.c_str(), nullptr, 10);
  }

  bench::PrintHeader("Scenario matrix: declarative robustness sweep",
                     "generated + curated chaos/overload/attack scenarios, "
                     "one verdict per scenario");

  // Assemble the sweep: generated families first, curated specs after.
  std::vector<Entry> entries;
  {
    std::vector<scenario::ScenarioSpec> generated =
        scenario::GenerateScenarios(flags.seed);
    entries.reserve(generated.size() + 32);
    for (auto& spec : generated) {
      Entry entry;
      entry.name = spec.name;
      entry.decoded = true;
      entry.spec = std::move(spec);
      entries.push_back(std::move(entry));
    }
  }
  if (!specs_dir.empty()) {
    for (Entry& entry : LoadCurated(specs_dir)) {
      entries.push_back(std::move(entry));
    }
  }
  const size_t total_available = entries.size();

  // --quick / --limit stride-sample across the whole list so every family
  // keeps coverage in the smoke run.
  if (limit > 0 && limit < entries.size()) {
    std::vector<Entry> sampled;
    sampled.reserve(limit);
    for (uint64_t k = 0; k < limit; ++k) {
      sampled.push_back(std::move(entries[k * entries.size() / limit]));
    }
    entries = std::move(sampled);
  }
  // Record the sweep size in the verdict's steps field (the flag set has no
  // per-scenario step count here; each spec carries its own).
  flags.steps = entries.size();

  std::printf("seed: %" PRIu64 "  scenarios: %zu (of %zu available)\n\n",
              flags.seed, entries.size(), total_available);

  struct Outcome {
    bool pass = false;
    std::string line;
  };
  std::vector<Outcome> outcomes(entries.size());
  {
    auto pool = bench::MakePool(flags.jobs);
    runtime::ParallelFor(pool.get(), entries.size(), [&](size_t task) {
      const Entry& entry = entries[task];
      Outcome& outcome = outcomes[task];
      if (!entry.decoded) {
        // Decode-or-reject: a spec that does not decode still gets its
        // verdict line, and it is a failure.
        outcome.pass = false;
        outcome.line = "decode: " + entry.decode_error;
        return;
      }
      const scenario::ScenarioVerdict verdict = scenario::EvaluateScenario(
          entry.spec, runtime::DeriveTaskSeed(flags.seed, task));
      outcome.pass = verdict.pass;
      outcome.line = verdict.detail;
    });
  }

  size_t passed = 0, failed = 0;
  std::string failures = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Outcome& outcome = outcomes[i];
    std::printf("%s  %-44s %s\n", outcome.pass ? "PASS" : "FAIL",
                entries[i].name.c_str(), outcome.line.c_str());
    if (outcome.pass) {
      ++passed;
    } else {
      AppendF(failures, "%s\"%s\"", failed == 0 ? "" : ",",
              entries[i].name.c_str());
      ++failed;
    }
  }
  failures += "]";
  const bool pass = failed == 0 && !entries.empty();
  std::printf("\n%zu/%zu scenarios passed\n", passed, entries.size());
  std::printf("%s\n", pass ? "SCENARIO MATRIX PASSED"
                           : "SCENARIO MATRIX FAILED");

  bench::VerdictJson verdict("scenario_matrix", flags);
  verdict.AddU64("scenarios", entries.size());
  verdict.AddU64("available", total_available);
  verdict.AddU64("passed", passed);
  verdict.AddU64("failed", failed);
  verdict.AddRaw("failures", failures);
  if (!verdict.Write(pass)) {
    return 1;
  }
  return pass ? 0 : 1;
}
