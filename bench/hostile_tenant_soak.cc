// Hostile-tenant soak: device-edge isolation as a byte-identity invariant.
//
// Runs the same two-tenant constellation through a sweep of attack
// scenarios from one seed. Victim NF V and attacker NF X each sit behind
// their own virtual function on the vNIC front-end (src/core/vnic): per-VF
// descriptor rings, policed doorbells, completion queues and posted-byte
// quotas. Scenario 0 is a well-behaved attacker; the rest escalate through
// doorbell flooding, completion-queue squatting, malformed/stale
// descriptors and quota-exhaustion churn, at several intensities, with the
// hostile moves driven both by an attack driver and by the registered
// vnic.* fault sites. The front-end's abuse detector routes threshold
// crossings to the Supervisor (CrashCause::kVnicAbuse), whose restart path
// resets and rebinds the attacker's VF; repeat offenders end quarantined at
// the device edge.
//
// Invariants, checked at every --jobs count:
//
//   1. V's full observable record — packet digests, harvested completions
//      (including per-descriptor wait cycles), VPP stats, VF/ring/CQ/
//      doorbell stats, metrics, binary trace lane — is BYTE-IDENTICAL
//      across every attack scenario: a hostile tenant is invisible to its
//      neighbour at the device edge.
//   2. V's ring latency is bounded: max delivery wait never exceeds
//      kVictimWaitBound cycles in any scenario.
//   3. Detection: each headline attack at high intensity flags the
//      matching abuse kind (and the baseline flags nothing).
//   4. Containment: under full hostility the attacker is flagged, crashed
//      with cause vnic_abuse, and finally quarantined by both the
//      Supervisor and the front-end.
//
// Flags: --quick --jobs=N --seed=S --out=FILE (JSON verdict)
// Exit status 1 when any invariant is violated.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/soak_common.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/vnic/descriptor.h"
#include "src/core/vnic/pf_vf.h"
#include "src/crypto/keys.h"
#include "src/fault/fault.h"
#include "src/mgmt/nic_os.h"
#include "src/mgmt/supervisor.h"
#include "src/net/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"

namespace snic {
namespace {

using bench::AppendF;
using bench::Fnv;
using core::vnic::kNumVfAbuseKinds;
using core::vnic::PfVfManager;
using core::vnic::RxDescriptor;
using core::vnic::VfAbuse;
using core::vnic::VfQuota;
using core::vnic::VfStats;

constexpr uint16_t kPortV = 6100;  // the victim
constexpr uint16_t kPortX = 6200;  // the attacker
constexpr uint64_t kCyclesPerStep = 100;
constexpr uint32_t kVictimRingSlots = 16;
constexpr uint16_t kVictimBufferBytes = 2048;
// V keeps its ring full and drains ~3 frames/step, so a descriptor waits
// about ring_slots/3 steps; the hard bound leaves slack, not slop.
constexpr uint64_t kVictimWaitBound = 10 * kCyclesPerStep;

// One attack scenario: driver-side volume plus fault-site periods (0 = the
// rule is absent). Intensities sweep both dials.
struct AttackProfile {
  const char* name;
  uint64_t flood_rings;     // extra doorbell writes per step
  bool squat;               // attacker never harvests its completions
  uint64_t flood_period;    // vnic.doorbell.flood
  uint64_t squat_period;    // vnic.cq.squat
  uint64_t corrupt_period;  // vnic.desc.corrupt
  uint64_t stale_period;    // vnic.desc.stale
  uint64_t churn_period;    // vnic.quota.churn
};

constexpr AttackProfile kAttacks[] = {
    {"baseline", 0, false, 0, 0, 0, 0, 0},
    {"flood-1x", 4, false, 31, 0, 0, 0, 0},
    {"flood-4x", 16, false, 13, 0, 0, 0, 0},
    {"flood-16x", 64, false, 5, 0, 0, 0, 0},
    {"squat-soft", 0, false, 0, 17, 0, 0, 0},
    {"squat-hard", 0, true, 0, 3, 0, 0, 0},
    {"malformed", 0, false, 0, 0, 7, 11, 0},
    {"quota-churn", 0, false, 0, 0, 0, 0, 5},
    {"full-hostility", 64, true, 5, 3, 7, 11, 19},
};
constexpr size_t kNumAttacks = sizeof(kAttacks) / sizeof(kAttacks[0]);
constexpr size_t kTopAttack = kNumAttacks - 1;

struct ScenarioResult {
  std::string v_report;  // invariant #1: identical across scenarios
  std::string summary;   // printed narrative
  obs::TraceRing ring;
  uint64_t faults_injected = 0;
  uint64_t abuse_reports[kNumVfAbuseKinds] = {0, 0, 0, 0};
  uint64_t victim_max_wait = 0;
  uint64_t victim_abuse_flags = 0;
  bool attacker_quarantined_edge = false;
  bool attacker_quarantined_supervisor = false;
  VfStats attacker_stats;
  mgmt::SupervisorStats supervisor_stats;
};

mgmt::FunctionImage MakeImage(const std::string& name, uint16_t port) {
  mgmt::FunctionImage image;
  image.name = name;
  image.code_and_data.assign(3000, 0xe0);
  image.cores = 1;
  image.memory_bytes = 8ull << 20;
  net::SwitchRule rule;
  rule.dst_port = port;
  image.switch_rules.push_back(rule);
  return image;
}

// Attack fault rules, all scoped to the attacker's NF id; the Supervisor's
// restart callback retargets them as that id changes.
void InstallAttack(fault::FaultPlane& plane, const AttackProfile& attack,
                   uint64_t x_id) {
  const auto add = [&plane, x_id](std::string_view site, uint64_t period) {
    if (period == 0) {
      return;
    }
    fault::FaultRule rule;
    rule.site = std::string(site);
    rule.nf_id = x_id;
    rule.skip = 2;
    rule.count = 1;  // once per period window, forever
    rule.period = period;
    plane.AddRule(rule);
  };
  add(fault::sites::kVnicDoorbellFlood, attack.flood_period);
  add(fault::sites::kVnicCqSquat, attack.squat_period);
  add(fault::sites::kVnicDescCorrupt, attack.corrupt_period);
  add(fault::sites::kVnicDescStale, attack.stale_period);
  add(fault::sites::kVnicQuotaChurn, attack.churn_period);
}

// Encodes a block of in-order descriptors continuing at `posted_total`.
std::vector<uint8_t> RefillBlock(uint64_t posted_total, uint32_t count,
                                 uint32_t ring_slots, uint16_t buffer_len) {
  std::vector<RxDescriptor> batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RxDescriptor descriptor;
    const uint64_t index = (posted_total + i) % ring_slots;
    descriptor.ring_index = static_cast<uint16_t>(index);
    descriptor.buffer_len = buffer_len;
    descriptor.buffer_addr = core::vnic::kBufferAlign * (index + 1);
    batch.push_back(descriptor);
  }
  return core::vnic::EncodeDescriptors(batch);
}

ScenarioResult RunScenario(size_t attack_index, uint64_t seed,
                           uint64_t steps) {
  const AttackProfile& attack = kAttacks[attack_index];
  ScenarioResult result;
  obs::MetricRegistry registry;
  obs::ScopedDefaultRegistry scoped_registry(&registry);

  fault::FaultPlane plane(runtime::DeriveTaskSeed(seed, 1));
  plane.AttachObs(&registry);
  plane.AttachTraceRing(&result.ring);
  fault::ScopedFaultPlane scoped_plane(&plane);

  Rng vendor_rng(runtime::DeriveTaskSeed(seed, 2));
  crypto::VendorAuthority vendor(512, vendor_rng);
  core::SnicConfig config;
  config.num_cores = 8;
  config.dram_bytes = 256ull << 20;
  config.rsa_modulus_bits = 512;
  core::SnicDevice device(config, vendor);
  device.AttachTraceRing(&result.ring);
  mgmt::NicOs nic_os(&device);

  // The device edge under test: both tenants route through their VFs.
  PfVfManager front_end;
  front_end.AttachObs(&registry);
  front_end.AttachTraceRing(&result.ring);
  device.AttachVnicFrontEnd(&front_end);

  mgmt::SupervisorConfig sup_config;
  sup_config.seed = runtime::DeriveTaskSeed(seed, 3);
  sup_config.watchdog_timeout_cycles = 15 * kCyclesPerStep;
  sup_config.backoff_base_cycles = 2 * kCyclesPerStep;
  sup_config.backoff_max_cycles = 32 * kCyclesPerStep;
  sup_config.backoff_jitter_pct = 25;
  sup_config.quarantine_after = 3;
  sup_config.stable_cycles = 20 * kCyclesPerStep;
  mgmt::Supervisor supervisor(&nic_os, vendor.public_key(), sup_config);
  supervisor.AttachObs(&registry);
  supervisor.AttachTraceRing(&result.ring);

  const auto adopt = [&supervisor](const mgmt::FunctionImage& image) {
    const auto id = supervisor.Adopt(image);
    SNIC_CHECK(id.ok());
    return id.value();
  };
  const uint64_t v_id = adopt(MakeImage("victim-v", kPortV));
  uint64_t x_id = adopt(MakeImage("attacker-x", kPortX));

  VfQuota victim_quota;
  victim_quota.ring_slots = kVictimRingSlots;
  victim_quota.cq_slots = kVictimRingSlots;
  victim_quota.posted_bytes_limit = 64 * 1024;
  VfQuota attacker_quota;
  attacker_quota.ring_slots = 16;
  attacker_quota.cq_slots = 8;
  attacker_quota.posted_bytes_limit = 48 * 1024;
  attacker_quota.abuse_threshold = 16;
  const uint32_t v_vf =
      front_end.CreateVf(v_id, device.Vpp(v_id), victim_quota).value();
  const uint32_t x_vf =
      front_end.CreateVf(x_id, device.Vpp(x_id), attacker_quota).value();

  // Abuse verdicts on the attacker's VF become Supervisor crash reports
  // (the containment path); a verdict on the victim's VF would be a
  // detector false positive and is only counted.
  front_end.SetAbuseCallback([&](uint32_t vf, VfAbuse kind) {
    if (vf != x_vf) {
      ++result.victim_abuse_flags;
      return;
    }
    ++result.abuse_reports[static_cast<int>(kind)];
    if (supervisor.HealthOf("attacker-x") == mgmt::NfHealth::kRunning) {
      supervisor.ReportCrash("attacker-x", mgmt::CrashCause::kVnicAbuse);
    }
  });
  supervisor.SetRestartCallback([&](const std::string& name, uint64_t old_id,
                                    uint64_t new_id) {
    if (name == "attacker-x") {
      plane.RetargetRules(old_id, new_id);
      x_id = new_id;
      SNIC_CHECK_OK(front_end.RebindVf(x_vf, new_id, device.Vpp(new_id)));
    }
  });

  InstallAttack(plane, attack, x_id);

  // Traffic from disjoint seed lanes: V's stream is the scenario-invariant
  // control, X's only feeds its own VF.
  Rng v_traffic(runtime::DeriveTaskSeed(seed, 4));
  Rng x_traffic(runtime::DeriveTaskSeed(seed, 5));
  obs::Counter& v_rx = registry.GetCounter("hostile.victim.rx", {{"nf", "v"}});
  obs::Counter& v_tx = registry.GetCounter("hostile.victim.tx", {{"nf", "v"}});

  const auto make_packet = [](Rng& rng, uint16_t port) {
    net::FiveTuple tuple;
    tuple.src_ip = net::Ipv4FromString("10.0.0.9");
    tuple.dst_ip = net::Ipv4FromString("203.0.113.7");
    tuple.src_port = static_cast<uint16_t>(10000 + rng.NextBounded(100));
    tuple.dst_port = port;
    tuple.protocol = 6;
    std::vector<uint8_t> payload(64 + rng.NextBounded(4) * 64);
    for (size_t k = 0; k < payload.size(); ++k) {
      payload[k] = static_cast<uint8_t>(rng.NextU64());
    }
    return net::PacketBuilder().SetTuple(tuple).SetPayload(payload).Build();
  };

  Fnv v_rx_digest, v_cpl_digest, v_wire_digest;
  uint64_t v_wire_packets = 0, v_completions = 0;
  uint64_t v_posted_total = 0, x_posted_total = 0;
  uint64_t x_resets_seen = 0;
  uint64_t wire_rejected = 0;

  for (uint64_t step = 0; step < steps; ++step) {
    const uint64_t now = (step + 1) * kCyclesPerStep;
    plane.AdvanceClockTo(now);
    device.AdvanceClockTo(now);

    // Victim: refill the descriptor ring, one doorbell write per step —
    // comfortably inside the policer budget, in every scenario.
    const uint32_t v_occupancy = front_end.RingOccupancy(v_vf);
    if (v_occupancy < kVictimRingSlots) {
      const uint32_t refill = kVictimRingSlots - v_occupancy;
      SNIC_CHECK_OK(front_end.PostDescriptors(
          v_vf, RefillBlock(v_posted_total, refill, kVictimRingSlots,
                            kVictimBufferBytes)));
      v_posted_total += refill;
    }
    SNIC_CHECK(front_end.RingDoorbell(v_vf));

    // Attacker: posts, rings, and (maybe) harvests — with the scenario's
    // fault sites corrupting its moves and the driver adding volume.
    const bool x_running =
        supervisor.HealthOf("attacker-x") == mgmt::NfHealth::kRunning;
    if (x_running && !front_end.IsQuarantined(x_vf)) {
      const VfStats& xs = front_end.StatsOf(x_vf);
      if (xs.resets != x_resets_seen) {
        x_resets_seen = xs.resets;
        x_posted_total = 0;  // VF reset rewound the ring's expected index
      }
      const uint32_t x_occupancy = front_end.RingOccupancy(x_vf);
      if (x_occupancy < attacker_quota.ring_slots) {
        const uint32_t refill = attacker_quota.ring_slots - x_occupancy;
        if (front_end
                .PostDescriptors(
                    x_vf, RefillBlock(x_posted_total, refill,
                                      attacker_quota.ring_slots, 1024))
                .ok()) {
          x_posted_total += refill;
        }
      }
      for (uint64_t i = 0; i < 1 + attack.flood_rings; ++i) {
        (void)front_end.RingDoorbell(x_vf);
      }
      if (!attack.squat) {
        for (;;) {
          if (!front_end.Harvest(x_vf).ok()) {
            break;
          }
        }
      }
    }

    // Wire traffic: V's three control frames, then X's two.
    for (int i = 0; i < 3; ++i) {
      SNIC_CHECK_OK(device.DeliverFromWire(make_packet(v_traffic, kPortV)));
    }
    for (int i = 0; i < 2; ++i) {
      if (!device.DeliverFromWire(make_packet(x_traffic, kPortX)).ok()) {
        ++wire_rejected;  // X's edge drops: no descriptor, CQ full, dead NF
      }
    }

    // Victim service: poll, digest, echo, harvest completions.
    for (;;) {
      auto received = device.NfReceive(v_id);
      if (!received.ok()) {
        break;
      }
      net::Packet packet = std::move(received).value();
      v_rx_digest.Mix(packet.bytes().data(), packet.size());
      v_rx.Inc();
      if (device.NfSend(v_id, std::move(packet)).ok()) {
        v_tx.Inc();
      }
    }
    for (;;) {
      const auto completion = front_end.Harvest(v_vf);
      if (!completion.ok()) {
        break;
      }
      const auto& c = completion.value();
      v_cpl_digest.Mix64(c.ring_index);
      v_cpl_digest.Mix64(c.bytes);
      v_cpl_digest.Mix64(c.cycle);
      v_cpl_digest.Mix64(c.wait_cycles);
      ++v_completions;
    }
    supervisor.Heartbeat("victim-v");
    if (x_running) {
      supervisor.Heartbeat("attacker-x");
    }

    // Attacker service: drain its pipeline so squatting (not a full VPP)
    // is what fills the completion queue.
    if (x_running) {
      for (;;) {
        auto received = device.NfReceive(x_id);
        if (!received.ok()) {
          break;
        }
        (void)device.NfSend(x_id, std::move(received).value());
      }
    }

    supervisor.Tick(now);
    // The Supervisor's quarantine verdict is mirrored to the device edge:
    // from here on X's frames drop at the VF, not in the switch.
    if (supervisor.HealthOf("attacker-x") == mgmt::NfHealth::kQuarantined &&
        !front_end.IsQuarantined(x_vf)) {
      SNIC_CHECK_OK(front_end.QuarantineVf(x_vf));
    }

    // Drain the wire; V's frames join its record by port.
    for (;;) {
      auto out = device.TransmitToWire();
      if (!out.ok()) {
        break;
      }
      const auto parsed = net::Parse(out.value().bytes());
      if (parsed.ok() && parsed.value().Tuple().dst_port == kPortV) {
        v_wire_digest.Mix(out.value().bytes().data(), out.value().size());
        ++v_wire_packets;
      }
    }
  }

  // ---- V's invariant report ----------------------------------------------
  std::string& report = result.v_report;
  const core::VirtualPacketPipeline* v_vpp = device.Vpp(v_id);
  SNIC_CHECK(v_vpp != nullptr);
  const core::VppStats& vs = v_vpp->stats();
  const VfStats& vfs = front_end.StatsOf(v_vf);
  const auto& ring_stats = front_end.RingStatsOf(v_vf);
  const auto& cq_stats = front_end.CqStatsOf(v_vf);
  const auto& doorbell_stats = front_end.DoorbellStatsOf(v_vf);
  AppendF(report, "v.nf_id: %" PRIu64 " vf: %" PRIu32 "\n", v_id, v_vf);
  AppendF(report, "v.rx: %" PRIu64 " digest: %016" PRIx64 "\n", v_rx.value(),
          v_rx_digest.h);
  AppendF(report, "v.completions: %" PRIu64 " digest: %016" PRIx64 "\n",
          v_completions, v_cpl_digest.h);
  AppendF(report, "v.wire: %" PRIu64 " digest: %016" PRIx64 "\n",
          v_wire_packets, v_wire_digest.h);
  AppendF(report,
          "v.vpp: rx=%" PRIu64 " drop_full=%" PRIu64 " tx=%" PRIu64
          " rx_bytes=%" PRIu64 " tx_bytes=%" PRIu64 "\n",
          vs.rx_packets, vs.rx_dropped_full, vs.tx_packets, vs.rx_bytes,
          vs.tx_bytes);
  AppendF(report,
          "v.vf: posted=%" PRIu64 " delivered=%" PRIu64 " harvested=%" PRIu64
          " rings=%" PRIu64 " ring_rejected=%" PRIu64 " drops=%" PRIu64
          "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 " abuse=%" PRIu64
          " max_wait=%" PRIu64 "\n",
          vfs.posts_accepted, vfs.delivered, vfs.harvested,
          vfs.doorbell_rings, vfs.doorbell_rejected,
          vfs.dropped_no_descriptor, vfs.dropped_cq_full, vfs.dropped_vpp,
          vfs.dropped_quarantined, vfs.abuse_flags,
          vfs.max_delivery_wait_cycles);
  AppendF(report,
          "v.ring: posted=%" PRIu64 " consumed=%" PRIu64 " peak=%" PRIu64
          " stale=%" PRIu64 " full=%" PRIu64 "\n",
          ring_stats.posted, ring_stats.consumed, ring_stats.peak_posted,
          ring_stats.rejected_stale, ring_stats.rejected_full);
  AppendF(report,
          "v.cq: pushed=%" PRIu64 " harvested=%" PRIu64 " peak=%" PRIu64
          " full=%" PRIu64 "\n",
          cq_stats.pushed, cq_stats.harvested, cq_stats.peak_pending,
          cq_stats.rejected_full);
  AppendF(report, "v.doorbell: rings=%" PRIu64 " rejected=%" PRIu64 "\n",
          doorbell_stats.rings, doorbell_stats.rejected);
  AppendF(report, "v.metrics: tx=%" PRIu64 "\n", v_tx.value());
  const bench::LaneDigest v_lane =
      bench::DigestRingLane(result.ring, static_cast<uint32_t>(v_id));
  AppendF(report, "v.trace: %" PRIu64 " digest: %016" PRIx64 "\n",
          v_lane.count, v_lane.digest);

  result.victim_max_wait = vfs.max_delivery_wait_cycles;
  result.faults_injected = plane.injected_total();
  result.attacker_stats = front_end.StatsOf(x_vf);
  result.attacker_quarantined_edge = front_end.IsQuarantined(x_vf);
  result.attacker_quarantined_supervisor =
      supervisor.HealthOf("attacker-x") == mgmt::NfHealth::kQuarantined;
  result.supervisor_stats = supervisor.stats();

  // ---- Scenario narrative ------------------------------------------------
  std::string& summary = result.summary;
  const VfStats& xs = result.attacker_stats;
  const mgmt::SupervisorStats& stats = result.supervisor_stats;
  AppendF(summary, "  faults injected:   %" PRIu64 "\n",
          result.faults_injected);
  AppendF(summary,
          "  abuse flagged: flood=%" PRIu64 " squat=%" PRIu64 " desc=%" PRIu64
          " churn=%" PRIu64 "\n",
          result.abuse_reports[0], result.abuse_reports[1],
          result.abuse_reports[2], result.abuse_reports[3]);
  AppendF(summary,
          "  attacker-x: delivered=%" PRIu64 " doorbell_rejected=%" PRIu64
          " cq_full_drops=%" PRIu64 " decode_rejects=%" PRIu64
          " quota_rejects=%" PRIu64 " resets=%" PRIu64 "\n",
          xs.delivered, xs.doorbell_rejected, xs.dropped_cq_full,
          xs.post_rejected_decode + xs.post_rejected_stale,
          xs.post_rejected_quota, xs.resets);
  AppendF(summary,
          "  supervisor: crashes=%" PRIu64 " restarts=%" PRIu64
          " quarantines=%" PRIu64 "  edge_quarantined=%d\n",
          stats.crashes, stats.restarts, stats.quarantines,
          result.attacker_quarantined_edge ? 1 : 0);
  AppendF(summary, "  victim: max_wait=%" PRIu64 " (bound %" PRIu64 ")\n",
          result.victim_max_wait, kVictimWaitBound);
  return result;
}

}  // namespace
}  // namespace snic

int main(int argc, char** argv) {
  using namespace snic;

  const bench::SoakFlags flags = bench::ParseSoakFlags(
      argc, argv, /*default_seed=*/0x5ecede5ull, /*quick_steps=*/1500,
      /*full_steps=*/8000);

  bench::PrintHeader("Hostile-tenant soak: device-edge isolation",
                     "per-VF rings, doorbell policing, abuse containment "
                     "under adversarial tenants");

  std::vector<ScenarioResult> results(kNumAttacks);
  {
    auto pool = bench::MakePool(flags.jobs);
    runtime::ParallelFor(pool.get(), kNumAttacks, [&](size_t task) {
      results[task] = RunScenario(task, flags.seed, flags.steps);
    });
  }

  std::printf("seed: %" PRIu64 "  steps/scenario: %" PRIu64 "\n\n",
              flags.seed, flags.steps);
  for (size_t i = 0; i < kNumAttacks; ++i) {
    std::printf("scenario %zu (%s):\n%s\n", i, kAttacks[i].name,
                results[i].summary.c_str());
  }

  // Invariant 1: the victim's record is identical in every scenario.
  bool victim_identical = true;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].v_report != results[0].v_report) {
      victim_identical = false;
      std::printf("VICTIM DIVERGED under %s:\n--- %s ---\n%s--- %s ---\n%s",
                  kAttacks[i].name, kAttacks[0].name,
                  results[0].v_report.c_str(), kAttacks[i].name,
                  results[i].v_report.c_str());
    }
  }
  std::printf("victim-v report (all scenarios):\n%s\n",
              results[0].v_report.c_str());

  // Invariant 2: ring latency bounded everywhere (and no false verdicts on
  // the victim's VF anywhere).
  bool wait_bounded = true;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].victim_max_wait > kVictimWaitBound ||
        results[i].victim_abuse_flags != 0) {
      wait_bounded = false;
      std::printf("VICTIM RING LATENCY/VERDICT VIOLATION under %s: "
                  "max_wait=%" PRIu64 " false_flags=%" PRIu64 "\n",
                  kAttacks[i].name, results[i].victim_max_wait,
                  results[i].victim_abuse_flags);
    }
  }

  // Invariant 3: high-intensity attacks are detected as the right kind;
  // the baseline triggers nothing.
  const auto reported = [&](size_t scenario, VfAbuse kind) {
    return results[scenario].abuse_reports[static_cast<int>(kind)] > 0;
  };
  const bool baseline_clean =
      results[0].abuse_reports[0] == 0 && results[0].abuse_reports[1] == 0 &&
      results[0].abuse_reports[2] == 0 && results[0].abuse_reports[3] == 0 &&
      results[0].supervisor_stats.crashes == 0 &&
      results[0].attacker_stats.delivered > 0;
  const bool detection_ok =
      reported(3, VfAbuse::kDoorbellFlood) && reported(5, VfAbuse::kCqSquat) &&
      reported(6, VfAbuse::kBadDescriptor) &&
      reported(7, VfAbuse::kQuotaChurn);
  if (!baseline_clean) {
    std::printf("BASELINE NOT CLEAN: a well-behaved tenant was flagged or "
                "starved\n");
  }
  if (!detection_ok) {
    std::printf("DETECTION MISSED: a high-intensity attack never flagged "
                "its abuse kind\n");
  }

  // Invariant 4: full hostility ends contained — flagged, crashed with
  // cause vnic_abuse, quarantined at both layers.
  const ScenarioResult& top = results[kTopAttack];
  const bool containment_ok =
      (top.abuse_reports[0] + top.abuse_reports[1] + top.abuse_reports[2] +
       top.abuse_reports[3]) > 0 &&
      top.supervisor_stats.crashes >= 1 &&
      top.supervisor_stats.quarantines >= 1 &&
      top.attacker_quarantined_supervisor && top.attacker_quarantined_edge;
  if (!containment_ok) {
    std::printf("CONTAINMENT FAILED under %s: crashes=%" PRIu64
                " quarantines=%" PRIu64 " supervisor=%d edge=%d\n",
                kAttacks[kTopAttack].name, top.supervisor_stats.crashes,
                top.supervisor_stats.quarantines,
                top.attacker_quarantined_supervisor ? 1 : 0,
                top.attacker_quarantined_edge ? 1 : 0);
  }

  const bool pass =
      victim_identical && wait_bounded && baseline_clean && detection_ok &&
      containment_ok;
  std::printf("%s\n", pass ? "ALL HOSTILE-TENANT INVARIANTS HOLD"
                           : "HOSTILE-TENANT INVARIANT VIOLATED");

  bench::VerdictJson verdict("hostile_tenant_soak", flags);
  verdict.AddBool("victim_identical", victim_identical);
  verdict.AddBool("wait_bounded", wait_bounded);
  verdict.AddBool("baseline_clean", baseline_clean);
  verdict.AddBool("detection_ok", detection_ok);
  verdict.AddBool("containment_ok", containment_ok);
  verdict.AddU64("victim_wait_bound", kVictimWaitBound);
  std::string attacks = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    AppendF(attacks,
            "%s{\"name\":\"%s\",\"faults_injected\":%" PRIu64
            ",\"abuse_flags\":%" PRIu64 ",\"crashes\":%" PRIu64
            ",\"restarts\":%" PRIu64 ",\"quarantined\":%s"
            ",\"victim_max_wait\":%" PRIu64 "}",
            i == 0 ? "" : ",", kAttacks[i].name, r.faults_injected,
            r.abuse_reports[0] + r.abuse_reports[1] + r.abuse_reports[2] +
                r.abuse_reports[3],
            r.supervisor_stats.crashes, r.supervisor_stats.restarts,
            r.attacker_quarantined_edge ? "true" : "false",
            r.victim_max_wait);
  }
  attacks += "]";
  verdict.AddRaw("attacks", attacks);
  if (!verdict.Write(pass)) {
    return 1;
  }
  return pass ? 0 : 1;
}
