// Shared helpers for the table/figure regeneration harnesses.

#ifndef SNIC_BENCH_BENCH_UTIL_H_
#define SNIC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

namespace snic::bench {

// `--quick` trims workload sizes for smoke runs; default regenerates the
// full table/figure.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return true;
    }
  }
  return false;
}

// Value of a `--name=<value>` flag; empty string when the flag is absent.
inline std::string FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return {};
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==========================================================\n\n");
}

}  // namespace snic::bench

#endif  // SNIC_BENCH_BENCH_UTIL_H_
