// Shared helpers for the table/figure regeneration harnesses.

#ifndef SNIC_BENCH_BENCH_UTIL_H_
#define SNIC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/runtime/thread_pool.h"

namespace snic::bench {

// `--quick` trims workload sizes for smoke runs; default regenerates the
// full table/figure.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return true;
    }
  }
  return false;
}

// Value of a `--name=<value>` flag; empty string when the flag is absent.
inline std::string FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return {};
}

// `--jobs=N`: worker count for the sweep runtime. Defaults to the hardware
// concurrency; 1 forces the historical serial path. Results are
// byte-identical at every jobs count (docs/RUNTIME.md).
inline size_t JobsFlag(int argc, char** argv) {
  const std::string value = FlagValue(argc, argv, "--jobs");
  if (value.empty()) {
    return runtime::HardwareConcurrency();
  }
  const long n = std::strtol(value.c_str(), nullptr, 10);
  return n < 1 ? 1 : static_cast<size_t>(n);
}

// Pool for `jobs` workers; null (the inline serial path) when jobs <= 1.
// The jobs count goes to stderr so stdout stays diffable across jobs
// counts (CI compares --jobs=1 against --jobs=2 output byte-for-byte).
inline std::unique_ptr<runtime::ThreadPool> MakePool(size_t jobs) {
  std::fprintf(stderr, "[sweep runtime: %zu job%s]\n", jobs,
               jobs == 1 ? "" : "s");
  if (jobs <= 1) {
    return nullptr;
  }
  return std::make_unique<runtime::ThreadPool>(jobs);
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==========================================================\n\n");
}

}  // namespace snic::bench

#endif  // SNIC_BENCH_BENCH_UTIL_H_
