// Regenerates Table 6 (and Appendix B): memory-usage profiles for the six
// NFs, the TLB entry counts they imply under the three page-size menus, and
// the memory-utilization ratios of Table 8.
//
// Methodology mirrors §5.1/Appendix B: each NF processes a synthetic
// iCTF-like stream; the Monitor instead ingests a five-minute CAIDA-like
// flow population (flow count scaled per the trace's 26.7M-flows/hour rate).
// Heap & stack come from the instrumented arena; Text/Data/Code are the
// image-section constants of the paper's Rust binaries (we ship one C++
// library, so section sizes are modeled, not measured).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/tlb_sizing.h"
#include "src/net/parser.h"
#include "src/nf/monitor.h"
#include "src/nf/nf_factory.h"
#include "src/trace/trace_gen.h"

namespace {

using namespace snic;

// Paper reference rows for side-by-side comparison.
struct PaperRow {
  double heap;
  uint64_t equal, flex_low, flex_high;
  double mur;  // Table 8
};
const PaperRow kPaper[] = {
    {13.75, 11, 34, 11, 1.000}, {46.65, 28, 51, 13, 1.000},
    {40.48, 25, 37, 10, 0.723}, {10.40, 10, 22, 10, 0.302},
    {64.90, 37, 23, 7, 1.000},  {357.15, 183, 46, 12, 0.683},
};

void DriveWithStream(nf::NetworkFunction& nf, size_t distinct_flows,
                     size_t zipf_packets, uint64_t seed) {
  // One packet per flow rank first (fills flow-keyed state), then a Zipf
  // tail (exercises caches).
  trace::FlowTable flows(distinct_flows, seed);
  for (uint64_t r = 0; r < flows.size(); ++r) {
    net::Packet p = net::PacketBuilder().SetTuple(flows.TupleForRank(r)).Build();
    nf.Process(p);
  }
  trace::TraceConfig config = trace::TraceConfig::IctfLike(seed);
  config.num_flows = distinct_flows;
  trace::PacketStream stream(config);
  for (size_t i = 0; i < zipf_packets; ++i) {
    net::Packet p = stream.Next();
    nf.Process(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = snic::bench::QuickMode(argc, argv);
  bench::PrintHeader(
      "Table 6 / Table 8: NF memory profiles, TLB entries, and MURs",
      "S-NIC (EuroSys'24) Appendix B");

  const size_t flow_count = quick ? 8'000 : 80'000;
  const size_t zipf_packets = quick ? 20'000 : 100'000;
  const size_t monitor_flows = quick ? 200'000 : 3'400'000;

  TablePrinter table({"NF", "Text", "Data", "Code", "Heap&stack", "Total",
                      "Equal", "Flex-low", "Flex-high", "MUR",
                      "Paper heap/Equal/MUR"});

  const auto kinds = nf::AllNfKinds();
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::unique_ptr<nf::NetworkFunction> fn;
    if (kinds[k] == nf::NfKind::kMonitor) {
      nf::MonitorConfig config;
      config.model_hugepage_init = true;
      config.hugepage_pool_mib = 64.0;
      fn = std::make_unique<nf::Monitor>(config);
      DriveWithStream(*fn, monitor_flows, zipf_packets, 16 + k);
    } else {
      fn = nf::MakeNf(kinds[k]);
      DriveWithStream(*fn, flow_count, zipf_packets, 16 + k);
    }

    const nf::NfMemoryProfile profile = fn->Profile();
    const std::vector<double> regions = profile.RegionsMib();
    const uint64_t equal = core::EntriesForRegionsMib(
        regions, core::PageSizeMenu::Equal());
    const uint64_t flex_low = core::EntriesForRegionsMib(
        regions, core::PageSizeMenu::FlexLow());
    const uint64_t flex_high = core::EntriesForRegionsMib(
        regions, core::PageSizeMenu::FlexHigh());
    const double mur = fn->arena().peak_bytes() == 0
                           ? 1.0
                           : static_cast<double>(fn->arena().live_bytes()) /
                                 static_cast<double>(fn->arena().peak_bytes());
    char paper[64];
    std::snprintf(paper, sizeof(paper), "%.2f / %llu / %.1f%%",
                  kPaper[k].heap,
                  static_cast<unsigned long long>(kPaper[k].equal),
                  kPaper[k].mur * 100.0);
    table.AddRow({std::string(nf::NfKindName(kinds[k])),
                  TablePrinter::Fmt(profile.image.text_mib, 2),
                  TablePrinter::Fmt(profile.image.data_mib, 2),
                  TablePrinter::Fmt(profile.image.code_mib, 2),
                  TablePrinter::Fmt(profile.heap_stack_mib, 2),
                  TablePrinter::Fmt(profile.TotalMib(), 2),
                  std::to_string(equal), std::to_string(flex_low),
                  std::to_string(flex_high), TablePrinter::Pct(mur, 1),
                  paper});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Notes: heap&stack is measured from the instrumented arena over the\n"
      "synthetic workload%s; Text/Data/Code are modeled image sections.\n"
      "MUR = live bytes at end of run / peak bytes (Table 8's used/prealloc).\n",
      quick ? " (QUICK MODE: reduced flow counts)" : "");
  return 0;
}
